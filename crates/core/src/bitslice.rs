//! The bit-sliced voter kernel ([`Kernel::Bitsliced`]): vote on 64 pixels
//! per ALU op.
//!
//! The sweep kernel (PR 5) already restructured the voter into streaming
//! passes, but it still spends one word-sized operation per *pixel*. Every
//! step of Algorithm 1, however, is either pure bitwise logic (the φ
//! pruning masks, the `all`/`one` accumulator folds, the window A/B
//! combine) or a comparison against a **power-of-two** cut-off — and all of
//! those distribute over a bit-plane transposition. This module therefore
//! runs the whole per-series pipeline in *bit-plane space*:
//!
//! 1. **Transpose** — each 64-pixel block of the series is transposed into
//!    Λ `u64` plane words (`plane[b]` bit `l` = bit `b` of pixel `l`) with
//!    a packed-field butterfly network (`O(Λ·log Λ)` word ops per block
//!    instead of `O(64·Λ)` bit probes).
//! 2. **Cut-off estimation** — the per-way `V_val` is the smallest power
//!    of two `2^e` such that at least Φ of the way's XOR differences are
//!    `≤ 2^e` (a monotone map preserves rank statistics, so this is
//!    bit-identical to `select_nth_unstable` + `ceil_pow2`). In plane
//!    space `diff > 2^e` is three word ops against precomputed
//!    prefix/suffix OR planes, and the count is a masked popcount — the
//!    rank selection becomes a 4–5 step binary search over bit positions,
//!    64 diffs at a time, with no data-dependent branching.
//! 3. **Prune** — the dual XOR/arithmetic deviance rule collapses to the
//!    arithmetic test alone (`|a−b| ≤ a⊕b` always, so `|a−b| > V_val`
//!    implies the XOR test). The subtraction runs as a ripple-borrow chain
//!    across planes, the absolute value as a conditional two's complement,
//!    and the threshold as the same three-op power-of-two comparison — all
//!    on 64 lanes per word op.
//! 4. **Combine and repair** — the `all`/`one` accumulator folds and the
//!    window A/B combine are bitwise and act on planes unchanged; corrected
//!    planes are transposed back and XOR-applied only for blocks that
//!    actually contain a correction.
//!
//! Reflected boundary pairings (at most Υ/2 per way per end) are computed
//! by the scalar [`prune`] rule and patched into the affected lanes, so the
//! kernel is **bit-identical** to [`Kernel::Scalar`] for every Υ, Λ, dtype,
//! series length and pass count (`tests/sweep_identical.rs` property-tests
//! the full grid).
//!
//! # Runtime SIMD dispatch
//!
//! The plane loops are plain `u64` slice iterations, which LLVM
//! auto-vectorizes; how well depends on the instruction set it may assume.
//! [`dispatch_tier`] detects the best available tier once per process
//! (cached in a [`OnceLock`]): on `x86_64` an AVX2 re-instantiation of the
//! kernel body (`#[target_feature(enable = "avx2")]`), on `aarch64` a NEON
//! one, and everywhere the portable `u64` build as the guaranteed fallback.
//! Setting the `PREFLIGHT_FORCE_PORTABLE` environment variable (to anything
//! but `0`) disables SIMD dispatch, which CI uses to exercise the fallback
//! path. Every tier executes the same Rust code, so tier selection can
//! never change results — only throughput.
//!
//! [`Kernel::Bitsliced`]: crate::Kernel::Bitsliced
//! [`Kernel::Scalar`]: crate::Kernel::Scalar
//! [`prune`]: crate::sweep

use crate::error::CoreError;
use crate::pixel::BitPixel;
use crate::sensitivity::{Sensitivity, Upsilon};
use crate::sweep::prune;
use crate::voter::{derive_windows, VoterScratch, MAX_WAYS};
use crate::window::BitWindows;
use preflight_obs::Obs;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The code-generation tier the bit-sliced kernel dispatches to at
/// runtime. Every tier runs the same algorithm and produces bit-identical
/// output; the tier only selects the instruction set the plane loops are
/// compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchTier {
    /// Plain `u64` word operations — always available, the guaranteed
    /// fallback on every architecture.
    Portable,
    /// The kernel body re-instantiated under
    /// `#[target_feature(enable = "avx2")]` (x86-64 only), selected when
    /// runtime CPUID detection confirms AVX2 support.
    Avx2,
    /// The kernel body compiled for NEON (aarch64, where NEON is part of
    /// the baseline ISA).
    Neon,
}

impl DispatchTier {
    /// The stable lowercase label used in metrics and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            DispatchTier::Portable => "portable",
            DispatchTier::Avx2 => "avx2",
            DispatchTier::Neon => "neon",
        }
    }
}

impl core::fmt::Display for DispatchTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The dispatch tiers this machine supports, in ascending preference
/// order ([`DispatchTier::Portable`] first — it is always present).
pub fn detected_tiers() -> Vec<DispatchTier> {
    #[allow(unused_mut)]
    let mut tiers = vec![DispatchTier::Portable];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        tiers.push(DispatchTier::Avx2);
    }
    #[cfg(target_arch = "aarch64")]
    tiers.push(DispatchTier::Neon);
    tiers
}

/// Test-only override of the dispatched tier; `0` means "no override".
static FORCED_TIER: AtomicU8 = AtomicU8::new(0);

/// The tier the bit-sliced kernel currently dispatches to.
///
/// Detection runs once per process and is cached; the
/// `PREFLIGHT_FORCE_PORTABLE` environment variable (set to anything but
/// `0`) pins the portable fallback regardless of what the CPU supports.
pub fn dispatch_tier() -> DispatchTier {
    match FORCED_TIER.load(Ordering::Relaxed) {
        1 => DispatchTier::Portable,
        2 => DispatchTier::Avx2,
        3 => DispatchTier::Neon,
        _ => {
            static DETECTED: OnceLock<DispatchTier> = OnceLock::new();
            *DETECTED.get_or_init(|| {
                let forced = std::env::var_os("PREFLIGHT_FORCE_PORTABLE")
                    .is_some_and(|v| !v.is_empty() && v != "0");
                if forced {
                    DispatchTier::Portable
                } else {
                    best_tier()
                }
            })
        }
    }
}

/// Resolves the default dispatch tier. On x86-64 with AVX2 available this
/// *measures* instead of assuming: the plane loops are memory-bound `u64`
/// streams that the baseline ISA already auto-vectorizes, so on some
/// microarchitectures the AVX2 re-instantiation gains nothing (or pays a
/// vector-license frequency penalty). Tiers are bit-identical, so picking
/// by throughput can never change results.
fn best_tier() -> DispatchTier {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return calibrate_x86();
    }
    *detected_tiers()
        .last()
        .expect("portable tier always present")
}

/// One-shot micro-calibration (~100 µs, cached for the process): run the
/// group kernel on a synthetic 64-lane group under each candidate tier,
/// best-of-3, and keep the faster one.
#[cfg(target_arch = "x86_64")]
fn calibrate_x86() -> DispatchTier {
    let params = BitsliceParams {
        upsilon: Upsilon::FOUR,
        sensitivity: Sensitivity::new(80).expect("80 is a valid sensitivity"),
        msb_margin: crate::voter::DEFAULT_MSB_MARGIN,
        static_windows: None,
        use_grt: true,
    };
    let n = 96usize;
    let mut buf = vec![0u32; 64 * n];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for v in buf.iter_mut() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        *v = 1_000_000 + (state >> 56) as u32;
        if state >> 32 & 0xFF < 5 {
            *v ^= 1 << (18 + (state >> 40 & 0x3) as u32);
        }
    }
    let obs = Obs::disabled();
    let mut scratch = VoterScratch::new();
    let mut best = [std::time::Duration::MAX; 2];
    for _ in 0..3 {
        let mut work = buf.clone();
        let t0 = std::time::Instant::now();
        // SAFETY: guarded by the caller's `is_x86_feature_detected!("avx2")`.
        #[allow(unsafe_code)]
        unsafe {
            group_avx2(&params, &mut work, n, 64, 0, 64, &mut scratch, &obs);
        }
        best[0] = best[0].min(t0.elapsed());
        let mut work = buf.clone();
        let t0 = std::time::Instant::now();
        group_impl::<u32, false>(&params, &mut work, n, 64, 0, 64, &mut scratch, &obs);
        best[1] = best[1].min(t0.elapsed());
    }
    if best[0] < best[1] {
        DispatchTier::Avx2
    } else {
        DispatchTier::Portable
    }
}

/// Forces [`dispatch_tier`] to return `tier` (or clears the override with
/// `None`). Returns `false` — leaving the override untouched — if this
/// machine does not support the requested tier, so an override can never
/// make the dispatcher select an instruction set the CPU lacks.
///
/// This is a process-global test hook for exercising every supported tier
/// in one test run; it is not part of the stable API.
#[doc(hidden)]
pub fn force_dispatch_tier(tier: Option<DispatchTier>) -> bool {
    let code = match tier {
        None => 0,
        Some(t) => {
            if !detected_tiers().contains(&t) {
                return false;
            }
            match t {
                DispatchTier::Portable => 1,
                DispatchTier::Avx2 => 2,
                DispatchTier::Neon => 3,
            }
        }
    };
    FORCED_TIER.store(code, Ordering::Relaxed);
    true
}

/// The algorithm knobs the kernel needs from [`crate::AlgoNgst`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BitsliceParams {
    pub upsilon: Upsilon,
    pub sensitivity: Sensitivity,
    pub msb_margin: u32,
    pub static_windows: Option<(u32, u32)>,
    pub use_grt: bool,
}

/// One analyze-and-repair round of Algorithm 1 executed entirely in
/// bit-plane space: cut-off estimation, pruning, accumulator combine and
/// window repair, bit-identical to the scalar gather. Returns the number
/// of modified samples.
///
/// # Errors
/// Returns [`CoreError::SeriesTooShort`] if the series cannot support the
/// configured Υ (the same contract as [`crate::VoterMatrix::build`]).
pub(crate) fn bitsliced_pass<T: BitPixel>(
    params: &BitsliceParams,
    series: &mut [T],
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> Result<usize, CoreError> {
    let n = series.len();
    let required = params.upsilon.min_series_len();
    if n < required {
        return Err(CoreError::SeriesTooShort { len: n, required });
    }
    match dispatch_tier() {
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Avx2 => {
            // SAFETY: `dispatch_tier` yields `Avx2` only after runtime
            // CPUID detection confirmed AVX2 support (`force_dispatch_tier`
            // refuses tiers the machine lacks), so the target-feature
            // contract of `pass_avx2` holds.
            #[allow(unsafe_code)]
            Ok(unsafe { pass_avx2(params, series, scratch, obs) })
        }
        #[cfg(target_arch = "aarch64")]
        DispatchTier::Neon => {
            // SAFETY: NEON is part of the aarch64 baseline ISA, and
            // `dispatch_tier` yields `Neon` only on aarch64 builds.
            #[allow(unsafe_code)]
            Ok(unsafe { pass_neon(params, series, scratch, obs) })
        }
        _ => Ok(pass_impl(params, series, scratch, obs)),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn pass_avx2<T: BitPixel>(
    params: &BitsliceParams,
    series: &mut [T],
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    pass_impl(params, series, scratch, obs)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn pass_neon<T: BitPixel>(
    params: &BitsliceParams,
    series: &mut [T],
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    pass_impl(params, series, scratch, obs)
}

/// Lane mask of the pixels in 64-pixel block `w` whose global index is
/// `< limit`.
#[inline]
fn lane_mask(limit: usize, w: usize) -> u64 {
    let base = w * 64;
    if limit >= base + 64 {
        u64::MAX
    } else if limit <= base {
        0
    } else {
        (1u64 << (limit - base)) - 1
    }
}

/// In-place packed-field delta-swap transpose network: `m[0..k]` holds `k`
/// fields of `k` bits each (replicated `64/k` times across the word), and
/// the network transposes every `k × k` field block simultaneously. The
/// network is its own inverse.
/// `#[inline(always)]` so `k` (always the caller's `T::BITS`) constant-folds
/// after monomorphization and the delta-swap rounds fully unroll and
/// vectorize — the butterfly dominates the per-block transpose cost.
#[inline(always)]
fn butterfly(m: &mut [u64; 64], k: usize) {
    let mut j = k / 2;
    while j != 0 {
        // Bit positions p with (p & j) != 0, replicated across fields.
        let hi = !(u64::MAX / ((1u64 << j) + 1));
        // The round pairs words (i, i+j) for every i with i & j == 0:
        // exactly the first/second halves of each 2j-sized chunk.
        for chunk in m[..k].chunks_exact_mut(2 * j) {
            let (a, b) = chunk.split_at_mut(j);
            for (x, y) in a.iter_mut().zip(b) {
                let t = (*x ^ (*y << j)) & hi;
                *x ^= t;
                *y ^= t >> j;
            }
        }
        j >>= 1;
    }
}

/// Transposes up to 64 pixels into bit planes: `planes[b]` bit `l` is bit
/// `b` of `pixels[l]`. Missing pixels (short blocks) read as zero; plane
/// indices `>= T::BITS` are zeroed.
///
/// Not part of the stable API — exposed for the transpose identity tests.
#[doc(hidden)]
#[inline(always)]
pub fn transpose_block<T: BitPixel>(pixels: &[T], planes: &mut [u64; 64]) {
    let k = T::BITS as usize;
    let f = 64 / k;
    debug_assert!(pixels.len() <= 64, "a block holds at most 64 pixels");
    planes.fill(0);
    if pixels.len() == 64 {
        // Full block: branch-free packing (the common case in the batched
        // group kernel, where whole tiles are chunked into 64-lane groups).
        for (j, word) in planes[..k].iter_mut().enumerate() {
            let mut w = 0u64;
            for field in 0..f {
                w |= pixels[field * k + j].to_u64() << (k * field);
            }
            *word = w;
        }
    } else {
        for (j, word) in planes[..k].iter_mut().enumerate() {
            let mut w = 0u64;
            for field in 0..f {
                let idx = field * k + j;
                if idx < pixels.len() {
                    w |= pixels[idx].to_u64() << (k * field);
                }
            }
            *word = w;
        }
    }
    butterfly(planes, k);
}

/// Inverse of [`transpose_block`]: scatters bit planes back into pixel
/// words, writing `out[l]` for every `l < out.len()`. Consumes the plane
/// array in place (the butterfly network is an involution).
///
/// Not part of the stable API — exposed for the transpose identity tests.
#[doc(hidden)]
#[inline(always)]
pub fn untranspose_block<T: BitPixel>(planes: &mut [u64; 64], out: &mut [T]) {
    let k = T::BITS as usize;
    let f = 64 / k;
    debug_assert!(out.len() <= 64, "a block holds at most 64 pixels");
    butterfly(planes, k);
    let fmask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
    for (j, &word) in planes[..k].iter().enumerate() {
        for field in 0..f {
            let idx = field * k + j;
            if idx < out.len() {
                out[idx] = T::from_u64(word >> (k * field) & fmask);
            }
        }
    }
}

/// The exponent of [`BitPixel::ceil_pow2`]: `ceil_pow2(x) == 1 << cp2_exp(x)`
/// for every representable `x`, including the `x ≤ 1 → 1` floor and the
/// top-bit saturation.
#[inline(always)]
fn cp2_exp<T: BitPixel>(x: u64) -> usize {
    // Branch-free: x ≤ 1 saturates the subtraction to 0, whose 64 leading
    // zeros give exponent 0 — the same floor the branching form encodes.
    (64 - x.saturating_sub(1).leading_zeros()).min(T::BITS - 1) as usize
}

/// The batched multi-pass driver entry: runs analyze-and-repair rounds over
/// a group of up to 64 equal-length series until a round changes nothing or
/// the pass budget is exhausted, exactly like the per-series loop in
/// [`crate::AlgoNgst`]. A round is a pure function of each series (series
/// are lane-independent), so a series whose previous round changed nothing
/// keeps producing zero corrections — running converged lanes alongside
/// still-active ones cannot alter either the repaired bits or the
/// changed-sample totals.
///
/// `buf` is a **time-major** batch (`buf[i*stride + base + l]` is sample
/// `i` of lane `l`, the layout [`crate::ImageStack::gather_tile_time_major`]
/// produces) and the group covers lanes `base..base+g` of it, so every
/// value read and every repair write touches contiguous memory.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bitsliced_group<T: BitPixel>(
    params: &BitsliceParams,
    passes: usize,
    buf: &mut [T],
    n: usize,
    stride: usize,
    base: usize,
    g: usize,
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    let mut total = 0;
    for _ in 0..passes.max(1) {
        let changed = bitsliced_group_pass(params, buf, n, stride, base, g, scratch, obs);
        total += changed;
        if changed == 0 {
            break;
        }
    }
    total
}

/// One analyze-and-repair round over a group of up to 64 series of `n`
/// samples each within a time-major batch. Dispatches to the active SIMD
/// tier like [`bitsliced_pass`]. The caller guarantees
/// `n >= upsilon.min_series_len()`, `1 <= g <= 64` and `base + g <= stride`.
#[allow(clippy::too_many_arguments)]
fn bitsliced_group_pass<T: BitPixel>(
    params: &BitsliceParams,
    buf: &mut [T],
    n: usize,
    stride: usize,
    base: usize,
    g: usize,
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    match dispatch_tier() {
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Avx2 => {
            // SAFETY: `dispatch_tier` yields `Avx2` only after runtime
            // CPUID detection confirmed AVX2 support (`force_dispatch_tier`
            // refuses tiers the machine lacks), so the target-feature
            // contract of `group_avx2` holds.
            #[allow(unsafe_code)]
            unsafe {
                group_avx2(params, buf, n, stride, base, g, scratch, obs)
            }
        }
        #[cfg(target_arch = "aarch64")]
        DispatchTier::Neon => {
            // SAFETY: NEON is part of the aarch64 baseline ISA, and
            // `dispatch_tier` yields `Neon` only on aarch64 builds.
            #[allow(unsafe_code)]
            unsafe {
                group_neon(params, buf, n, stride, base, g, scratch, obs)
            }
        }
        _ => group_impl::<T, false>(params, buf, n, stride, base, g, scratch, obs),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn group_avx2<T: BitPixel>(
    params: &BitsliceParams,
    buf: &mut [T],
    n: usize,
    stride: usize,
    base: usize,
    g: usize,
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    group_impl::<T, true>(params, buf, n, stride, base, g, scratch, obs)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
fn group_neon<T: BitPixel>(
    params: &BitsliceParams,
    buf: &mut [T],
    n: usize,
    stride: usize,
    base: usize,
    g: usize,
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    group_impl::<T, true>(params, buf, n, stride, base, g, scratch, obs)
}

/// The batched kernel body: **lane = series**. Where [`pass_impl`] slices
/// one series across time (lane = sample index), this body transposes up to
/// 64 *series* of a tile into per-time-step plane words, so every word
/// operation advances 64 independent voters at once and none of the
/// per-lane shift/reflection fix-ups of the time-sliced layout exist at
/// all:
///
/// - the way-`d` XOR pairing is a whole-plane XOR of time rows `i` and
///   `i+d` (reflected tail rows just index a different role),
/// - the backward voter plane is the forward φ row of `d` steps earlier —
///   pointer reuse instead of a cross-word funnel shift,
/// - every inner loop streams over the `n` time steps with **no
///   loop-carried dependency** (ripple borrows and complement carries live
///   in per-time-step lane arrays, carried by the *outer* loop over bit
///   positions), so LLVM vectorizes each of them for the active dispatch
///   tier.
///
/// Per-lane cut-offs come from a scalar exponent histogram per series
/// (`cp2_exp` of each XOR diff): the smallest `e` whose cumulative count
/// reaches the sensitivity rank is exactly `ceil_pow2` of the rank-selected
/// diff, because `ceil_pow2` is monotone. The per-lane power-of-two
/// threshold then turns into three precomputed lane masks per bit position
/// (cut-off below / at / above the bit), and the dual XOR/arithmetic prune
/// collapses to the arithmetic test alone as in the per-series kernel.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn group_impl<T: BitPixel, const VEC: bool>(
    params: &BitsliceParams,
    buf: &mut [T],
    n: usize,
    stride: usize,
    base: usize,
    g: usize,
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    debug_assert!((1..=64).contains(&g) && base + g <= stride && buf.len() >= n * stride);
    let bits = T::BITS as usize;
    let half = params.upsilon.half();
    let valid: u64 = if g == 64 { u64::MAX } else { (1u64 << g) - 1 };
    let VoterScratch {
        bit_planes,
        acc_all_bits,
        acc_one_bits,
        group_corr,
        group_chain,
        voter_builds,
        window_derivations,
        bitslice_transposes,
        bitslice_combines,
        ..
    } = scratch;

    // 0. Active bit width, measured in the *difference* domain: every
    //    pairwise XOR in a lane factors through the first time step
    //    (`a ^ b = (a ^ r) ^ (b ^ r)`), so `abits` — the bit length of
    //    `OR(v ^ r)` over the whole group — bounds every XOR diff, and
    //    therefore every |a−b| magnitude, borrow and complement carry.
    //    Every derived plane at or above `abits` is provably zero, the
    //    unanimous / all-but-one accumulators there fold to zero after
    //    the first two voter planes, and the value planes above `abits`
    //    only ever enter the pipeline masked by a (zero) difference plane
    //    — so no loop below needs them. Every plane loop therefore runs
    //    over `abits` planes, not `T::BITS`: real detector series sit on
    //    a large common pedestal (dark level plus scene), so the diffs
    //    span far fewer planes than the values themselves — often half or
    //    less — at full bit fidelity, and in the worst case
    //    (`abits == T::BITS`) the bound costs one cheap pass.
    let mut or_x = 0u64;
    {
        let ref_row = &buf[base..][..g];
        for i in 1..n {
            let row = &buf[i * stride + base..][..g];
            or_x = row
                .iter()
                .zip(ref_row)
                .fold(or_x, |acc, (v, r)| acc | (v.to_u64() ^ r.to_u64()));
        }
    }
    let abits = (64 - or_x.leading_zeros()) as usize;
    debug_assert!(abits <= bits);

    // 1. Transpose: `bit_planes[b*n + i]` holds bit `b` of time step `i`
    //    across the 64 series lanes (missing lanes read as zero — an
    //    all-zero series never votes for or receives a correction). The
    //    time-major batch layout makes each 64-lane read one contiguous
    //    row.
    {
        let _span = obs.span("sweep.transpose");
        bit_planes.clear();
        bit_planes.resize(abits * n, 0);
        let mut block = [0u64; 64];
        for i in 0..n {
            transpose_block(&buf[i * stride + base..][..g], &mut block);
            for (b, &w) in block[..abits].iter().enumerate() {
                bit_planes[b * n + i] = w;
            }
        }
        *bitslice_transposes += 1;
    }

    let mut cutoff_exp = [[0u8; 64]; MAX_WAYS];
    let mut changed = 0usize;
    {
        let _span = obs.span("sweep.bitplane_combine");
        acc_all_bits.clear();
        acc_all_bits.resize(abits * n, u64::MAX);
        acc_one_bits.clear();
        acc_one_bits.resize(abits * n, 0);
        group_corr.clear();
        group_corr.resize(abits * n, 0);
        group_chain.clear();
        group_chain.resize(5 * n, 0);
        let (neg, rest) = group_chain.split_at_mut(n);
        let (hi_acc, rest) = rest.split_at_mut(n);
        let (eq_acc, rest) = rest.split_at_mut(n);
        let (lo_acc, nz) = rest.split_at_mut(n);

        for d in 1..=half {
            let steady = n - d;
            let rank = params.sensitivity.cutoff_rank(n, steady) as u32;

            // 2. Per-lane cut-off exponents from a scalar histogram of the
            //    way's XOR-diff `ceil_pow2` exponents over the steady
            //    pairings (the same population the scalar rank selection
            //    sees). Time-major pays off twice here: both pairing rows
            //    are contiguous reads, and consecutive increments hit
            //    *different* lanes' histogram rows, so they pipeline
            //    instead of stalling on store-to-load forwarding.
            let mut hist = [0u32; 64 * 64];
            if VEC {
                // SIMD tiers split the work: a branch-free exponent pass
                // the vectorizer lowers to smear + popcount (for any `y`,
                // `popcount(y | y>>1 | … )` *is* `64 − leading_zeros(y)`,
                // so this computes exactly `cp2_exp`), then the scalar
                // scatter increments from the staged byte row.
                let mut ebuf = [0u8; 64];
                for i in 0..steady {
                    let ra = &buf[i * stride + base..][..g];
                    let rb = &buf[(i + d) * stride + base..][..g];
                    if T::BITS <= 32 {
                        for (e, (a, b)) in ebuf[..g].iter_mut().zip(ra.iter().zip(rb)) {
                            let mut y = (a.xor(*b).to_u64() as u32).saturating_sub(1);
                            y |= y >> 1;
                            y |= y >> 2;
                            y |= y >> 4;
                            y |= y >> 8;
                            y |= y >> 16;
                            *e = y.count_ones().min(T::BITS - 1) as u8;
                        }
                    } else {
                        for (e, (a, b)) in ebuf[..g].iter_mut().zip(ra.iter().zip(rb)) {
                            let mut y = a.xor(*b).to_u64().saturating_sub(1);
                            y |= y >> 1;
                            y |= y >> 2;
                            y |= y >> 4;
                            y |= y >> 8;
                            y |= y >> 16;
                            y |= y >> 32;
                            *e = (y.count_ones().min(T::BITS as u64 as u32 - 1)) as u8;
                        }
                    }
                    for (l, &e) in ebuf[..g].iter().enumerate() {
                        hist[(l << 6) | e as usize] += 1;
                    }
                }
            } else {
                for i in 0..steady {
                    let ra = &buf[i * stride + base..][..g];
                    let rb = &buf[(i + d) * stride + base..][..g];
                    for (l, (a, b)) in ra.iter().zip(rb).enumerate() {
                        hist[(l << 6) | cp2_exp::<T>(a.xor(*b).to_u64())] += 1;
                    }
                }
            }
            let exps = &mut cutoff_exp[d - 1];
            for (l, e_out) in exps[..g].iter_mut().enumerate() {
                let mut e = bits - 1;
                let mut acc = 0u32;
                for (b, &h) in hist[l << 6..][..bits].iter().enumerate() {
                    acc += h;
                    if acc >= rank {
                        e = b;
                        break;
                    }
                }
                *e_out = e as u8;
            }

            // 3. Lane masks of the cut-off position per bit plane: a bit of
            //    |a−b| at plane `b` is above/at/below a lane's cut-off
            //    `2^e` according to these masks, making the power-of-two
            //    comparison three AND-ORs per plane with no per-lane work.
            let mut eq_m = [0u64; 64];
            for (l, &e) in exps[..g].iter().enumerate() {
                eq_m[e as usize] |= 1u64 << l;
            }
            let mut hi_m = [0u64; 64];
            let mut lo_m = [0u64; 64];
            let mut run = 0u64;
            for b in 0..bits {
                hi_m[b] = run;
                run |= eq_m[b];
            }
            run = 0;
            for b in (0..bits).rev() {
                lo_m[b] = run;
                run |= eq_m[b];
            }

            // 4. |a − partner| planes via a ripple borrow carried across
            //    bit positions in the per-time-step `neg` array; the inner
            //    loops over time have no carried dependency. The forward
            //    partner of time `i` is `i+d`, reflected off the series
            //    tail.
            let dabs = &mut group_corr[..];
            neg.fill(0);
            for b in 0..abits {
                let row = &bit_planes[b * n..(b + 1) * n];
                let drow = &mut dabs[b * n..(b + 1) * n];
                for ((dst, bor), (&a, &p)) in drow[..steady]
                    .iter_mut()
                    .zip(neg[..steady].iter_mut())
                    .zip(row[..steady].iter().zip(&row[d..]))
                {
                    let x = a ^ p;
                    *dst = x ^ *bor;
                    *bor = (!a & p) | (!x & *bor);
                }
                for i in steady..n {
                    let j = 2 * (n - 1) - (i + d);
                    let a = row[i];
                    let x = a ^ row[j];
                    drow[i] = x ^ neg[i];
                    neg[i] = (!a & (a ^ x)) | (!x & neg[i]);
                }
            }

            // 5. Per-lane threshold compare, carry-free. With
            //    `y = dabs ^ neg` — the magnitude *before* the two's
            //    complement `+1`, i.e. `|a−b|` on non-borrowing lanes and
            //    `|a−b| − 1` on borrowing ones — the test `|a−b| > 2^e` is
            //    `gt(y, 2^e)` on the former and `ge(y, 2^e)` on the latter
            //    (`y ≥ 2^e ⟺ y+1 > 2^e`), so the `+1` ripple carry never
            //    has to be materialized: accumulate above/at/below-cut-off
            //    bits of `y` and fold `keep = hi | (eq & (lo | neg))`.
            hi_acc.fill(0);
            eq_acc.fill(0);
            lo_acc.fill(0);
            for b in 0..abits {
                let hm = hi_m[b];
                let em = eq_m[b];
                let lm = lo_m[b];
                let drow = &dabs[b * n..(b + 1) * n];
                for (((&db, &ng), ha), (ea, la)) in drow
                    .iter()
                    .zip(neg.iter())
                    .zip(hi_acc.iter_mut())
                    .zip(eq_acc.iter_mut().zip(lo_acc.iter_mut()))
                {
                    let y = db ^ ng;
                    *ha |= y & hm;
                    *ea |= y & em;
                    *la |= y & lm;
                }
            }
            // Fold into the keep mask, reusing `neg` in place (`*k` below
            // reads the borrow before overwriting). |a−b| ≤ a⊕b always, so
            // the arithmetic test alone reproduces the scalar dual
            // XOR/arithmetic prune.
            for (((k, &h), &e), &lo) in neg
                .iter_mut()
                .zip(hi_acc.iter())
                .zip(eq_acc.iter())
                .zip(lo_acc.iter())
            {
                *k = h | (e & (lo | *k));
            }

            // 6. Head φ(i, d−i) for the backward voter's first `d` time
            //    steps (the reflected pairings that are nobody's forward
            //    φ). At most Υ/2 single-word chains per way.
            let mut head = [[0u64; MAX_WAYS]; 64];
            for i in 0..d {
                let j = d - i;
                let mut x_col = [0u64; 64];
                let mut dab = [0u64; 64];
                let mut borrow = 0u64;
                for b in 0..abits {
                    let a = bit_planes[b * n + i];
                    let x = a ^ bit_planes[b * n + j];
                    x_col[b] = x;
                    dab[b] = x ^ borrow;
                    borrow = (!a & (a ^ x)) | (!x & borrow);
                }
                let neg1 = borrow;
                let (mut hi1, mut eq1, mut lo1) = (0u64, 0u64, 0u64);
                for b in 0..abits {
                    let y = dab[b] ^ neg1;
                    hi1 |= y & hi_m[b];
                    eq1 |= y & eq_m[b];
                    lo1 |= y & lo_m[b];
                }
                let keep1 = hi1 | (eq1 & (lo1 | neg1));
                for b in 0..abits {
                    head[b][i] = x_col[b] & keep1;
                }
            }

            // 7. Forward and backward folds, with φ computed on the fly —
            //    the XOR diff of the pairing masked by its keep bit is two
            //    ops, cheaper than storing and re-loading a φ plane. The
            //    backward voter plane of time `i ≥ d` is the forward φ of
            //    time `i−d` (φ is symmetric in its operands), so it reuses
            //    the current row read `d` steps behind with the partner's
            //    keep mask.
            for b in 0..abits {
                let row = &bit_planes[b * n..(b + 1) * n];
                let all_row = &mut acc_all_bits[b * n..(b + 1) * n];
                let one_row = &mut acc_one_bits[b * n..(b + 1) * n];
                for i in 0..d {
                    let pi = if i < steady {
                        i + d
                    } else {
                        2 * (n - 1) - (i + d)
                    };
                    let fwd = (row[i] ^ row[pi]) & neg[i];
                    let bwd = head[b][i];
                    let a0 = all_row[i];
                    let a1 = a0 & fwd;
                    let o1 = (one_row[i] & fwd) | (a0 & !fwd);
                    all_row[i] = a1 & bwd;
                    one_row[i] = (o1 & bwd) | (a1 & !bwd);
                }
                if steady > d {
                    let it = all_row[d..steady]
                        .iter_mut()
                        .zip(one_row[d..steady].iter_mut())
                        .zip(row[d..steady].iter().zip(&row[2 * d..]))
                        .zip(row[..steady - d].iter().zip(&neg[..steady - d]))
                        .zip(neg[d..steady].iter());
                    for ((((all, one), (&a, &f)), (&bk, &kb)), &ki) in it {
                        let fwd = (a ^ f) & ki;
                        let bwd = (a ^ bk) & kb;
                        let a0 = *all;
                        let a1 = a0 & fwd;
                        let o1 = (*one & fwd) | (a0 & !fwd);
                        *all = a1 & bwd;
                        *one = (o1 & bwd) | (a1 & !bwd);
                    }
                }
                for i in steady.max(d)..n {
                    let j = 2 * (n - 1) - (i + d);
                    let fwd = (row[i] ^ row[j]) & neg[i];
                    let bwd = (row[i] ^ row[i - d]) & neg[i - d];
                    let a0 = all_row[i];
                    let a1 = a0 & fwd;
                    let o1 = (one_row[i] & fwd) | (a0 & !fwd);
                    all_row[i] = a1 & bwd;
                    one_row[i] = (o1 & bwd) | (a1 & !bwd);
                }
            }
        }
        *voter_builds += g as u64;
        *window_derivations += g as u64;

        // 9. Per-lane window derivation (same shared helper as every other
        //    kernel), transposed into per-bit lane masks, then the window
        //    combine and the batched in-place repair.
        let mut msb_vals = [T::ZERO; 64];
        let mut lsb_vals = [T::ZERO; 64];
        for l in 0..g {
            let windows: BitWindows<T> = match params.static_windows {
                Some((a, c)) => BitWindows::from_widths(a, c),
                None => {
                    let mut cuts = [T::ZERO; MAX_WAYS];
                    for (dm1, c) in cuts[..half].iter_mut().enumerate() {
                        *c = T::from_u64(1u64 << cutoff_exp[dm1][l]);
                    }
                    derive_windows(&cuts[..half], params.msb_margin)
                }
            };
            msb_vals[l] = windows.msb_mask();
            lsb_vals[l] = windows.lsb_mask();
        }
        let mut msb_planes = [0u64; 64];
        let mut lsb_planes = [0u64; 64];
        transpose_block(&msb_vals[..g], &mut msb_planes);
        transpose_block(&lsb_vals[..g], &mut lsb_planes);

        let m_ways = 2 * half;
        let corr = &mut group_corr[..];
        nz.fill(0);
        for b in 0..abits {
            let mb = msb_planes[b];
            let lb = lsb_planes[b];
            let all_row = &acc_all_bits[b * n..(b + 1) * n];
            let one_row = &acc_one_bits[b * n..(b + 1) * n];
            let crow = &mut corr[b * n..(b + 1) * n];
            if params.use_grt && m_ways >= 4 {
                for ((c, z), (&all, &one)) in crow
                    .iter_mut()
                    .zip(nz.iter_mut())
                    .zip(all_row.iter().zip(one_row))
                {
                    let v = (all | ((all | one) & mb)) & lb;
                    *c = v;
                    *z |= v;
                }
            } else {
                // GRT off, or Υ = 2 where the all-but-one vote degenerates
                // to a single voter: either way the combine reduces to the
                // unanimous vector inside window A+B.
                for ((c, z), &all) in crow.iter_mut().zip(nz.iter_mut()).zip(all_row) {
                    let v = all & lb;
                    *c = v;
                    *z |= v;
                }
            }
        }
        let mut col = [0u64; 64];
        let mut out = [T::ZERO; 64];
        for i in 0..n {
            let m = nz[i] & valid;
            if m == 0 {
                continue;
            }
            changed += m.count_ones() as usize;
            for (b, c) in col[..abits].iter_mut().enumerate() {
                *c = corr[b * n + i];
            }
            col[abits..].fill(0);
            untranspose_block(&mut col, &mut out[..g]);
            // Lanes outside `m` have an all-zero correction column, so the
            // whole-row XOR is branch-free and exact.
            for (dst, &c) in buf[i * stride + base..][..g].iter_mut().zip(&out[..g]) {
                *dst = dst.xor(c);
            }
        }
        *bitslice_combines += 1;
    }
    changed
}

/// The kernel body. `#[inline(always)]` so the `target_feature` wrappers
/// re-instantiate it under their instruction set and LLVM vectorizes the
/// plane loops accordingly.
#[inline(always)]
fn pass_impl<T: BitPixel>(
    params: &BitsliceParams,
    series: &mut [T],
    scratch: &mut VoterScratch<T>,
    obs: &Obs,
) -> usize {
    let n = series.len();
    let bits = T::BITS as usize;
    let words = n.div_ceil(64);
    let half = params.upsilon.half();
    let VoterScratch {
        bit_planes,
        acc_all_bits,
        acc_one_bits,
        voter_builds,
        window_derivations,
        bitslice_transposes,
        bitslice_combines,
        ..
    } = scratch;

    // 1. Transpose the series into bit planes, word-major: the block for
    //    pixels w*64 .. w*64+64 lives contiguously at
    //    bit_planes[w * bits .. (w + 1) * bits], so all per-block work
    //    below touches one or two cache-resident runs. Every inner loop
    //    over `bits` has a compile-time-constant trip count (T::BITS), so
    //    LLVM unrolls and vectorizes it for the active dispatch tier.
    {
        let _span = obs.span("sweep.transpose");
        bit_planes.clear();
        bit_planes.resize(bits * words, 0);
        let mut block = [0u64; 64];
        for w in 0..words {
            let base = w * 64;
            let end = n.min(base + 64);
            transpose_block(&series[base..end], &mut block);
            bit_planes[w * bits..(w + 1) * bits].copy_from_slice(&block[..bits]);
        }
        *bitslice_transposes += 1;
    }

    const ZERO_BLOCK: [u64; 64] = [0; 64];
    let mut cutoffs = [T::ZERO; MAX_WAYS];
    let mut changed = 0usize;
    {
        let _span = obs.span("sweep.bitplane_combine");
        acc_all_bits.clear();
        acc_all_bits.resize(bits * words, u64::MAX);
        acc_one_bits.clear();
        acc_one_bits.resize(bits * words, 0);

        for d in 1..=half {
            let steady = n - d;

            // 2. Cut-off rank selection: V_val = 2^e for the smallest e
            // such that at least `rank` of the way's XOR diffs are <= 2^e.
            // ceil_pow2 is monotone, so this reproduces
            // `select_nth_unstable` + `ceil_pow2` exactly (including the
            // top-bit saturation when no e qualifies). One pass per block
            // computes `le_counts[e]` for every e at once: diff > 2^e iff
            // a higher bit is set, or bit e is set alongside a lower one —
            // both ORs come from one suffix and one prefix scan over the
            // block's planes, held entirely in stack registers.
            let mut le_counts = [0u64; 64];
            let mut x = [0u64; 64];
            let mut gt_hi = [0u64; 64];
            for w in 0..words {
                let a_lo = &bit_planes[w * bits..(w + 1) * bits];
                let a_hi = if w + 1 < words {
                    &bit_planes[(w + 1) * bits..(w + 2) * bits]
                } else {
                    &ZERO_BLOCK[..bits]
                };
                let valid = lane_mask(steady, w);
                if valid == 0 {
                    continue;
                }
                for b in 0..bits {
                    let a = a_lo[b];
                    x[b] = a ^ ((a >> d) | (a_hi[b] << (64 - d)));
                }
                let mut hi_or = 0u64;
                for b in (0..bits).rev() {
                    gt_hi[b] = hi_or;
                    hi_or |= x[b];
                }
                let mut lo_or = 0u64;
                for b in 0..bits {
                    let gt = gt_hi[b] | (x[b] & lo_or);
                    lo_or |= x[b];
                    le_counts[b] += u64::from((valid & !gt).count_ones());
                }
            }
            let rank = params.sensitivity.cutoff_rank(n, steady) as u64;
            let mut cutoff_e = bits - 1;
            for (e, &cnt) in le_counts[..bits].iter().enumerate() {
                if cnt >= rank {
                    cutoff_e = e;
                    break;
                }
            }
            let cutoff = T::from_u64(1u64 << cutoff_e);
            cutoffs[d - 1] = cutoff;
            let cu64 = cutoff.to_u64();

            // Backward-fold head patch: lanes i < d of block 0 consume the
            // reflected pairing φ(i, d−i), stashed per plane bit.
            let mut head_patch = [0u64; 64];
            for i in 0..d {
                let phi = prune(series[i], series[d - i], cu64).to_u64();
                for (b, pat) in head_patch[..bits].iter_mut().enumerate() {
                    *pat |= (phi >> b & 1) << i;
                }
            }
            let head = (1u64 << d) - 1;

            // 3. Prune + fold, one pass over the blocks. The pruned φ of a
            // block lives only in registers: the forward fold consumes it
            // immediately and the backward fold of the *next* block picks
            // it up from `prev_phi` (lane i consumes φ of lane i−d; φ is
            // symmetric in its operands, so no backward plane ever
            // materializes).
            let mut dabs = [0u64; 64];
            let mut phi_bufs = [[0u64; 64]; 2];
            for w in 0..words {
                let a_lo = &bit_planes[w * bits..(w + 1) * bits];
                let a_hi = if w + 1 < words {
                    &bit_planes[(w + 1) * bits..(w + 2) * bits]
                } else {
                    &ZERO_BLOCK[..bits]
                };
                // Double-buffer φ so the previous block's planes survive
                // without a copy.
                let (lo_half, hi_half) = phi_bufs.split_at_mut(1);
                let (phi, prev_phi) = if w % 2 == 0 {
                    (&mut lo_half[0], &hi_half[0])
                } else {
                    (&mut hi_half[0], &lo_half[0])
                };
                // Recompute X (cheaper than storing and re-loading it) and
                // run the arithmetic threshold: |a − b| > 2^e. |a−b| ≤ a⊕b
                // always, so this single test reproduces the scalar dual
                // XOR/arithmetic rule. The subtraction ripples a borrow
                // across planes; the absolute value is a conditional two's
                // complement; the comparison is branchless over the
                // cut-off position.
                let mut borrow = 0u64;
                for b in 0..bits {
                    let a = a_lo[b];
                    let xv = a ^ ((a >> d) | (a_hi[b] << (64 - d)));
                    x[b] = xv;
                    dabs[b] = xv ^ borrow;
                    borrow = (!a & (a ^ xv)) | (!xv & borrow);
                }
                let neg = borrow; // lanes where a < neighbor
                let mut carry = neg;
                let mut lo_or = 0u64;
                let mut hi_or = 0u64;
                let mut mid = 0u64;
                for (b, v) in dabs[..bits].iter_mut().enumerate() {
                    let y = *v ^ neg;
                    let r = y ^ carry;
                    carry &= y;
                    let is_lo = 0u64.wrapping_sub(u64::from(b < cutoff_e));
                    let is_hi = 0u64.wrapping_sub(u64::from(b > cutoff_e));
                    lo_or |= r & is_lo;
                    hi_or |= r & is_hi;
                    mid |= r & !(is_lo | is_hi);
                }
                let keep = hi_or | (mid & lo_or);
                for b in 0..bits {
                    phi[b] = x[b] & keep;
                }
                // Reflected forward pairings at the series tail: recompute
                // the at most d affected lanes with the scalar prune rule
                // and patch their bits. (The backward fold never consumes
                // them: lane i reads φ of lane i−d < steady.)
                let base = w * 64;
                for i in steady.max(base)..n.min(base + 64) {
                    let j = 2 * (n - 1) - (i + d);
                    let p = prune(series[i], series[j], cu64).to_u64();
                    let lane = 1u64 << (i - base);
                    for (b, ph) in phi[..bits].iter_mut().enumerate() {
                        *ph = (*ph & !lane) | ((p >> b & 1) * lane);
                    }
                }
                // Forward and backward folds into the accumulators:
                // all' = all & p; one' = (one & p) | (all & !p).
                let acc_all = &mut acc_all_bits[w * bits..(w + 1) * bits];
                let acc_one = &mut acc_one_bits[w * bits..(w + 1) * bits];
                for b in 0..bits {
                    let fwd = phi[b];
                    let mut bwd = (fwd << d) | (prev_phi[b] >> (64 - d));
                    if w == 0 {
                        bwd = (bwd & !head) | head_patch[b];
                    }
                    let a0 = acc_all[b];
                    let a1 = a0 & fwd;
                    let o1 = (acc_one[b] & fwd) | (a0 & !fwd);
                    acc_all[b] = a1 & bwd;
                    acc_one[b] = (o1 & bwd) | (a1 & !bwd);
                }
            }
        }
        *voter_builds += 1;
        *window_derivations += 1;

        // 5. Window combine and in-place repair, block by block. Blocks
        // whose lanes carry no correction skip the back-transpose.
        let windows: BitWindows<T> = match params.static_windows {
            Some((a, c)) => BitWindows::from_widths(a, c),
            None => derive_windows(&cutoffs[..half], params.msb_margin),
        };
        let m_ways = 2 * half;
        let msb = windows.msb_mask().to_u64();
        let lsb = windows.lsb_mask().to_u64();
        let mut corr = [0u64; 64];
        let mut out = [T::ZERO; 64];
        for w in 0..words {
            let acc_all = &acc_all_bits[w * bits..(w + 1) * bits];
            let acc_one = &acc_one_bits[w * bits..(w + 1) * bits];
            let mut nz = 0u64;
            for b in 0..bits {
                let all = acc_all[b];
                let aux = if !params.use_grt {
                    0
                } else if m_ways < 4 {
                    // Υ = 2: the all-but-one vote degenerates to a single
                    // voter; fall back to the unanimous vector.
                    all
                } else {
                    all | acc_one[b]
                };
                let mb = 0u64.wrapping_sub(msb >> b & 1);
                let lb = 0u64.wrapping_sub(lsb >> b & 1);
                let c = (all | (aux & mb)) & lb;
                corr[b] = c;
                nz |= c;
            }
            nz &= lane_mask(n, w);
            if nz == 0 {
                continue;
            }
            changed += nz.count_ones() as usize;
            corr[bits..].fill(0);
            let base = w * 64;
            let end = n.min(base + 64);
            untranspose_block(&mut corr, &mut out[..end - base]);
            for (s, &c) in series[base..end].iter_mut().zip(out[..end - base].iter()) {
                *s = s.xor(c);
            }
        }
        *bitslice_combines += 1;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive bit-probe reference for the butterfly transpose.
    fn naive_planes<T: BitPixel>(pixels: &[T]) -> [u64; 64] {
        let mut planes = [0u64; 64];
        for (l, px) in pixels.iter().enumerate() {
            for b in 0..T::BITS {
                planes[b as usize] |= u64::from(px.bit(b)) << l;
            }
        }
        planes
    }

    #[test]
    fn transpose_matches_naive_bit_probe() {
        let pixels: Vec<u16> = (0..64)
            .map(|i| (i as u16).wrapping_mul(0x9E37).rotate_left(i % 13))
            .collect();
        let mut planes = [0u64; 64];
        transpose_block(&pixels, &mut planes);
        assert_eq!(planes, naive_planes(&pixels));

        let pixels: Vec<u32> = (0..64).map(|i| 0xDEAD_BEEFu32.rotate_left(i)).collect();
        transpose_block(&pixels, &mut planes);
        assert_eq!(planes, naive_planes(&pixels));

        let pixels: Vec<u8> = (0..64).map(|i| (i as u8).wrapping_mul(37)).collect();
        transpose_block(&pixels, &mut planes);
        assert_eq!(planes, naive_planes(&pixels));

        let pixels: Vec<u64> = (0..64)
            .map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i * 7))
            .collect();
        transpose_block(&pixels, &mut planes);
        assert_eq!(planes, naive_planes(&pixels));
    }

    #[test]
    fn transpose_untranspose_is_identity_on_partial_blocks() {
        for len in [1usize, 17, 63, 64] {
            let pixels: Vec<u16> = (0..len)
                .map(|i| 40_000u16.wrapping_add(i as u16 * 997))
                .collect();
            let mut planes = [0u64; 64];
            transpose_block(&pixels, &mut planes);
            let mut out = vec![0u16; len];
            untranspose_block(&mut planes, &mut out);
            assert_eq!(out, pixels, "len={len}");
        }
    }

    #[test]
    fn lane_mask_covers_block_boundaries() {
        assert_eq!(lane_mask(128, 0), u64::MAX);
        assert_eq!(lane_mask(128, 1), u64::MAX);
        assert_eq!(lane_mask(128, 2), 0);
        assert_eq!(lane_mask(70, 1), (1 << 6) - 1);
        assert_eq!(lane_mask(3, 0), 0b111);
        assert_eq!(lane_mask(64, 0), u64::MAX);
    }

    #[test]
    fn dispatch_tier_is_supported_and_stable() {
        let tiers = detected_tiers();
        assert_eq!(tiers[0], DispatchTier::Portable);
        let tier = dispatch_tier();
        assert!(tiers.contains(&tier));
        assert_eq!(dispatch_tier(), tier, "cached tier must be stable");
    }

    #[test]
    fn force_dispatch_tier_rejects_unsupported() {
        // Portable is supported everywhere; an override round-trips.
        assert!(force_dispatch_tier(Some(DispatchTier::Portable)));
        assert_eq!(dispatch_tier(), DispatchTier::Portable);
        assert!(force_dispatch_tier(None));
        // A tier for a foreign architecture must be refused.
        #[cfg(target_arch = "x86_64")]
        assert!(!force_dispatch_tier(Some(DispatchTier::Neon)));
        #[cfg(target_arch = "aarch64")]
        assert!(!force_dispatch_tier(Some(DispatchTier::Avx2)));
    }
}
