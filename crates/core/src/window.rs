//! The three bit windows of §3.1.
//!
//! A 16-bit pixel is partitioned by temporal stability into:
//!
//! - **Window A** — the most significant bits, essentially constant across a
//!   temporal locality; a near-unanimous neighbor vote (Υ−1 of Υ) suffices to
//!   revert a bit here.
//! - **Window B** — the middle bits, whose binary weight is too large to
//!   ignore but which are not as consistent as A; a *unanimous* vote across
//!   all Υ voters is required.
//! - **Window C** — the least significant bits that vary naturally with every
//!   sample; flipped bits here are indistinguishable from noise, so the
//!   window is masked off from any correction.
//!
//! The boundaries are *dynamic*: they are derived from the per-way cut-off
//! values (`V_val`) of the [voter matrix](crate::VoterMatrix), i.e. from the
//! dataset's own difference statistics, so calm data gets tight windows and
//! turbulent data wide ones (§3.3).

use crate::pixel::BitPixel;

/// Bit-window masks for one temporal series.
///
/// Invariants (upheld by the constructors):
/// - every mask is a contiguous run of high bits (`!(2^k − 1)` form);
/// - `msb_mask ⊆ lsb_mask`, i.e. window A sits above window B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitWindows<T: BitPixel> {
    msb_mask: T,
    lsb_mask: T,
}

impl<T: BitPixel> BitWindows<T> {
    /// Builds the windows from the minimum and maximum per-way cut-off values
    /// (`V_val`, each a power of two) of the pruned voter matrix:
    ///
    /// - `LSB-MASK = !(min_vval − 1)` — bits at or above the *lowest* way
    ///   cut-off; everything below is window C, which carries no locality
    ///   information irrespective of the pairing way.
    /// - `MSB-MASK = !(max_vval − 1)` — bits at or above the *highest* way
    ///   cut-off form window A.
    ///
    /// Values are rounded up to powers of two by the caller (see
    /// [`BitPixel::ceil_pow2`]). `min_vval` and `max_vval` are swapped if
    /// supplied out of order.
    pub fn from_cutoffs(min_vval: T, max_vval: T) -> Self {
        let (lo, hi) = if max_vval < min_vval {
            (max_vval, min_vval)
        } else {
            (min_vval, max_vval)
        };
        let lsb_mask = T::from_u64(!(lo.to_u64().max(1) - 1)); // truncated to T::BITS
        let msb_mask = T::from_u64(!(hi.to_u64().max(1) - 1));
        BitWindows { msb_mask, lsb_mask }
    }

    /// Builds the windows directly from bit counts: window C spans the
    /// `c_bits` least significant bits, window A the `a_bits` most
    /// significant. Used for the static-threshold ablation.
    ///
    /// # Panics
    /// Panics if `a_bits + c_bits > T::BITS`.
    pub fn from_widths(a_bits: u32, c_bits: u32) -> Self {
        assert!(
            a_bits + c_bits <= T::BITS,
            "window widths exceed pixel width ({a_bits} + {c_bits} > {})",
            T::BITS
        );
        let ones = T::ONES.to_u64();
        let lsb_mask = T::from_u64(ones << c_bits & ones);
        let msb_mask = T::from_u64(if a_bits == 0 {
            0
        } else {
            ones << (T::BITS - a_bits) & ones
        });
        BitWindows { msb_mask, lsb_mask }
    }

    /// The MSB mask: 1-bits mark window A.
    pub fn msb_mask(self) -> T {
        self.msb_mask
    }

    /// The LSB mask: 1-bits mark windows A ∪ B (everything correctable).
    pub fn lsb_mask(self) -> T {
        self.lsb_mask
    }

    /// Mask of window A (near-unanimous vote suffices).
    pub fn window_a(self) -> T {
        self.msb_mask
    }

    /// Mask of window B (unanimous vote required).
    pub fn window_b(self) -> T {
        self.lsb_mask.and(self.msb_mask.not())
    }

    /// Mask of window C (never corrected).
    pub fn window_c(self) -> T {
        self.lsb_mask.not()
    }

    /// Width of window A in bits.
    pub fn width_a(self) -> u32 {
        self.msb_mask.count_ones()
    }

    /// Width of window B in bits.
    pub fn width_b(self) -> u32 {
        self.window_b().count_ones()
    }

    /// Width of window C in bits.
    pub fn width_c(self) -> u32 {
        self.window_c().count_ones()
    }

    /// Combines the unanimous correction vector (`corr_vect`) and the
    /// near-unanimous auxiliary vector (`corr_aux`) into the final,
    /// bit-adjusted correction exactly as Algorithm 1 does:
    ///
    /// ```text
    /// Corr = (Corr_Vect OR (Corr_Aux AND MSB-MASK)) AND LSB-MASK
    /// ```
    #[inline]
    pub fn combine(self, corr_vect: T, corr_aux: T) -> T {
        corr_vect.or(corr_aux.and(self.msb_mask)).and(self.lsb_mask)
    }
}

impl<T: BitPixel> Default for BitWindows<T> {
    /// Everything in window C — no bit may be corrected.
    fn default() -> Self {
        BitWindows {
            msb_mask: T::ZERO,
            lsb_mask: T::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cutoffs_partitions_disjointly() {
        // min V_val = 2^4, max V_val = 2^12 on u16.
        let w: BitWindows<u16> = BitWindows::from_cutoffs(1 << 4, 1 << 12);
        assert_eq!(w.window_c(), 0x000F);
        assert_eq!(w.window_b(), 0x0FF0);
        assert_eq!(w.window_a(), 0xF000);
        assert_eq!(w.window_a() | w.window_b() | w.window_c(), 0xFFFF);
        assert_eq!(w.window_a() & w.window_b(), 0);
        assert_eq!(w.window_b() & w.window_c(), 0);
        assert_eq!(w.width_a(), 4);
        assert_eq!(w.width_b(), 8);
        assert_eq!(w.width_c(), 4);
    }

    #[test]
    fn from_cutoffs_swaps_out_of_order() {
        let a: BitWindows<u16> = BitWindows::from_cutoffs(1 << 12, 1 << 4);
        let b: BitWindows<u16> = BitWindows::from_cutoffs(1 << 4, 1 << 12);
        assert_eq!(a, b);
    }

    #[test]
    fn from_cutoffs_equal_vvals_gives_empty_b() {
        let w: BitWindows<u16> = BitWindows::from_cutoffs(1 << 8, 1 << 8);
        assert_eq!(w.window_b(), 0);
        assert_eq!(w.width_a(), 8);
        assert_eq!(w.width_c(), 8);
    }

    #[test]
    fn cutoff_of_one_means_no_window_c() {
        let w: BitWindows<u16> = BitWindows::from_cutoffs(1, 1 << 8);
        assert_eq!(w.width_c(), 0);
        assert_eq!(w.lsb_mask(), 0xFFFF);
    }

    #[test]
    fn from_widths_matches_cutoffs() {
        let a: BitWindows<u16> = BitWindows::from_widths(4, 4);
        let b: BitWindows<u16> = BitWindows::from_cutoffs(1 << 4, 1 << 12);
        assert_eq!(a, b);
        let full_c: BitWindows<u16> = BitWindows::from_widths(0, 16);
        assert_eq!(full_c.lsb_mask(), 0);
        assert_eq!(full_c.msb_mask(), 0);
    }

    #[test]
    #[should_panic(expected = "window widths exceed")]
    fn from_widths_rejects_overlap() {
        let _: BitWindows<u16> = BitWindows::from_widths(10, 10);
    }

    #[test]
    fn combine_applies_masks() {
        let w: BitWindows<u16> = BitWindows::from_cutoffs(1 << 4, 1 << 12);
        // corr_vect everywhere, corr_aux everywhere:
        let c = w.combine(0xFFFF, 0xFFFF);
        assert_eq!(c, 0xFFF0, "window C must be masked off");
        // aux-only votes act only in window A:
        let c = w.combine(0x0000, 0xFFFF);
        assert_eq!(c, 0xF000);
        // unanimous votes act in A and B:
        let c = w.combine(0x0F00, 0x0000);
        assert_eq!(c, 0x0F00);
        // unanimous vote inside window C is suppressed:
        let c = w.combine(0x0008, 0x0000);
        assert_eq!(c, 0);
    }

    #[test]
    fn default_is_fully_masked() {
        let w: BitWindows<u16> = BitWindows::default();
        assert_eq!(w.combine(0xFFFF, 0xFFFF), 0);
        assert_eq!(w.width_c(), 16);
    }

    #[test]
    fn msb_subset_of_lsb_invariant() {
        for (lo, hi) in [(1u16, 1u16), (2, 2), (4, 1 << 15), (1 << 8, 1 << 9)] {
            let w: BitWindows<u16> = BitWindows::from_cutoffs(lo, hi);
            assert_eq!(w.msb_mask() & w.lsb_mask(), w.msb_mask());
        }
    }
}
