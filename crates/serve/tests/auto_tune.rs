//! End-to-end `--auto-tune` serving tests: a daemon with the per-stream
//! calibrator enabled must stamp the chosen parameters into the stats
//! trailer once warm, surface chosen-vs-requested gauges in the registry,
//! and stay bit-identical across repeats of a stationary scene.

use preflight_core::ImageStack;
use preflight_obs::Obs;
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::ServerBuilder;
use preflight_serve::{ClientBuilder, SubmitOptions};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A stationary scene: a fixed spatial ramp plus small per-frame noise in
/// the low bits, so the XOR-diff statistics are non-degenerate but stable.
fn noisy_stack(width: usize, height: usize, frames: usize, seed: u64) -> ImageStack<u16> {
    let mut stack: ImageStack<u16> = ImageStack::new(width, height, frames);
    let mut rng = seed;
    for f in 0..frames {
        let frame = stack.frame_mut(f);
        for (i, px) in frame.iter_mut().enumerate() {
            let base = ((i * 13) & 0x0FFF) as u16 | 0x4000;
            *px = base ^ (lcg(&mut rng) & 0x7) as u16;
        }
    }
    stack
}

#[test]
fn auto_tune_stamps_trailer_gauges_and_stays_deterministic() {
    let obs = Obs::new();
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        auto_tune: true,
        obs: obs.clone(),
        ..ServerConfig::default()
    })
    .serve()
    .expect("daemon start");
    let addr = handle.tcp_addr().expect("bound address");
    let mut client = ClientBuilder::new()
        .tcp(addr)
        .connect()
        .expect("client connect");
    let opts = SubmitOptions {
        stream_id: 9,
        eos: true,
        ..SubmitOptions::default()
    };

    // The calibrator samples up to 64 series per batch against a default
    // warm-up floor of 16 series, so the very first batch is already
    // served tuned; give it a few batches of slack anyway.
    let mut tuned = None;
    for _ in 0..6 {
        let stack = noisy_stack(16, 16, 8, 0xA5A5);
        let resp = client
            .submit(FramePayload::U16(stack), &opts)
            .expect("submit");
        if resp.stats.tuned_upsilon > 0 {
            tuned = Some(resp);
            break;
        }
    }
    let resp = tuned.expect("tuner must warm up within a few batches");
    assert!(resp.stats.tuned_window_a >= 1, "window A must be non-empty");
    assert!(
        u32::from(resp.stats.tuned_window_a) + u32::from(resp.stats.tuned_window_c) <= 16,
        "windows must partition a u16 word"
    );
    assert!(resp.stats.tuned_lambda <= 100);
    assert!(resp.stats.to_string().contains("tuned L="));

    // Stationary scene: the frozen decision must not move between batches,
    // and the repaired payload must be bit-identical run-to-run.
    let again = client
        .submit(FramePayload::U16(noisy_stack(16, 16, 8, 0xA5A5)), &opts)
        .expect("repeat submit");
    assert_eq!(again.stats.tuned_lambda, resp.stats.tuned_lambda);
    assert_eq!(again.stats.tuned_upsilon, resp.stats.tuned_upsilon);
    assert_eq!(again.stats.tuned_window_a, resp.stats.tuned_window_a);
    assert_eq!(again.stats.tuned_window_c, resp.stats.tuned_window_c);
    assert_eq!(
        again.payload, resp.payload,
        "stationary scenes must serve bit-identically under auto-tune"
    );

    // Chosen-vs-requested must be visible in the same registry /metrics
    // scrapes.
    let snap = obs.snapshot();
    assert_eq!(snap.gauge("tune_requested_upsilon", None), Some(4));
    assert_eq!(
        snap.gauge("tune_chosen_upsilon", None),
        Some(i64::from(resp.stats.tuned_upsilon))
    );
    assert_eq!(snap.gauge("tune_requested_lambda", None), Some(80));
    assert_eq!(
        snap.gauge("tune_chosen_lambda", None),
        Some(i64::from(resp.stats.tuned_lambda))
    );
    assert!(snap.gauge("tune_window_a_bits", None).is_some());

    handle.drain();
}

#[test]
fn auto_tune_off_leaves_the_trailer_untuned() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        obs: Obs::disabled(),
        ..ServerConfig::default()
    })
    .serve()
    .expect("daemon start");
    let addr = handle.tcp_addr().expect("bound address");
    let mut client = ClientBuilder::new()
        .tcp(addr)
        .connect()
        .expect("client connect");
    let resp = client
        .submit(
            FramePayload::U16(noisy_stack(8, 8, 4, 1)),
            &SubmitOptions::default(),
        )
        .expect("submit");
    assert_eq!(resp.stats.tuned_upsilon, 0, "tuning is strictly opt-in");
    assert_eq!(resp.stats.tuned_lambda, 0);
    assert_eq!(resp.stats.tuner_recalibrations, 0);
    handle.drain();
}
