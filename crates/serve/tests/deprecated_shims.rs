//! The PR 3 entry points live on as `#[deprecated]` shims over the
//! builder internals. This test is the one place still allowed to call
//! them, proving the shims keep serving until they are removed for real.

#![allow(deprecated)]

use preflight_serve::server::{start, ServerConfig};
use preflight_serve::Client;

#[test]
fn deprecated_entry_points_still_serve() {
    let handle = start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    })
    .expect("deprecated start shim works");
    let addr = handle.tcp_addr().expect("bound address");

    let mut client = Client::connect_tcp(addr).expect("deprecated connect shim works");
    assert_eq!(client.ping(7).expect("ping"), 7);

    handle.drain();
}
