//! Buffer-pool hygiene: a recycled buffer must never leak one request's
//! pixels into another, whatever sequence of geometries hits the pool.
//!
//! The unit tests in `src/pool.rs` pin the single-recycle case; these
//! tests drive randomized take/put sequences (a hand-rolled LCG stands in
//! for a property-testing dependency) and the full wire path, where a
//! large request followed by an undersized one on the same daemon is
//! exactly the shape that would expose a stale tail.

use preflight_core::ImageStack;
use preflight_serve::pool::BufferPool;
use preflight_serve::wire::FramePayload;
use preflight_serve::{ClientBuilder, ServerBuilder, SubmitOptions};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

#[test]
fn randomized_take_put_sequences_never_leak_stale_bytes() {
    let pool = BufferPool::detached();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    // 512 rounds of: take a random geometry, poison it, recycle (or leak
    // it to the allocator), then take another random geometry — which may
    // be smaller, larger, or equal, hitting or missing the shelf.
    for round in 0..512 {
        let samples = 1 + (lcg(&mut state) % 96) as usize * 8;
        if lcg(&mut state) % 2 == 0 {
            let mut buf = pool.take_filled_u16(samples);
            assert_eq!(buf.len(), samples, "round {round}: wrong u16 length");
            assert!(
                buf.iter().all(|&v| v == 0),
                "round {round}: stale u16 bytes leaked"
            );
            buf.iter_mut().for_each(|v| *v = 0xBEEF);
            if lcg(&mut state) % 4 != 0 {
                pool.put_u16(buf);
            }
        } else {
            let mut buf = pool.take_filled_u32(samples);
            assert_eq!(buf.len(), samples, "round {round}: wrong u32 length");
            assert!(
                buf.iter().all(|&v| v == 0),
                "round {round}: stale u32 bytes leaked"
            );
            buf.iter_mut().for_each(|v| *v = 0xDEAD_BEEF);
            if lcg(&mut state) % 4 != 0 {
                pool.put_u32(buf);
            }
        }
    }
}

#[test]
fn truncated_buffers_are_never_reshelved() {
    let pool = BufferPool::detached();
    let mut state = 0x0DDB_1A5E_5BAD_C0DEu64;
    // An aborted mid-ingest buffer comes back shorter than its declared
    // geometry; the pool must drop it rather than serve it to the next
    // same-length request.
    for _ in 0..128 {
        let declared = 64 + (lcg(&mut state) % 64) as usize;
        let kept = (lcg(&mut state) % declared as u64) as usize;
        let mut buf = pool.take_filled_u16(declared);
        buf.iter_mut().for_each(|v| *v = 0x5A5A);
        buf.truncate(kept);
        pool.put_u16(buf);
        let next = pool.take_filled_u16(kept.max(1));
        assert_eq!(next.len(), kept.max(1));
        assert!(next.iter().all(|&v| v == 0), "truncated buffer reshelved");
    }
}

/// The wire-level shape that would expose a leaked pool buffer: a large
/// all-bits-set stack, then an undersized all-zero stack whose response
/// travels through a recycled buffer. The served pixels must match the
/// direct repair of the *small* stack exactly — no tail from the big one.
#[test]
fn undersized_follow_up_requests_see_no_stale_pixels() {
    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .serve()
        .expect("daemon start");
    let mut client = ClientBuilder::new()
        .tcp(handle.tcp_addr().unwrap())
        .connect()
        .expect("connect");

    let mut state = 0xF00D_F00Du64;
    for round in 0..8 {
        // Big poisoned stack first (every sample lit), then a small flat
        // one on the same connection and stream.
        let big: Vec<u16> = (0..32 * 32 * 8).map(|_| 0xFFFF).collect();
        let big = ImageStack::from_vec(32, 32, 8, big).unwrap();
        let response = client
            .submit(
                FramePayload::U16(big),
                &SubmitOptions {
                    stream_id: 9,
                    eos: true,
                    ..SubmitOptions::default()
                },
            )
            .expect("big submit");
        assert_eq!(response.payload.frames(), 8);

        let w = 4 + (lcg(&mut state) % 12) as usize;
        let h = 4 + (lcg(&mut state) % 8) as usize;
        let small_data: Vec<u16> = vec![100; w * h * 4];
        let small = ImageStack::from_vec(w, h, 4, small_data).unwrap();
        let response = client
            .submit(
                FramePayload::U16(small),
                &SubmitOptions {
                    stream_id: 9,
                    eos: true,
                    ..SubmitOptions::default()
                },
            )
            .expect("small submit");
        let FramePayload::U16(served) = response.payload else {
            panic!("response changed pixel type");
        };
        assert_eq!(served.as_slice().len(), w * h * 4);
        assert!(
            served.as_slice().iter().all(|&v| v == 100),
            "round {round}: a flat scene must come back flat — stale pixels leaked"
        );
    }
    handle.drain();
}
