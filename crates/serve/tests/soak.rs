//! High-connection soak tests for the event-loop daemon (feature `soak`).
//!
//! A real `preflightd` subprocess holds a herd of idle connections (10 000
//! by default — scale with `PREFLIGHT_SOAK_CONNS`) while active clients
//! submit frames whose replies must stay bit-identical to a direct
//! [`Preprocessor`] run. The subprocess split matters: each side of a
//! socket pair charges a different process's fd budget, which is what
//! makes 10k connections fit under common `ulimit -n` hard caps.
//!
//! Run with:
//!
//! ```text
//! cargo test -p preflight-serve --features soak --release -- --test-threads 1
//! ```

#![cfg(all(unix, feature = "soak"))]

use preflight_core::{AlgoNgst, ImageStack, Preprocessor, Sensitivity, Upsilon};
use preflight_serve::poll::raise_nofile_limit;
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::{Client, ClientBuilder, ClientError, SubmitOptions};
use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Idle connections to hold: `PREFLIGHT_SOAK_CONNS` or the full 10k.
fn soak_conns() -> usize {
    std::env::var("PREFLIGHT_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// A `preflightd` subprocess that is SIGKILLed on drop, so a failed
/// assertion never leaks a daemon holding thousands of sockets.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_preflightd"));
        cmd.args(["--tcp", "127.0.0.1:0"]);
        cmd.args(extra_args);
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn preflightd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("preflightd exited before announcing its address")
                .expect("read preflightd stdout");
            if let Some(rest) = line.split("tcp://").nth(1) {
                break rest.trim().parse().expect("announced address parses");
            }
        };
        // Keep draining the pipe so the child never blocks on stdout.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        ClientBuilder::new()
            .tcp(self.addr)
            .io_timeout(Duration::from_secs(120))
            .connect()
            .expect("client connect")
    }

    /// Drains over the wire and reaps the child.
    fn stop(mut self) {
        if let Ok(mut client) = ClientBuilder::new()
            .tcp(self.addr)
            .io_timeout(Duration::from_secs(60))
            .connect()
        {
            let _ = client.drain();
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => break, // Drop SIGKILLs.
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

fn noisy_stack(width: usize, height: usize, frames: usize, seed: u64) -> ImageStack<u16> {
    let mut state = seed;
    let data: Vec<u16> = (0..width * height * frames)
        .map(|i| {
            let base = 2000 + ((i % (width * height)) as u16 % 700);
            let r = lcg(&mut state);
            if r.is_multiple_of(97) {
                base | (1 << (8 + (r % 7) as u16))
            } else {
                base + (r % 9) as u16
            }
        })
        .collect();
    ImageStack::from_vec(width, height, frames, data).expect("stack dims")
}

fn direct_oracle(stack: &ImageStack<u16>) -> ImageStack<u16> {
    let algo = AlgoNgst::new(
        Upsilon::new(4).expect("valid upsilon"),
        Sensitivity::new(80).expect("valid lambda"),
    );
    let mut direct = stack.clone();
    Preprocessor::new(&algo).threads(2).run(&mut direct);
    direct
}

/// Opens `count` idle connections, failing loudly if any are refused.
fn open_idle_herd(addr: SocketAddr, count: usize) -> Vec<TcpStream> {
    let mut herd = Vec::with_capacity(count);
    for i in 0..count {
        match TcpStream::connect(addr) {
            Ok(stream) => herd.push(stream),
            Err(e) => panic!("idle connection {i}/{count} refused: {e}"),
        }
    }
    herd
}

#[test]
fn idle_herd_plus_active_traffic_stays_bit_identical() {
    let _ = raise_nofile_limit();
    let conns = soak_conns();
    // Four shards: the herd spreads across every reuseport listener, so
    // the bit-identity and open-connection accounting checks below cover
    // the multi-shard data plane, not just a single loop.
    let daemon = Daemon::spawn(&["--shards", "4"]);

    let herd = open_idle_herd(daemon.addr, conns);
    assert_eq!(herd.len(), conns, "every idle connection must be held");

    // The daemon must agree it is carrying the whole herd.
    let mut probe = daemon.client();
    let open = probe
        .stats()
        .expect("stats over the wire")
        .gauge("serve_open_connections", None)
        .expect("open-connection gauge is exported");
    assert!(
        open >= conns as i64,
        "daemon reports {open} open connections, expected at least {conns}"
    );

    // Active traffic through the same loop: replies must match the direct
    // library path bit for bit, herd or no herd.
    let mut workers = Vec::new();
    for c in 0..4u64 {
        let addr = daemon.addr;
        workers.push(std::thread::spawn(move || {
            let mut client = ClientBuilder::new()
                .tcp(addr)
                .io_timeout(Duration::from_secs(120))
                .connect()
                .expect("active client connect");
            for r in 0..4u64 {
                let stack = noisy_stack(32, 32, 8, 0x50AC ^ (c << 32) ^ r);
                let direct = direct_oracle(&stack);
                let opts = SubmitOptions {
                    stream_id: c + 1,
                    lambda: 80,
                    upsilon: 4,
                    eos: true,
                };
                let response = loop {
                    match client.submit(FramePayload::U16(stack.clone()), &opts) {
                        Ok(response) => break response,
                        Err(ClientError::Busy(_)) => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("active client {c} request {r} failed: {e}"),
                    }
                };
                let FramePayload::U16(served) = response.payload else {
                    panic!("response changed pixel type");
                };
                assert_eq!(
                    served.as_slice(),
                    direct.as_slice(),
                    "served repair must stay bit-identical under a {} conn herd",
                    soak_conns()
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("active client thread");
    }

    drop(herd);
    daemon.stop();
}

#[test]
fn over_cap_connection_gets_busy_not_a_silent_close() {
    // The shipping default is 10k-scale; the sweep below exercises the
    // same admission path at whatever scale the environment allows.
    assert_eq!(
        ServerConfig::default().max_connections,
        10_240,
        "the default connection cap is 10k-scale"
    );

    let _ = raise_nofile_limit();
    let cap = soak_conns();
    let daemon = Daemon::spawn(&["--max-conns", &cap.to_string()]);

    let herd = open_idle_herd(daemon.addr, cap);
    assert_eq!(herd.len(), cap);

    // One more: the daemon must answer Busy carrying the cap, then close —
    // never close silently.
    let mut over = ClientBuilder::new()
        .tcp(daemon.addr)
        .io_timeout(Duration::from_secs(30))
        .connect()
        .expect("tcp connect itself succeeds");
    match over.recv_response() {
        Err(ClientError::Busy(busy)) => {
            assert_eq!(busy.capacity as usize, cap, "Busy must carry the cap")
        }
        other => panic!("expected Busy on the over-cap connection, got {other:?}"),
    }

    // Release the herd and confirm the daemon counted the rejection.
    drop(herd);
    let deadline = Instant::now() + Duration::from_secs(30);
    let rejected = loop {
        if let Ok(mut client) = ClientBuilder::new()
            .tcp(daemon.addr)
            .io_timeout(Duration::from_secs(30))
            .connect()
        {
            if let Ok(snap) = client.stats() {
                break snap
                    .counter("serve_connections_rejected_total", None)
                    .unwrap_or(0);
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never freed a slot after the herd disconnected"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(rejected, 1, "exactly one over-cap rejection");
    daemon.stop();
}

#[test]
fn slow_loris_partial_envelope_is_cut_by_the_stall_deadline() {
    let daemon = Daemon::spawn(&[]);

    // A well-behaved idle connection lives forever; one that starts an
    // envelope and stalls must be cut by the 30 s no-progress deadline.
    let mut loris = TcpStream::connect(daemon.addr).expect("connect");
    std::io::Write::write_all(&mut loris, b"PF").expect("send a partial header");
    loris
        .set_read_timeout(Some(Duration::from_secs(1)))
        .expect("read timeout");

    let started = Instant::now();
    let mut buf = [0u8; 64];
    let closed_after = loop {
        match loris.read(&mut buf) {
            Ok(0) => break started.elapsed(), // EOF: the daemon hung up.
            Ok(_) => {}                       // Tolerate a stray error reply.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(
                    started.elapsed() < Duration::from_secs(90),
                    "slow-loris connection never cut"
                );
            }
            Err(_) => break started.elapsed(), // Reset also counts as cut.
        }
    };
    assert!(
        closed_after >= Duration::from_secs(25),
        "the deadline must not cut engaged connections early (cut at {closed_after:?})"
    );
    assert!(
        closed_after < Duration::from_secs(60),
        "the stall deadline must fire near 30 s (cut at {closed_after:?})"
    );
    daemon.stop();
}
