//! Property tests for the `preflightd` wire protocol: every message that
//! encodes must decode to itself, and corrupted envelopes must be rejected
//! with the right error — never accepted, never panicked on.

use preflight_core::ImageStack;
use preflight_serve::telemetry::RequestStats;
use preflight_serve::wire::{
    decode_message, encode_message, BusyReply, Dtype, ErrorCode, ErrorReply, FramePayload, Message,
    SubmitRequest, SubmitResponse, WireError, MAGIC, VERSION,
};
use proptest::prelude::*;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

fn payload_for(
    dtype: Dtype,
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
) -> FramePayload {
    let mut state = seed;
    let n = width * height * frames;
    match dtype {
        Dtype::U16 => {
            let data: Vec<u16> = (0..n).map(|_| lcg(&mut state) as u16).collect();
            FramePayload::U16(ImageStack::from_vec(width, height, frames, data).unwrap())
        }
        Dtype::U32 => {
            let data: Vec<u32> = (0..n).map(|_| lcg(&mut state) as u32).collect();
            FramePayload::U32(ImageStack::from_vec(width, height, frames, data).unwrap())
        }
    }
}

fn roundtrip(msg: &Message) -> Message {
    let bytes = encode_message(msg);
    let (decoded, consumed) = decode_message(&bytes).expect("well-formed message must decode");
    assert_eq!(
        consumed,
        bytes.len(),
        "decode must consume the whole envelope"
    );
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn submit_roundtrips_for_every_dtype(
        request_id in any::<u64>(),
        stream_id in any::<u64>(),
        lambda in 0u8..=100,
        upsilon_half in 1u8..=8,
        eos in any::<bool>(),
        dtype_is_u32 in any::<bool>(),
        width in 1usize..=9,
        height in 1usize..=9,
        frames in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let dtype = if dtype_is_u32 { Dtype::U32 } else { Dtype::U16 };
        let msg = Message::Submit(SubmitRequest {
            request_id,
            stream_id,
            lambda,
            upsilon: upsilon_half * 2,
            eos,
            payload: payload_for(dtype, width, height, frames, seed),
        });
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn response_roundtrips_for_every_dtype(
        request_id in any::<u64>(),
        dtype_is_u32 in any::<bool>(),
        width in 1usize..=9,
        height in 1usize..=9,
        frames in 1usize..=6,
        seed in any::<u64>(),
        samples_changed in any::<u64>(),
        bits_flipped in any::<u64>(),
        agreement in 0u32..=1000,
        queue_wait_us in any::<u64>(),
        service_us in any::<u64>(),
    ) {
        let dtype = if dtype_is_u32 { Dtype::U32 } else { Dtype::U16 };
        let msg = Message::Response(SubmitResponse {
            request_id,
            stats: RequestStats {
                samples_changed,
                bits_flipped,
                voter_agreement_permille: agreement,
                queue_wait_us,
                service_us,
                ..RequestStats::default()
            },
            payload: payload_for(dtype, width, height, frames, seed),
        });
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn control_messages_roundtrip(token in any::<u64>(), capacity in 1u32..1000, in_flight in 0u32..1000) {
        for msg in [
            Message::Ping(token),
            Message::Pong(token),
            Message::Drain,
            Message::Busy(BusyReply { request_id: token, capacity, in_flight }),
            Message::Error(ErrorReply {
                request_id: token,
                code: ErrorCode::Malformed,
                message: "a reason".to_owned(),
            }),
        ] {
            prop_assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn bad_magic_is_rejected(corrupt_byte in 0usize..4, xor in 1u8..=255) {
        let mut bytes = encode_message(&Message::Ping(7));
        bytes[corrupt_byte] ^= xor;
        match decode_message(&bytes) {
            Err(WireError::BadMagic(m)) => prop_assert_ne!(m, MAGIC),
            other => return Err(TestCaseError::fail(format!(
                "corrupt magic must fail as BadMagic, got {other:?}"
            ))),
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length(
        frames in 1usize..=4,
        seed in any::<u64>(),
        cut_num in 0u64..=1_000_000,
    ) {
        let msg = Message::Submit(SubmitRequest {
            request_id: 1,
            stream_id: 2,
            lambda: 80,
            upsilon: 4,
            eos: true,
            payload: payload_for(Dtype::U16, 4, 4, frames, seed),
        });
        let bytes = encode_message(&msg);
        // Any strict prefix must be rejected, and as Truncated/Io — not
        // misparsed into some other message.
        let cut = (cut_num as usize) % bytes.len();
        match decode_message(&bytes[..cut]) {
            Ok(_) => return Err(TestCaseError::fail(format!(
                "prefix of {cut}/{} bytes decoded successfully",
                bytes.len()
            ))),
            Err(WireError::Truncated(_)) | Err(WireError::Io(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!(
                "prefix of {cut} bytes failed with unexpected error: {e:?}"
            ))),
        }
    }

    #[test]
    fn payload_corruption_is_rejected(frames in 1usize..=4, seed in any::<u64>(), pick in any::<u64>(), xor in 1u8..=255) {
        let msg = Message::Submit(SubmitRequest {
            request_id: 1,
            stream_id: 2,
            lambda: 80,
            upsilon: 4,
            eos: false,
            payload: payload_for(Dtype::U32, 3, 3, frames, seed),
        });
        let mut bytes = encode_message(&msg);
        // Flip one byte anywhere past the header. Whatever field it lands
        // in, decode must fail: the envelope CRC covers the whole payload.
        let lo = 10;
        let hi = bytes.len();
        let idx = lo + (pick as usize) % (hi - lo);
        bytes[idx] ^= xor;
        prop_assert!(decode_message(&bytes).is_err());
    }
}

#[test]
fn huge_declared_geometry_is_rejected_before_allocating() {
    // A tiny crafted Submit declaring a multi-terabyte stack must fail
    // geometry validation before anything is allocated from the untrusted
    // width/height/frames fields — a capacity-overflow panic or an OOM
    // abort here would be a remote DoS that bypasses the payload cap.
    for (w, h, f) in [
        (u32::MAX, u32::MAX, u32::MAX),
        (65_535u32, 65_535, u32::MAX),
        (4_096, 4_096, 1_000_000),
        (1, 1, u32::MAX),
    ] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes()); // request id
        payload.extend_from_slice(&2u64.to_le_bytes()); // stream id
        payload.push(80); // lambda
        payload.push(4); // upsilon
        payload.push(1); // eos
        payload.push(0); // dtype = U16
        payload.extend_from_slice(&w.to_le_bytes());
        payload.extend_from_slice(&h.to_le_bytes());
        payload.extend_from_slice(&f.to_le_bytes());
        // Seal a well-formed envelope around it so only the geometry check
        // can reject it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1); // Submit
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&preflight_serve::crc::crc32(&payload).to_le_bytes());
        match decode_message(&bytes) {
            Err(WireError::Truncated(_)) | Err(WireError::Malformed(_)) => {}
            other => panic!("{w}x{h}x{f} must be rejected cheaply, got {other:?}"),
        }
    }
}

#[test]
fn frame_crc_mismatch_is_reported_as_such() {
    // Corrupt one pixel inside a frame and re-seal the *envelope* CRC, so
    // only the per-frame CRC can catch it.
    let msg = Message::Submit(SubmitRequest {
        request_id: 9,
        stream_id: 1,
        lambda: 80,
        upsilon: 4,
        eos: true,
        payload: payload_for(Dtype::U16, 4, 4, 2, 0xDECAF),
    });
    let mut bytes = encode_message(&msg);
    let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    // Offset of the first pixel word inside the payload: request_id(8) +
    // stream_id(8) + lambda(1) + upsilon(1) + eos(1) + dtype(1) + dims(12).
    let pixel0 = 10 + 8 + 8 + 1 + 1 + 1 + 1 + 12;
    bytes[pixel0] ^= 0x40;
    let body_crc = preflight_serve::crc::crc32(&bytes[10..10 + len]);
    let crc_at = 10 + len;
    bytes[crc_at..crc_at + 4].copy_from_slice(&body_crc.to_le_bytes());
    match decode_message(&bytes) {
        Err(WireError::CrcMismatch { scope, .. }) => assert_eq!(scope, "frame"),
        other => panic!("expected frame CrcMismatch, got {other:?}"),
    }
}

#[test]
fn bad_version_and_unknown_type_are_rejected() {
    let mut bytes = encode_message(&Message::Ping(1));
    bytes[4] = 99; // version byte
    assert!(matches!(
        decode_message(&bytes),
        Err(WireError::BadVersion(99))
    ));

    let mut bytes = encode_message(&Message::Ping(1));
    bytes[5] = 0xEE; // type byte
    assert!(matches!(
        decode_message(&bytes),
        Err(WireError::UnknownType(0xEE))
    ));
}
