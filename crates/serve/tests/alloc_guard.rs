//! Steady-state allocation guard for the zero-copy data plane.
//!
//! With a warm buffer pool and a stable request geometry, the daemon's
//! request path is designed to perform **zero** steady-state heap
//! allocation: payloads decode into pooled stacks, the engine swaps
//! pooled work buffers, and replies leave through reused scratch +
//! `writev` segments. This test swaps in a counting global allocator,
//! warms the daemon, then measures whole-process allocation over a batch
//! of requests. The *client* side of the socket still allocates (it
//! encodes each request and materialises each response, roughly two
//! payload-sized buffers per round trip), so the budget is expressed as a
//! multiple of the payload size with client-side traffic accounted for:
//! the pre-pool daemon cost several payload copies per request on top,
//! and a regression back to that shape trips the bound.
//!
//! Feature-gated (`alloc-guard`) because a global allocator shim applies
//! to the entire test binary.
#![cfg(feature = "alloc-guard")]
// The workspace bans unsafe in the library crates (with documented
// exceptions); a `GlobalAlloc` impl is unavoidable here and this test
// binary is the narrowest possible scope for it.
#![allow(unsafe_code)]

use preflight_core::ImageStack;
use preflight_serve::wire::FramePayload;
use preflight_serve::{ClientBuilder, ServerBuilder, SubmitOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// counter bump, which allocates nothing itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        if layout.size() >= 8192 {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size());
        BYTES_ALLOCATED.fetch_add(grown as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warm_request_path_stays_inside_the_heap_budget() {
    const W: usize = 32;
    const H: usize = 32;
    const FRAMES: usize = 8;
    const MEASURED: usize = 32;
    let payload_bytes = (W * H * FRAMES * 2) as u64;

    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .serve()
        .expect("daemon start");
    let mut client = ClientBuilder::new()
        .tcp(handle.tcp_addr().unwrap())
        .connect()
        .expect("connect");

    let submit = |client: &mut preflight_serve::Client, stack: ImageStack<u16>| {
        let response = client
            .submit(
                FramePayload::U16(stack),
                &SubmitOptions {
                    stream_id: 3,
                    eos: true,
                    ..SubmitOptions::default()
                },
            )
            .expect("submit");
        assert_eq!(response.payload.frames(), FRAMES);
    };

    // Warm-up: fills the buffer pool, the per-connection scratch, the
    // batcher's group maps, and every lazily-grown channel block.
    for i in 0..16u16 {
        let data: Vec<u16> = vec![2000 + i; W * H * FRAMES];
        submit(
            &mut client,
            ImageStack::from_vec(W, H, FRAMES, data).unwrap(),
        );
    }

    // Pre-build the measured payloads so construction cost stays out of
    // the measured window (submit consumes its stack).
    let mut stacks: Vec<ImageStack<u16>> = (0..MEASURED as u16)
        .map(|i| {
            let data: Vec<u16> = vec![3000 + i; W * H * FRAMES];
            ImageStack::from_vec(W, H, FRAMES, data).unwrap()
        })
        .collect();

    let before = BYTES_ALLOCATED.load(Ordering::Relaxed);
    let large_before = LARGE_ALLOCS.load(Ordering::Relaxed);
    for stack in stacks.drain(..) {
        submit(&mut client, stack);
    }
    let spent = BYTES_ALLOCATED.load(Ordering::Relaxed) - before;
    let large = LARGE_ALLOCS.load(Ordering::Relaxed) - large_before;

    handle.drain();

    // The sharp invariant: payload-scale allocations. The client performs
    // exactly three per round trip (request encode, socket read buffer,
    // response stack); a warmed daemon performs zero — its payloads live
    // in pooled buffers and replies leave through reused scratch +
    // `writev` segments. The historical (pre-pool, pre-writev) daemon
    // added several more per request, so any count beyond the client's
    // own three means the zero-alloc path regressed.
    assert!(
        large <= 3 * MEASURED as u64,
        "{large} payload-scale allocations over {MEASURED} requests \
         (client accounts for exactly {}) — the pooled daemon path regressed",
        3 * MEASURED
    );
    // And a generous whole-process byte ceiling to catch death by a
    // thousand small allocations: ~3 payload copies of client traffic
    // plus headroom for sub-payload churn (channel nodes, telemetry).
    let per_request = spent / MEASURED as u64;
    assert!(
        per_request <= 5 * payload_bytes,
        "steady-state request path allocates {per_request} B/request \
         (payload is {payload_bytes} B) — heap churn regressed"
    );
}
