//! Readiness polling for the event-driven daemon: a thin, audited FFI shim
//! over `epoll(7)` (Linux) and `kqueue(2)` (macOS/FreeBSD).
//!
//! The workspace bans `unsafe` (see CONTRIBUTING.md); [`crate::signal`] was
//! the first documented exception and this module is the second, for the
//! same reason: `std` exposes no readiness-polling primitive, and the
//! no-new-dependencies rule keeps `libc`/`mio`/`polling` out. The audit
//! surface is deliberately small:
//!
//! - every `extern "C"` declaration matches the kernel ABI for the targets
//!   we compile on (struct layouts are `#[repr(C)]` with the platform's
//!   packing, constants are copied from the platform headers and
//!   cross-checked against the libc crate's definitions);
//! - every call site checks the return value and converts `-1` into
//!   [`std::io::Error::last_os_error`] — no errno is ever ignored silently;
//! - no pointer outlives the call it is passed to: the kernel writes into
//!   buffers owned by the caller's stack/heap for exactly the duration of
//!   the syscall;
//! - nothing here runs in signal context, allocates in a handler, or
//!   touches thread-local state.
//!
//! The API is deliberately tiny — register/modify/remove a file descriptor
//! under a `u64` token, wait for readiness, and a self-pipe [`Waker`] so
//! other threads (engine workers queuing responses, the drain path) can
//! interrupt a wait. Level-triggered semantics on both backends, so a
//! partially-consumed readable socket is simply reported again.

#![allow(unsafe_code)]

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Raw file descriptor alias (mirrors `std::os::fd::RawFd` without pulling
/// the platform-specific prelude into every user of this module).
pub type RawFd = i32;

/// What readiness to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Readable and writable.
    ReadWrite,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Bytes (or an accepted connection) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the owner should read
    /// to EOF and close.
    pub closed: bool,
}

// ---------------------------------------------------------------------------
// Shared POSIX calls (read/write/close/fcntl/pipe/rlimit)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod posix {
    use super::RawFd;
    use std::io;

    extern "C" {
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const F_SETFD: i32 = 2;
    const FD_CLOEXEC: i32 = 1;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    pub(super) fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub(super) fn close_fd(fd: RawFd) {
        // Double-close is the only misuse `close` has; fds here are owned
        // exactly once (Poller, WakePipe) and closed in Drop only.
        unsafe {
            let _ = close(fd);
        }
    }

    pub(super) fn read_fd(fd: RawFd, buf: &mut [u8]) -> isize {
        unsafe { read(fd, buf.as_mut_ptr(), buf.len()) }
    }

    pub(super) fn write_fd(fd: RawFd, buf: &[u8]) -> isize {
        unsafe { write(fd, buf.as_ptr(), buf.len()) }
    }

    /// A nonblocking close-on-exec pipe: `(read_end, write_end)`.
    pub(super) fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0i32; 2];
        check(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0
                || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0
                || unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) } < 0
            {
                let e = io::Error::last_os_error();
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// The process's `(soft, hard)` open-file limit.
    pub(super) fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        check(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        Ok((lim.cur, lim.max))
    }

    /// Raises the soft open-file limit to the hard limit; returns the new
    /// soft limit.
    pub(super) fn raise_nofile_limit() -> io::Result<u64> {
        let (cur, max) = nofile_limit()?;
        if cur >= max {
            return Ok(cur);
        }
        let lim = Rlimit { cur: max, max };
        check(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
        Ok(max)
    }

    /// Marks `fd` nonblocking and close-on-exec.
    pub(super) fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
        let flags = check(unsafe { fcntl(fd, F_GETFL, 0) })?;
        check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
        check(unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) })?;
        Ok(())
    }

    /// `struct iovec`: one segment of a gathered write.
    #[repr(C)]
    pub(super) struct IoVec {
        base: *const u8,
        len: usize,
    }

    extern "C" {
        fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    }

    /// Gathers up to [`super::IOV_BATCH`] byte slices into one
    /// `writev(2)`. The iovec array lives on this call's stack; the kernel
    /// reads the referenced buffers only for the duration of the syscall.
    pub(super) fn writev_fd(fd: RawFd, bufs: &[&[u8]]) -> isize {
        let mut iov = [IoVec {
            base: std::ptr::null(),
            len: 0,
        }; MAX_IOV];
        let n = bufs.len().min(MAX_IOV);
        for (v, b) in iov.iter_mut().zip(&bufs[..n]) {
            v.base = b.as_ptr();
            v.len = b.len();
        }
        unsafe { writev(fd, iov.as_ptr(), n as i32) }
    }

    pub(super) const MAX_IOV: usize = 64;

    impl Copy for IoVec {}
    impl Clone for IoVec {
        fn clone(&self) -> Self {
            *self
        }
    }
}

/// The process's `(soft, hard)` open-file-descriptor limit — what bounds
/// how many connections one daemon can actually hold.
///
/// # Errors
/// Fails if `getrlimit(2)` fails (effectively never) or off Unix.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    #[cfg(unix)]
    {
        posix::nofile_limit()
    }
    #[cfg(not(unix))]
    {
        Err(unsupported())
    }
}

/// Raises the soft open-file limit to the hard limit (a daemon serving
/// 10k+ sockets on a distribution that defaults the soft limit to 1024
/// needs this at startup). Returns the resulting soft limit.
///
/// # Errors
/// Fails if `setrlimit(2)` refuses (never, when only raising soft to hard)
/// or off Unix.
pub fn raise_nofile_limit() -> io::Result<u64> {
    #[cfg(unix)]
    {
        posix::raise_nofile_limit()
    }
    #[cfg(not(unix))]
    {
        Err(unsupported())
    }
}

#[cfg(not(unix))]
fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "readiness polling needs epoll or kqueue; this platform has neither",
    )
}

/// Most buffer segments one [`writev`] call gathers. Longer reply queues
/// simply take another call on the next writable round — well under
/// `IOV_MAX` (1024) everywhere.
#[cfg(unix)]
pub const IOV_BATCH: usize = 64;

/// One gathered write: up to [`IOV_BATCH`] leading slices of `bufs` go out
/// with a single `writev(2)`, returning the bytes accepted by the socket
/// (possibly landing mid-slice — the caller advances its cursor).
///
/// # Errors
/// Any socket error, including `WouldBlock` when the send buffer is full.
#[cfg(unix)]
pub fn writev_fd(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    let n = posix::writev_fd(fd, bufs);
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// SO_REUSEPORT listeners (multi-shard accept)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sock {
    use super::posix::{check, close_fd, set_nonblocking_cloexec};
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    #[cfg(target_os = "linux")]
    const AF_INET6: i32 = 10;
    #[cfg(target_os = "macos")]
    const AF_INET6: i32 = 30;
    #[cfg(not(any(target_os = "linux", target_os = "macos")))]
    const AF_INET6: i32 = 28;
    const SOCK_STREAM: i32 = 1;
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: i32 = 0xFFFF;
    #[cfg(target_os = "linux")]
    const SO_REUSEADDR: i32 = 2;
    #[cfg(not(target_os = "linux"))]
    const SO_REUSEADDR: i32 = 0x0004;
    #[cfg(target_os = "linux")]
    const SO_REUSEPORT: i32 = 15;
    #[cfg(not(target_os = "linux"))]
    const SO_REUSEPORT: i32 = 0x0200;

    /// `struct sockaddr_in` / `sockaddr_in6`. Linux leads with a 16-bit
    /// family; the BSDs with a length byte + 8-bit family.
    #[repr(C)]
    struct SockaddrIn {
        #[cfg(not(target_os = "linux"))]
        sin_len: u8,
        #[cfg(not(target_os = "linux"))]
        sin_family: u8,
        #[cfg(target_os = "linux")]
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockaddrIn6 {
        #[cfg(not(target_os = "linux"))]
        sin6_len: u8,
        #[cfg(not(target_os = "linux"))]
        sin6_family: u8,
        #[cfg(target_os = "linux")]
        sin6_family: u16,
        sin6_port: u16,
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    fn sockopt(fd: i32, name: i32) -> io::Result<()> {
        let one: i32 = 1;
        check(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                name,
                &one,
                std::mem::size_of::<i32>() as u32,
            )
        })?;
        Ok(())
    }

    /// A nonblocking TCP listener on `addr` with `SO_REUSEPORT` set before
    /// bind, so N shards can each own a listener on the same port and the
    /// kernel load-balances accepts across them.
    ///
    /// # Errors
    /// Any socket/bind/listen failure (port in use without a reuseport
    /// peer, privileged port, exhausted fds).
    pub(super) fn reuseport_tcp_listener(addr: SocketAddr) -> io::Result<TcpListener> {
        let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        let fd = check(unsafe { socket(domain, SOCK_STREAM, 0) })?;
        let result = (|| {
            sockopt(fd, SO_REUSEADDR)?;
            sockopt(fd, SO_REUSEPORT)?;
            match addr {
                SocketAddr::V4(v4) => {
                    let sa = SockaddrIn {
                        #[cfg(not(target_os = "linux"))]
                        sin_len: std::mem::size_of::<SockaddrIn>() as u8,
                        #[cfg(not(target_os = "linux"))]
                        sin_family: AF_INET as u8,
                        #[cfg(target_os = "linux")]
                        sin_family: AF_INET as u16,
                        sin_port: v4.port().to_be(),
                        sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                        sin_zero: [0; 8],
                    };
                    check(unsafe {
                        bind(
                            fd,
                            (&sa as *const SockaddrIn).cast(),
                            std::mem::size_of::<SockaddrIn>() as u32,
                        )
                    })?;
                }
                SocketAddr::V6(v6) => {
                    let sa = SockaddrIn6 {
                        #[cfg(not(target_os = "linux"))]
                        sin6_len: std::mem::size_of::<SockaddrIn6>() as u8,
                        #[cfg(not(target_os = "linux"))]
                        sin6_family: AF_INET6 as u8,
                        #[cfg(target_os = "linux")]
                        sin6_family: AF_INET6 as u16,
                        sin6_port: v6.port().to_be(),
                        sin6_flowinfo: v6.flowinfo(),
                        sin6_addr: v6.ip().octets(),
                        sin6_scope_id: v6.scope_id(),
                    };
                    check(unsafe {
                        bind(
                            fd,
                            (&sa as *const SockaddrIn6).cast(),
                            std::mem::size_of::<SockaddrIn6>() as u32,
                        )
                    })?;
                }
            }
            check(unsafe { listen(fd, 1024) })?;
            set_nonblocking_cloexec(fd)?;
            Ok(())
        })();
        match result {
            // SAFETY: `fd` is a freshly created socket this function owns;
            // ownership transfers into the `TcpListener` exactly once.
            Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
            Err(e) => {
                close_fd(fd);
                Err(e)
            }
        }
    }
}

/// A nonblocking TCP listener with `SO_REUSEPORT` set before bind — the
/// multi-shard accept path: every shard binds the same address and the
/// kernel spreads incoming connections across the listeners.
///
/// # Errors
/// Any socket/bind/listen failure, or off Unix.
pub fn reuseport_tcp_listener(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    #[cfg(unix)]
    {
        sock::reuseport_tcp_listener(addr)
    }
    #[cfg(not(unix))]
    {
        let _ = addr;
        Err(unsupported())
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use super::posix::{check, close_fd};
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. The kernel packs it on x86/x86_64 only (see
    /// `EPOLL_PACKED` in the kernel headers); other architectures use the
    /// natural 16-byte layout.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn mask(interest: Interest) -> u32 {
        // RDHUP distinguishes an orderly peer shutdown from silence, so a
        // half-closed connection is torn down instead of idling forever.
        let base = EPOLLRDHUP;
        match interest {
            Interest::Read => base | EPOLLIN,
            Interest::Write => base | EPOLLOUT,
            Interest::ReadWrite => base | EPOLLIN | EPOLLOUT,
        }
    }

    pub(super) struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels demanded a non-null event for DEL; passing
            // one is harmless everywhere.
            let mut ev = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) if d.is_zero() => 0,
                // Round sub-millisecond timeouts up so a 100µs deadline
                // does not spin at timeout 0.
                Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(1),
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                let ret = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
                // EINTR: retry with the same timeout (the daemon's signal
                // handling is polled via the waker, not via EINTR).
            };
            out.clear();
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            close_fd(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// macOS / FreeBSD: kqueue
// ---------------------------------------------------------------------------

#[cfg(any(target_os = "macos", target_os = "freebsd"))]
mod backend {
    use super::posix::{check, close_fd};
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// `struct kevent`. macOS and FreeBSD (12+) differ: FreeBSD widens
    /// `data` to `i64` and appends `ext[4]`.
    #[cfg(target_os = "macos")]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: u64,
    }

    #[cfg(target_os = "freebsd")]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: i64,
        udata: u64,
        ext: [u64; 4],
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    #[cfg(target_os = "macos")]
    fn kev(ident: RawFd, filter: i16, flags: u16, token: u64) -> Kevent {
        Kevent {
            ident: ident as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token,
        }
    }

    #[cfg(target_os = "freebsd")]
    fn kev(ident: RawFd, filter: i16, flags: u16, token: u64) -> Kevent {
        Kevent {
            ident: ident as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token,
            ext: [0; 4],
        }
    }

    pub(super) struct Backend {
        kq: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            let kq = check(unsafe { kqueue() })?;
            Ok(Backend { kq })
        }

        fn apply(&self, changes: &[Kevent]) -> io::Result<()> {
            check(unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as i32,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut changes = Vec::with_capacity(2);
            if matches!(interest, Interest::Read | Interest::ReadWrite) {
                changes.push(kev(fd, EVFILT_READ, EV_ADD, token));
            }
            if matches!(interest, Interest::Write | Interest::ReadWrite) {
                changes.push(kev(fd, EVFILT_WRITE, EV_ADD, token));
            }
            self.apply(&changes)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            // kqueue filters are independent: (re-)add the wanted ones and
            // delete the unwanted one, tolerating ENOENT on the delete.
            self.add(fd, token, interest)?;
            let unwanted = match interest {
                Interest::Read => Some(EVFILT_WRITE),
                Interest::Write => Some(EVFILT_READ),
                Interest::ReadWrite => None,
            };
            if let Some(filter) = unwanted {
                let _ = self.apply(&[kev(fd, filter, EV_DELETE, token)]);
            }
            Ok(())
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            // Either filter may be absent; ignore ENOENT.
            let _ = self.apply(&[kev(fd, EVFILT_READ, EV_DELETE, 0)]);
            let _ = self.apply(&[kev(fd, EVFILT_WRITE, EV_DELETE, 0)]);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let ts;
            let ts_ptr = match timeout {
                None => std::ptr::null(),
                Some(d) => {
                    ts = Timespec {
                        tv_sec: d.as_secs() as i64,
                        tv_nsec: i64::from(d.subsec_nanos()),
                    };
                    &ts as *const Timespec
                }
            };
            let mut buf = [kev(0, 0, 0, 0); 256];
            let n = loop {
                let ret = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        ts_ptr,
                    )
                };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            out.clear();
            for ev in &buf[..n] {
                out.push(Event {
                    token: ev.udata,
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                    closed: ev.flags & (EV_EOF | EV_ERROR) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            close_fd(self.kq);
        }
    }
}

#[cfg(all(
    unix,
    not(any(target_os = "linux", target_os = "macos", target_os = "freebsd"))
))]
mod backend {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "no epoll/kqueue shim for this Unix flavour; \
             see crates/serve/src/poll.rs",
        )
    }

    pub(super) struct Backend;

    impl Backend {
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }
        pub fn add(&self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn remove(&self, _: RawFd) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
    }
}

// ---------------------------------------------------------------------------
// The portable surface
// ---------------------------------------------------------------------------

/// A readiness poller (epoll or kqueue) plus its registered descriptors.
#[cfg(unix)]
pub struct Poller {
    backend: backend::Backend,
}

#[cfg(unix)]
impl Poller {
    /// Opens the kernel readiness queue.
    ///
    /// # Errors
    /// Fails if the kernel refuses (fd exhaustion) or the platform has no
    /// supported backend.
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            backend: backend::Backend::new()?,
        })
    }

    /// Registers `fd` under `token` for `interest`.
    ///
    /// # Errors
    /// Fails if the descriptor is invalid or already registered.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.add(fd, token, interest)
    }

    /// Changes the interest set of an already-registered descriptor.
    ///
    /// # Errors
    /// Fails if the descriptor was never registered.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Deregisters a descriptor.
    ///
    /// # Errors
    /// Fails if the descriptor was never registered (epoll only; kqueue
    /// treats it as a no-op).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.backend.remove(fd)
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses (`Ok(0)`), or a [`Waker`] fires. Readiness reports
    /// replace the previous contents of `out`.
    ///
    /// # Errors
    /// Fails only on kernel-level errors; `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.backend.wait(out, timeout)
    }
}

/// The read end of the self-pipe, owned by the event loop.
#[cfg(unix)]
pub struct WakeReader {
    fd: RawFd,
}

#[cfg(unix)]
impl WakeReader {
    /// The descriptor to register with the [`Poller`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Consumes every pending wake byte (the pipe is nonblocking, so this
    /// never waits). Many queued wakes collapse into one loop iteration.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while posix::read_fd(self.fd, &mut buf) > 0 {}
    }
}

#[cfg(unix)]
impl Drop for WakeReader {
    fn drop(&mut self) {
        posix::close_fd(self.fd);
    }
}

#[cfg(unix)]
struct WakeFd {
    fd: RawFd,
}

#[cfg(unix)]
impl Drop for WakeFd {
    fn drop(&mut self) {
        posix::close_fd(self.fd);
    }
}

/// A cloneable handle that interrupts [`Poller::wait`] from any thread by
/// writing one byte into a self-pipe. Saturation is fine: a full pipe
/// means a wake is already pending.
#[cfg(unix)]
#[derive(Clone)]
pub struct Waker {
    fd: Arc<WakeFd>,
}

#[cfg(unix)]
impl Waker {
    /// Interrupts the poller (best effort; never blocks).
    pub fn wake(&self) {
        let _ = posix::write_fd(self.fd.fd, &[1u8]);
    }
}

/// Creates the waker pair: register the reader with the poller, hand the
/// writer to whoever must interrupt it.
///
/// # Errors
/// Fails if the pipe cannot be created (fd exhaustion).
#[cfg(unix)]
pub fn waker() -> io::Result<(Waker, WakeReader)> {
    let (r, w) = posix::nonblocking_pipe()?;
    Ok((
        Waker {
            fd: Arc::new(WakeFd { fd: w }),
        },
        WakeReader { fd: r },
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_interrupts_an_idle_wait() {
        let poller = Poller::new().expect("poller");
        let (waker, reader) = waker().expect("waker pair");
        poller
            .add(reader.raw_fd(), 0, Interest::Read)
            .expect("register waker");

        let mut events = Vec::new();
        // Nothing pending: a short wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        waker.wake();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 0);
        assert!(events[0].readable);
        reader.drain();

        // Drained: back to timing out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "drained waker must not re-report");
    }

    #[test]
    fn socket_readability_is_reported_under_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let poller = Poller::new().expect("poller");
        poller
            .add(listener.as_raw_fd(), 7, Interest::Read)
            .expect("register listener");

        let mut events = Vec::new();
        let mut client = TcpStream::connect(addr).expect("connect");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 9, Interest::ReadWrite)
            .expect("register conn");
        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(n >= 1);
        let ev = events
            .iter()
            .find(|e| e.token == 9)
            .expect("connection event");
        assert!(ev.readable, "pending bytes must report readable");

        poller.remove(server_side.as_raw_fd()).expect("deregister");
        client.write_all(b"more").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert!(
            events[..n].iter().all(|e| e.token != 9),
            "deregistered fd must not report"
        );
    }

    #[test]
    fn interest_modification_gates_writable_reports() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().expect("poller");
        poller
            .add(server_side.as_raw_fd(), 3, Interest::Read)
            .expect("register");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(
            events[..n].iter().all(|e| !e.writable),
            "read-only interest must not report writable"
        );

        poller
            .modify(server_side.as_raw_fd(), 3, Interest::ReadWrite)
            .expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events[..n].iter().any(|e| e.token == 3 && e.writable),
            "an idle socket's send buffer is writable"
        );
    }

    #[test]
    fn nofile_limits_are_readable_and_raisable() {
        let (soft, hard) = nofile_limit().expect("getrlimit");
        assert!(soft > 0 && hard >= soft);
        let raised = raise_nofile_limit().expect("setrlimit");
        assert_eq!(raised, hard, "soft limit must land on the hard limit");
    }

    #[test]
    fn writev_gathers_segments_in_order() {
        use std::io::Read as _;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let n = writev_fd(server_side.as_raw_fd(), &[b"gather", b"ed ", b"", b"write"])
            .expect("writev");
        assert_eq!(n, 14);
        let mut got = [0u8; 14];
        client.read_exact(&mut got).expect("read back");
        assert_eq!(&got, b"gathered write");
    }

    #[test]
    fn reuseport_listeners_share_one_port() {
        use std::io::Read as _;
        let first = reuseport_tcp_listener("127.0.0.1:0".parse().unwrap()).expect("first bind");
        let addr = first.local_addr().expect("local addr");
        assert_ne!(addr.port(), 0, "bind resolved an ephemeral port");
        let second = reuseport_tcp_listener(addr).expect("second bind on same port");
        second.set_nonblocking(false).unwrap();
        first.set_nonblocking(false).unwrap();
        // Both listeners accept from the shared port; which one gets which
        // connection is the kernel's choice, so accept from both ends
        // using two client connections and a helper thread per listener.
        let h1 = std::thread::spawn(move || {
            let (mut c, _) = first.accept().expect("first accept");
            let mut b = [0u8; 1];
            c.read_exact(&mut b).expect("read");
            b[0]
        });
        let h2 = std::thread::spawn(move || {
            let (mut c, _) = second.accept().expect("second accept");
            let mut b = [0u8; 1];
            c.read_exact(&mut b).expect("read");
            b[0]
        });
        // Two connections: with reuseport the kernel hashes by 4-tuple, so
        // two distinct client ports land one on each listener with high
        // probability — but not guaranteed, so keep connecting until both
        // helpers return (bounded).
        let mut clients = Vec::new();
        for i in 0..64u8 {
            // A refused connect is expected once one helper has accepted:
            // its listener is dropped, and reuseport hashing may still
            // route a later 4-tuple to the closed socket's bucket.
            if let Ok(mut c) = TcpStream::connect(addr) {
                let _ = c.write_all(&[i]);
                clients.push(c);
            }
            if h1.is_finished() && h2.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(h1.join().is_ok());
        assert!(h2.join().is_ok());
    }
}
