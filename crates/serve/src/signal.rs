//! A minimal SIGTERM/SIGINT latch for the daemon binary.
//!
//! The workspace bans `unsafe` (see CONTRIBUTING.md), with this module as
//! the single documented exception: registering a POSIX signal handler
//! requires one FFI call to `signal(2)`, which `std` offers no safe wrapper
//! for and the no-new-dependencies rule keeps `libc`/`signal-hook` out.
//! The handler body is async-signal-safe — it only stores to a static
//! atomic — and the daemon's accept/read loops poll the latch, so no
//! other code runs in signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM or SIGINT has been received (always `false` if
/// [`install`] was never called, and on non-Unix platforms).
pub fn triggered() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Test/driver hook: raise the latch programmatically.
pub fn trigger() {
    TERMINATE.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            // POSIX `signal(2)`; the return value is the previous
            // `sighandler_t`, which we never restore.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers the latch for SIGTERM and SIGINT (no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_raises_the_latch() {
        // `install` + real signal delivery is exercised by the CI smoke
        // job; in-process we only verify the latch plumbing.
        install();
        trigger();
        assert!(triggered());
    }
}
