//! The non-blocking connection engine: one thread, every socket.
//!
//! PR 3's daemon spent two threads per connection (reader + writer), which
//! caps realistic concurrency near the hundreds. This loop replaces all of
//! them: a single thread multiplexes the listeners, every connection, and
//! a self-pipe waker over [`crate::poll`] (epoll/kqueue), so 10k+ mostly
//! idle connections cost file descriptors and per-connection buffers — not
//! stacks.
//!
//! Each connection is a small state machine ([`ReadState`]) that owns a
//! reusable head/body/out buffer triple. Readable events advance the
//! decoder exactly as far as the kernel has bytes (envelope head → chunked
//! body → CRC-checked [`Message`]); complete messages dispatch inline —
//! the same admission/draining/protocol logic the threaded server ran,
//! preserving every hardening invariant:
//!
//! - **CRC framing + checked geometry**: unchanged `parse_head`/`parse_body`.
//! - **`Busy` admission**: the request gate at submit, the connection gate
//!   at accept — an over-cap accept still gets a best-effort `Busy` reply,
//!   never a silent close.
//! - **30 s no-progress stall deadline**: enforced by the shared
//!   [`TimerWheel`] — a connection mid-envelope (slow loris) or with
//!   unflushed replies that makes no byte progress for
//!   [`MID_ENVELOPE_STALL`] is closed. Idle connections between envelopes
//!   carry no deadline and may sit forever.
//! - **SIGTERM drain latch**: `draining` stops accepts and new admissions;
//!   wire `Drain` is handled without blocking the loop — the ack is
//!   deferred until the gate is idle (or [`DRAIN_TIMEOUT`]), checked every
//!   iteration.
//!
//! Engine workers answer through a single `(token, Message)` channel plus
//! the waker ([`crate::reply::ReplySink`]); the loop routes each reply to
//! its connection's out-buffer and flushes opportunistically, registering
//! write interest only while bytes remain.

#![cfg(unix)]

use crate::batcher::{BatcherCmd, SubmitJob};
use crate::poll::{Interest, Poller, WakeReader};
use crate::reply::ReplySink;
use crate::server::{Shared, BODY_CHUNK, DRAIN_TIMEOUT, MID_ENVELOPE_STALL};
use crate::wheel::TimerWheel;
use crate::wire::{
    encode_message, parse_body, parse_head, BusyReply, ErrorCode, ErrorReply, Message, HEAD_LEN,
};
use crossbeam::channel;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_WAKER: u64 = 0;
const TOKEN_TCP: u64 = 1;
const TOKEN_UNIX: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 16;

/// How long the loop keeps flushing pending out-buffers after `stopped`
/// before it hard-closes (covers the final `DrainAck` racing shutdown).
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Everything the loop thread needs at start.
pub(crate) struct LoopConfig {
    pub tcp: Option<TcpListener>,
    pub unix: Option<UnixListener>,
    pub shared: Arc<Shared>,
    pub reply_tx: channel::Sender<(u64, Message)>,
    pub reply_rx: channel::Receiver<(u64, Message)>,
    pub wake_reader: WakeReader,
    pub poller: Poller,
}

/// Where the envelope decoder stands.
enum ReadState {
    /// Collecting the fixed-size head.
    Head { filled: usize },
    /// Collecting `len` payload bytes plus the 4-byte CRC.
    Body {
        type_code: u8,
        total: usize,
        filled: usize,
    },
}

enum Sock {
    Tcp(std::net::TcpStream),
    Unix(UnixStream),
}

impl Sock {
    fn raw_fd(&self) -> i32 {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
}

/// One connection's state machine and buffers, owned by the loop.
struct Conn {
    sock: Sock,
    token: u64,
    /// Holds this connection's slot in the connection gate until drop.
    _permit: crate::queue::AdmissionPermit,
    state: ReadState,
    head: [u8; HEAD_LEN],
    /// Body bytes received so far; grown in [`BODY_CHUNK`] steps so a peer
    /// that merely *declares* a large payload never holds more memory than
    /// it has sent, and shrunk back after each envelope.
    body: Vec<u8>,
    /// Encoded replies awaiting the socket, with the flush position.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether the poller currently watches this socket for writability.
    want_write: bool,
    /// Last moment a byte moved in either direction.
    last_progress: Instant,
    /// Whether the timer wheel holds a live entry for this token.
    timer_armed: bool,
    /// Close once the out-buffer drains (protocol violations, wire errors).
    close_after_flush: bool,
    /// This connection sent `Drain` and is owed a `DrainAck`.
    drain_waiter: bool,
}

impl Conn {
    /// Mid-envelope or holding unflushed bytes: subject to the stall
    /// deadline. Idle between envelopes: not.
    fn engaged(&self) -> bool {
        let mid_read = match self.state {
            ReadState::Head { filled } => filled > 0,
            ReadState::Body { .. } => true,
        };
        mid_read || self.out_pos < self.out.len()
    }
}

/// The outcome of servicing one connection event.
enum Verdict {
    Keep,
    Close,
}

struct DrainState {
    started: Instant,
}

/// Runs the loop until `stopped`. Owns every connection.
pub(crate) fn run_event_loop(cfg: LoopConfig) {
    let LoopConfig {
        tcp,
        unix,
        shared,
        reply_tx,
        reply_rx,
        wake_reader,
        poller,
    } = cfg;
    let stats = Arc::clone(&shared.stats);
    let wake = shared.wake_fn();

    // Registration failures here are fatal to the loop but not the
    // process: the daemon keeps running (batcher/engine alive) and
    // `drain()` still joins cleanly.
    if poller
        .add(wake_reader.raw_fd(), TOKEN_WAKER, Interest::Read)
        .is_err()
    {
        return;
    }
    let mut tcp = tcp;
    let mut unix = unix;
    if let Some(l) = &tcp {
        if poller
            .add(l.as_raw_fd(), TOKEN_TCP, Interest::Read)
            .is_err()
        {
            return;
        }
    }
    if let Some(l) = &unix {
        if poller
            .add(l.as_raw_fd(), TOKEN_UNIX, Interest::Read)
            .is_err()
        {
            return;
        }
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut wheel = TimerWheel::new(Instant::now());
    let mut events = Vec::new();
    let mut fired = Vec::new();
    let mut drain: Option<DrainState> = None;
    let mut listeners_down = false;

    loop {
        let now = Instant::now();
        let mut timeout = wheel.next_deadline(now);
        if drain.is_some() && !shared.drain_acked.load(Ordering::SeqCst) {
            // Poll the gate for idleness while a wire drain is pending.
            timeout = Some(timeout.map_or(Duration::from_millis(50), |t| {
                t.min(Duration::from_millis(50))
            }));
        }
        let _ = poller.wait(&mut events, timeout);
        stats.poll_wakeups.inc();

        if shared.stopped.load(Ordering::SeqCst) {
            shutdown_flush(&poller, &mut conns, &stats);
            return;
        }

        // Stop accepting the moment a drain begins.
        if !listeners_down && shared.draining.load(Ordering::SeqCst) {
            if let Some(l) = tcp.take() {
                let _ = poller.remove(l.as_raw_fd());
            }
            if let Some(l) = unix.take() {
                let _ = poller.remove(l.as_raw_fd());
            }
            listeners_down = true;
        }

        for ev in events.iter().copied() {
            match ev.token {
                TOKEN_WAKER => wake_reader.drain(),
                TOKEN_TCP => {
                    if let Some(listener) = &tcp {
                        accept_burst(
                            AcceptFrom::Tcp(listener),
                            &poller,
                            &shared,
                            &mut conns,
                            &mut next_token,
                        );
                    }
                }
                TOKEN_UNIX => {
                    if let Some(listener) = &unix {
                        accept_burst(
                            AcceptFrom::Unix(listener),
                            &poller,
                            &shared,
                            &mut conns,
                            &mut next_token,
                        );
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut verdict = Verdict::Keep;
                    if ev.readable {
                        let timer = stats.stage_readable.timer();
                        verdict = handle_readable(conn, &shared, &reply_tx, &wake, &mut drain);
                        drop(timer);
                    }
                    // Flush whatever dispatch queued (and, on writable
                    // events, whatever was already pending).
                    if matches!(verdict, Verdict::Keep) {
                        let timer = ev.writable.then(|| stats.stage_writable.timer());
                        verdict = flush_out(conn, &poller);
                        drop(timer);
                    }
                    // A pure hangup (no pending bytes to read) closes; a
                    // readable hangup was already consumed to EOF above.
                    if matches!(verdict, Verdict::Keep) && ev.closed && !ev.readable {
                        verdict = Verdict::Close;
                    }
                    match verdict {
                        Verdict::Close => close_conn(&poller, &mut conns, token, &shared),
                        Verdict::Keep => arm_deadline(&mut conns, token, &mut wheel),
                    }
                }
            }
        }

        // Route replies queued by engine workers (and deferred acks).
        while let Ok((token, msg)) = reply_rx.try_recv() {
            let Some(conn) = conns.get_mut(&token) else {
                continue; // connection gone; the permit already dropped
            };
            let timer = stats.stage_write.timer();
            queue_reply(conn, &msg);
            drop(timer);
            match flush_out(conn, &poller) {
                Verdict::Close => close_conn(&poller, &mut conns, token, &shared),
                Verdict::Keep => arm_deadline(&mut conns, token, &mut wheel),
            }
        }

        // Fire stall deadlines (lazy cancellation: re-check real progress).
        let now = Instant::now();
        wheel.expired(now, &mut fired);
        for &token in &fired {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.timer_armed = false;
            if !conn.engaged() {
                continue;
            }
            if now.saturating_duration_since(conn.last_progress) >= MID_ENVELOPE_STALL {
                close_conn(&poller, &mut conns, token, &shared);
            } else {
                arm_deadline(&mut conns, token, &mut wheel);
            }
        }

        // Resolve a pending wire drain without ever blocking the loop.
        if let Some(d) = &drain {
            if !shared.drain_acked.load(Ordering::SeqCst)
                && (shared.gate.in_flight() == 0 || d.started.elapsed() >= DRAIN_TIMEOUT)
            {
                if d.started.elapsed() >= DRAIN_TIMEOUT && shared.gate.in_flight() > 0 {
                    eprintln!(
                        "preflightd: drain timed out after {DRAIN_TIMEOUT:?} with {} request(s) \
                         still in flight; acking anyway",
                        shared.gate.in_flight()
                    );
                }
                // Raise the flag before the ack can reach the wire: once a
                // client observes DrainAck, `drain_acked()` must be true.
                shared.drain_acked.store(true, Ordering::SeqCst);
                let summary = shared.summary();
                let waiters: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.drain_waiter)
                    .map(|(t, _)| *t)
                    .collect();
                for token in waiters {
                    if let Some(conn) = conns.get_mut(&token) {
                        queue_reply(conn, &Message::DrainAck(summary));
                        if let Verdict::Close = flush_out(conn, &poller) {
                            close_conn(&poller, &mut conns, token, &shared);
                        }
                    }
                }
            }
        }

        // The waker drain above may have consumed a wake byte posted
        // *after* this iteration's `stopped` check — re-check before
        // blocking again, or that stop request would wait on the next
        // unrelated event (possibly forever on an idle daemon).
        if shared.stopped.load(Ordering::SeqCst) {
            shutdown_flush(&poller, &mut conns, &stats);
            return;
        }
    }
}

enum AcceptFrom<'a> {
    Tcp(&'a TcpListener),
    Unix(&'a UnixListener),
}

/// Accepts until the listener reports `WouldBlock`, registering each
/// connection (or rejecting it with a best-effort `Busy` at the cap).
fn accept_burst(
    from: AcceptFrom<'_>,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        let timer = shared.stats.stage_accept.timer();
        let sock = match &from {
            AcceptFrom::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nonblocking(true);
                    let _ = s.set_nodelay(true);
                    Sock::Tcp(s)
                }
                Err(e) => {
                    drop(timer);
                    if e.kind() != ErrorKind::WouldBlock {
                        // EMFILE and friends: back off briefly instead of
                        // spinning on a level-triggered listener.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    return;
                }
            },
            AcceptFrom::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nonblocking(true);
                    Sock::Unix(s)
                }
                Err(e) => {
                    drop(timer);
                    if e.kind() != ErrorKind::WouldBlock {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    return;
                }
            },
        };
        let Some(permit) = shared.conn_gate.try_acquire() else {
            reject_connection(sock, shared);
            continue;
        };
        let token = *next_token;
        *next_token += 1;
        if poller.add(sock.raw_fd(), token, Interest::Read).is_err() {
            // Registration failed (fd pressure): the permit drops here,
            // freeing the slot, and the socket closes.
            continue;
        }
        shared.stats.connections.inc();
        shared.stats.open_connections.add(1);
        conns.insert(
            token,
            Conn {
                sock,
                token,
                _permit: permit,
                state: ReadState::Head { filled: 0 },
                head: [0u8; HEAD_LEN],
                body: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                want_write: false,
                last_progress: Instant::now(),
                timer_armed: false,
                close_after_flush: false,
                drain_waiter: false,
            },
        );
    }
}

/// Answers an over-cap connection with `Busy` (best effort: a fresh socket
/// has an empty send buffer, so the small frame fits without blocking) and
/// closes it.
fn reject_connection(mut sock: Sock, shared: &Arc<Shared>) {
    shared.stats.rejected_connections.inc();
    let bytes = encode_message(&Message::Busy(BusyReply {
        request_id: 0,
        capacity: shared.conn_gate.capacity() as u32,
        in_flight: shared.conn_gate.in_flight() as u32,
    }));
    let _ = sock.write(&bytes);
}

fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, shared: &Arc<Shared>) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.remove(conn.sock.raw_fd());
        shared.stats.open_connections.add(-1);
        // Socket and connection permit drop here.
    }
}

/// Arms (at most) one stall-deadline entry for an engaged connection.
fn arm_deadline(conns: &mut HashMap<u64, Conn>, token: u64, wheel: &mut TimerWheel) {
    if let Some(conn) = conns.get_mut(&token) {
        if conn.engaged() && !conn.timer_armed {
            wheel.arm(token, conn.last_progress + MID_ENVELOPE_STALL);
            conn.timer_armed = true;
        }
    }
}

/// Reads as much as the kernel has, advancing the envelope state machine
/// and dispatching every complete message.
fn handle_readable(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    reply_tx: &channel::Sender<(u64, Message)>,
    wake: &crate::reply::WakeFn,
    drain: &mut Option<DrainState>,
) -> Verdict {
    // After a wire error or protocol violation the reply is queued and the
    // connection is closing: stop decoding, just let the flush finish.
    if conn.close_after_flush {
        return Verdict::Keep;
    }
    loop {
        match conn.state {
            ReadState::Head { filled } => {
                match conn.sock.read(&mut conn.head[filled..]) {
                    Ok(0) => {
                        // EOF: clean between envelopes, an error inside one;
                        // either way the connection is over.
                        return Verdict::Close;
                    }
                    Ok(n) => {
                        conn.last_progress = Instant::now();
                        let filled = filled + n;
                        if filled < HEAD_LEN {
                            conn.state = ReadState::Head { filled };
                            continue;
                        }
                        match parse_head(&conn.head) {
                            Ok((type_code, len)) => {
                                conn.state = ReadState::Body {
                                    type_code,
                                    total: len as usize + 4,
                                    filled: 0,
                                };
                                conn.body.clear();
                            }
                            Err(e) => {
                                // Desynchronised stream: report, hang up.
                                shared.stats.wire_errors.inc();
                                queue_reply(conn, &wire_error_reply(&e));
                                conn.close_after_flush = true;
                                conn.state = ReadState::Head { filled: 0 };
                                return Verdict::Keep;
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Verdict::Keep,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Verdict::Close,
                }
            }
            ReadState::Body {
                type_code,
                total,
                filled,
            } => {
                // Grow towards `total` one BODY_CHUNK at a time, so a peer
                // that declares 256 MiB but sends nothing costs one chunk.
                let target = total.min(filled + BODY_CHUNK);
                if conn.body.len() < target {
                    conn.body.resize(target, 0);
                }
                match conn.sock.read(&mut conn.body[filled..target]) {
                    Ok(0) => return Verdict::Close,
                    Ok(n) => {
                        conn.last_progress = Instant::now();
                        let filled = filled + n;
                        if filled < total {
                            conn.state = ReadState::Body {
                                type_code,
                                total,
                                filled,
                            };
                            continue;
                        }
                        let payload_len = total - 4;
                        let crc = u32::from_le_bytes([
                            conn.body[payload_len],
                            conn.body[payload_len + 1],
                            conn.body[payload_len + 2],
                            conn.body[payload_len + 3],
                        ]);
                        let parsed = parse_body(type_code, &conn.body[..payload_len], crc);
                        conn.state = ReadState::Head { filled: 0 };
                        if conn.body.capacity() > BODY_CHUNK {
                            conn.body = Vec::new();
                        }
                        match parsed {
                            Ok(message) => {
                                if let Verdict::Close =
                                    dispatch(conn, message, shared, reply_tx, wake, drain)
                                {
                                    return Verdict::Close;
                                }
                                if conn.close_after_flush {
                                    return Verdict::Keep;
                                }
                            }
                            Err(e) => {
                                shared.stats.wire_errors.inc();
                                queue_reply(conn, &wire_error_reply(&e));
                                conn.close_after_flush = true;
                                return Verdict::Keep;
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Verdict::Keep,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Verdict::Close,
                }
            }
        }
    }
}

/// Handles one decoded message — the same protocol the threaded server
/// spoke, minus anything that blocks.
fn dispatch(
    conn: &mut Conn,
    message: Message,
    shared: &Arc<Shared>,
    reply_tx: &channel::Sender<(u64, Message)>,
    wake: &crate::reply::WakeFn,
    drain: &mut Option<DrainState>,
) -> Verdict {
    match message {
        Message::Submit(request) => {
            // The admission stage spans decode-to-verdict: drain check,
            // gate acquire, and handing the job (or rejection) onward.
            let _admission = shared.stats.stage_admission.timer();
            let request_id = request.request_id;
            if shared.draining.load(Ordering::SeqCst) {
                queue_reply(
                    conn,
                    &Message::Error(ErrorReply {
                        request_id,
                        code: ErrorCode::Draining,
                        message: "server is draining; no new work admitted".to_owned(),
                    }),
                );
                return Verdict::Keep;
            }
            match shared.gate.try_acquire() {
                Some(permit) => {
                    shared.stats.admitted.inc();
                    let job = SubmitJob {
                        request,
                        permit,
                        admitted_at: Instant::now(),
                        reply: ReplySink::new(conn.token, reply_tx.clone(), Some(wake.clone())),
                    };
                    if shared.batcher_tx.send(BatcherCmd::Submit(job)).is_err() {
                        queue_reply(
                            conn,
                            &Message::Error(ErrorReply {
                                request_id,
                                code: ErrorCode::Draining,
                                message: "server is shutting down".to_owned(),
                            }),
                        );
                    }
                }
                None => {
                    shared.stats.rejected_busy.inc();
                    queue_reply(
                        conn,
                        &Message::Busy(BusyReply {
                            request_id,
                            capacity: shared.gate.capacity() as u32,
                            in_flight: shared.gate.in_flight() as u32,
                        }),
                    );
                }
            }
            Verdict::Keep
        }
        Message::StatsRequest => {
            queue_reply(conn, &Message::StatsReply(shared.stats.snapshot()));
            Verdict::Keep
        }
        Message::Ping(token) => {
            queue_reply(conn, &Message::Pong(token));
            Verdict::Keep
        }
        Message::Drain => {
            shared.begin_drain();
            if shared.drain_acked.load(Ordering::SeqCst) {
                // A previous drain already completed: ack right away.
                queue_reply(conn, &Message::DrainAck(shared.summary()));
            } else {
                conn.drain_waiter = true;
                if drain.is_none() {
                    *drain = Some(DrainState {
                        started: Instant::now(),
                    });
                }
                // The ack is deferred: the loop checks gate idleness every
                // iteration and answers every drain waiter then.
            }
            Verdict::Keep
        }
        // Server-to-client messages arriving at the server are a protocol
        // violation; answer and hang up.
        Message::Response(_)
        | Message::Busy(_)
        | Message::Error(_)
        | Message::DrainAck(_)
        | Message::Pong(_)
        | Message::StatsReply(_) => {
            queue_reply(
                conn,
                &Message::Error(ErrorReply {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "unexpected server-side message from client".to_owned(),
                }),
            );
            conn.close_after_flush = true;
            Verdict::Keep
        }
    }
}

/// Appends one encoded reply to the connection's out-buffer.
fn queue_reply(conn: &mut Conn, msg: &Message) {
    let bytes = encode_message(msg);
    conn.out.extend_from_slice(&bytes);
}

/// Writes as much of the out-buffer as the socket accepts, maintaining
/// write interest so the poller reports this connection again only while
/// bytes remain.
fn flush_out(conn: &mut Conn, poller: &Poller) -> Verdict {
    while conn.out_pos < conn.out.len() {
        match conn.sock.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Verdict::Close,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
    let pending = conn.out_pos < conn.out.len();
    if !pending {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.out.capacity() > BODY_CHUNK {
            conn.out = Vec::new();
        }
        if conn.close_after_flush {
            return Verdict::Close;
        }
    }
    if pending != conn.want_write {
        let interest = if pending {
            Interest::ReadWrite
        } else {
            Interest::Read
        };
        if poller
            .modify(conn.sock.raw_fd(), conn.token, interest)
            .is_err()
        {
            return Verdict::Close;
        }
        conn.want_write = pending;
    }
    Verdict::Keep
}

/// Final best-effort flush after `stopped`: give pending out-buffers (the
/// last `DrainAck`s, in-flight responses) a bounded chance to reach their
/// sockets, then close everything.
fn shutdown_flush(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    stats: &crate::telemetry::ServerStats,
) {
    let deadline = Instant::now() + SHUTDOWN_FLUSH_GRACE;
    while Instant::now() < deadline {
        let mut pending = false;
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.out_pos >= conn.out.len() {
                continue;
            }
            match flush_out(conn, poller) {
                Verdict::Close => {
                    if let Some(c) = conns.remove(&token) {
                        let _ = poller.remove(c.sock.raw_fd());
                        stats.open_connections.add(-1);
                    }
                }
                Verdict::Keep => {
                    if conn_pending(conns.get(&token)) {
                        pending = true;
                    }
                }
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for (_, conn) in conns.drain() {
        let _ = poller.remove(conn.sock.raw_fd());
        stats.open_connections.add(-1);
    }
}

fn conn_pending(conn: Option<&Conn>) -> bool {
    conn.is_some_and(|c| c.out_pos < c.out.len())
}

fn wire_error_reply(e: &crate::wire::WireError) -> Message {
    Message::Error(ErrorReply {
        request_id: 0,
        code: ErrorCode::Malformed,
        message: e.to_string(),
    })
}
