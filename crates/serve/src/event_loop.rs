//! The non-blocking connection engine: one thread per shard, every socket.
//!
//! PR 9 ran a single loop thread that multiplexed the listeners, every
//! connection, and a self-pipe waker over [`crate::poll`] (epoll/kqueue).
//! This revision keeps that shape but runs N independent copies of it —
//! *shards* — each owning its own poller, timer wheel, connections, and
//! reply channel, so accepts, envelope decoding, and response writes scale
//! across cores instead of serialising on one thread:
//!
//! - **TCP**: every shard owns its own `SO_REUSEPORT` listener bound to
//!   the same address; the kernel spreads incoming connections.
//! - **Unix sockets** (no reuseport equivalent): the shard that owns the
//!   listener accepts, acquires the connection permit, and round-robins
//!   the accepted fd to its peers over a handoff channel + waker.
//!
//! The per-connection data path is zero-copy on little-endian hosts:
//!
//! - **Ingest**: `Submit` payload bytes are read off the socket *directly
//!   into* a pooled, engine-ready pixel buffer ([`crate::ingest::Ingest`]),
//!   with both CRC layers folded as bytes land — no intermediate body
//!   `Vec`, no re-parse, exactly one payload copy (socket → pool).
//! - **Egress**: responses are never re-encoded into a contiguous buffer.
//!   The loop keeps the engine's pooled stack, encodes head + stats +
//!   frame CRCs into a small reused scratch, and `writev`s the segments
//!   straight from the stack ([`crate::poll::writev_fd`]). Once the last
//!   byte hits the wire the stack returns to the [`BufferPool`].
//!
//! Every PR 3/PR 9 hardening invariant is preserved bit for bit:
//!
//! - **CRC framing + checked geometry**: `parse_head` unchanged; the
//!   streaming decoder defers errors so its verdicts (and their order of
//!   precedence) match `parse_body` exactly.
//! - **`Busy` admission**: the request gate at submit, the connection gate
//!   at accept — an over-cap accept still gets a best-effort `Busy` reply,
//!   never a silent close.
//! - **30 s no-progress stall deadline**: enforced by the per-shard
//!   [`TimerWheel`]; a connection mid-envelope or with unflushed replies
//!   that makes no byte progress for [`MID_ENVELOPE_STALL`] is closed.
//! - **SIGTERM drain latch**: `draining` stops accepts and new admissions;
//!   wire `Drain` acks are deferred until the (shared) gate is idle or
//!   [`DRAIN_TIMEOUT`] passes — whichever shard observes it first sets
//!   `drain_acked`, and every shard answers its own waiters.

#![cfg(unix)]

use crate::batcher::{BatcherCmd, SubmitJob};
use crate::ingest::Ingest;
use crate::poll::{Interest, Poller, WakeReader, IOV_BATCH};
use crate::pool::BufferPool;
use crate::queue::AdmissionPermit;
use crate::reply::{ReplySink, WakeFn};
use crate::server::{Shared, BODY_CHUNK, DRAIN_TIMEOUT, MID_ENVELOPE_STALL};
use crate::wheel::TimerWheel;
use crate::wire::{
    encode_message, encode_message_into, parse_head, BusyReply, ErrorCode, ErrorReply,
    FramePayload, Message, HEAD_LEN,
};
use crossbeam::channel;
use preflight_obs::Counter;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_WAKER: u64 = 0;
const TOKEN_TCP: u64 = 1;
const TOKEN_UNIX: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 16;

/// How long the loop keeps flushing pending out-buffers after `stopped`
/// before it hard-closes (covers the final `DrainAck` racing shutdown).
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Retired [`OutMsg`]s (scratch + segment vecs) kept per connection for
/// reuse, so steady-state replies allocate nothing.
const FREE_MSGS: usize = 4;

/// Wire type code of [`Message::Response`] — the vectored reply encoder
/// writes the envelope head itself and never materialises the `Message`.
/// Pinned against the real encoder by `segments_match_encode_message`.
#[cfg(target_endian = "little")]
const RESPONSE_TYPE_CODE: u8 = 2;

/// An accepted Unix connection in flight from the listener-owning shard to
/// the shard that will serve it (its connection permit travels along).
pub(crate) struct Handoff {
    pub(crate) sock: UnixStream,
    pub(crate) permit: AdmissionPermit,
}

/// Everything one shard's loop thread needs at start.
pub(crate) struct LoopConfig {
    /// This shard's index (labels its metrics; offsets the handoff
    /// round-robin).
    pub shard: usize,
    /// This shard's TCP listener (its own `SO_REUSEPORT` socket when
    /// sharded, the sole listener otherwise).
    pub tcp: Option<TcpListener>,
    /// The Unix listener — only the shard that owns it (shard 0) gets one.
    pub unix: Option<UnixListener>,
    pub shared: Arc<Shared>,
    /// The pixel-buffer pool shared with the engine workers.
    pub pool: Arc<BufferPool>,
    /// This shard's own waker (embedded in [`ReplySink`]s it hands out).
    pub wake: WakeFn,
    pub reply_tx: channel::Sender<(u64, Message)>,
    pub reply_rx: channel::Receiver<(u64, Message)>,
    pub wake_reader: WakeReader,
    pub poller: Poller,
    /// Accepted Unix connections routed to this shard.
    pub handoff_rx: channel::Receiver<Handoff>,
    /// Every shard's handoff lane (sender + waker), indexed by shard; used
    /// by the Unix-listener owner to round-robin accepts.
    pub handoff: Vec<(channel::Sender<Handoff>, WakeFn)>,
}

/// Where the envelope decoder stands.
enum ReadState {
    /// Collecting the fixed-size head.
    Head { filled: usize },
    /// Streaming the body through the zero-copy decoder.
    Body { ingest: Ingest },
}

enum Sock {
    Tcp(std::net::TcpStream),
    Unix(UnixStream),
}

impl Sock {
    fn raw_fd(&self) -> i32 {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
}

/// One wire segment of a queued reply: a range of the message's scratch
/// bytes, or a whole frame of its pooled pixel stack (viewed in place).
#[derive(Clone, Copy)]
enum Seg {
    /// `scratch[start..end]`.
    Scratch { start: usize, end: usize },
    /// The little-endian bytes of frame `frame` of the attached stack.
    #[cfg(target_endian = "little")]
    Frame { frame: usize, len: usize },
}

/// One encoded reply awaiting the socket, as a list of segments gathered
/// by `writev` — responses carry their pixel payload by reference to the
/// pooled stack instead of a flattened copy.
#[derive(Default)]
struct OutMsg {
    /// Head + stats/meta prefix + frame CRCs + payload CRC.
    scratch: Vec<u8>,
    /// Wire-order segments over `scratch` and `stack`.
    segs: Vec<Seg>,
    /// Pixel source for [`Seg::Frame`] segments; recycled to the pool
    /// after the final flush.
    stack: Option<FramePayload>,
}

impl OutMsg {
    fn seg_len(&self, idx: usize) -> usize {
        match self.segs[idx] {
            Seg::Scratch { start, end } => end - start,
            #[cfg(target_endian = "little")]
            Seg::Frame { len, .. } => len,
        }
    }

    /// Segment `idx`'s unwritten tail, starting `off` bytes in.
    fn seg_slice(&self, idx: usize, off: usize) -> &[u8] {
        match self.segs[idx] {
            Seg::Scratch { start, end } => &self.scratch[start + off..end],
            #[cfg(target_endian = "little")]
            Seg::Frame { frame, len } => {
                let stack = self.stack.as_ref().expect("frame segment without stack");
                &frame_le_bytes(stack, frame)[off..len]
            }
        }
    }
}

#[cfg(target_endian = "little")]
fn frame_le_bytes(payload: &FramePayload, frame: usize) -> &[u8] {
    match payload {
        FramePayload::U16(s) => crate::bytes::le_view(s.frame(frame)),
        FramePayload::U32(s) => crate::bytes::le_view(s.frame(frame)),
    }
}

/// Returns a response stack's buffer to the pool.
fn recycle_payload(pool: &BufferPool, payload: FramePayload) {
    match payload {
        FramePayload::U16(s) => pool.put_u16(s.into_vec()),
        FramePayload::U32(s) => pool.put_u32(s.into_vec()),
    }
}

/// One connection's state machine and buffers, owned by its shard.
struct Conn {
    sock: Sock,
    token: u64,
    /// Holds this connection's slot in the connection gate until drop.
    _permit: AdmissionPermit,
    state: ReadState,
    head: [u8; HEAD_LEN],
    /// Replies awaiting the socket, oldest first.
    out: VecDeque<OutMsg>,
    /// Flush cursor into the front message: next segment, bytes already
    /// written of it.
    out_seg: usize,
    out_off: usize,
    /// Retired out-messages kept for reuse (scratch + segment capacity).
    free: Vec<OutMsg>,
    /// Whether the poller currently watches this socket for writability.
    want_write: bool,
    /// Last moment a byte moved in either direction.
    last_progress: Instant,
    /// Whether the timer wheel holds a live entry for this token.
    timer_armed: bool,
    /// Close once the out-queue drains (protocol violations, wire errors).
    close_after_flush: bool,
    /// This connection sent `Drain` and is owed a `DrainAck`.
    drain_waiter: bool,
}

impl Conn {
    /// Mid-envelope or holding unflushed replies: subject to the stall
    /// deadline. Idle between envelopes: not.
    fn engaged(&self) -> bool {
        let mid_read = match self.state {
            ReadState::Head { filled } => filled > 0,
            ReadState::Body { .. } => true,
        };
        mid_read || !self.out.is_empty()
    }
}

/// The outcome of servicing one connection event.
enum Verdict {
    Keep,
    Close,
}

struct DrainState {
    started: Instant,
}

/// Runs one shard's loop until `stopped`. Owns every connection routed to
/// this shard.
pub(crate) fn run_event_loop(cfg: LoopConfig) {
    let LoopConfig {
        shard,
        tcp,
        unix,
        shared,
        pool,
        wake,
        reply_tx,
        reply_rx,
        wake_reader,
        poller,
        handoff_rx,
        handoff,
    } = cfg;
    let stats = Arc::clone(&shared.stats);
    let (accepts, wakeups) = stats.shard_counters(shard);

    // Registration failures here are fatal to the loop but not the
    // process: the daemon keeps running (batcher/engine alive) and
    // `drain()` still joins cleanly.
    if poller
        .add(wake_reader.raw_fd(), TOKEN_WAKER, Interest::Read)
        .is_err()
    {
        return;
    }
    let mut tcp = tcp;
    let mut unix = unix;
    if let Some(l) = &tcp {
        if poller
            .add(l.as_raw_fd(), TOKEN_TCP, Interest::Read)
            .is_err()
        {
            return;
        }
    }
    if let Some(l) = &unix {
        if poller
            .add(l.as_raw_fd(), TOKEN_UNIX, Interest::Read)
            .is_err()
        {
            return;
        }
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut wheel = TimerWheel::new(Instant::now());
    let mut events = Vec::new();
    let mut fired = Vec::new();
    let mut drain: Option<DrainState> = None;
    let mut listeners_down = false;
    // Handoff round-robin cursor, offset by shard so several listener
    // owners (future-proofing) would not all start at shard 0.
    let mut rr = shard;

    loop {
        let now = Instant::now();
        let mut timeout = wheel.next_deadline(now);
        if drain.is_some() {
            // Poll the gate for idleness (or another shard's ack) while a
            // wire drain is pending on this shard.
            timeout = Some(timeout.map_or(Duration::from_millis(50), |t| {
                t.min(Duration::from_millis(50))
            }));
        }
        let _ = poller.wait(&mut events, timeout);
        stats.poll_wakeups.inc();
        wakeups.inc();

        if shared.stopped.load(Ordering::SeqCst) {
            shutdown_flush(&poller, &mut conns, &stats, &pool);
            return;
        }

        // Stop accepting the moment a drain begins.
        if !listeners_down && shared.draining.load(Ordering::SeqCst) {
            if let Some(l) = tcp.take() {
                let _ = poller.remove(l.as_raw_fd());
            }
            if let Some(l) = unix.take() {
                let _ = poller.remove(l.as_raw_fd());
            }
            listeners_down = true;
        }

        for ev in events.iter().copied() {
            match ev.token {
                TOKEN_WAKER => wake_reader.drain(),
                TOKEN_TCP => {
                    if let Some(listener) = &tcp {
                        accept_burst(
                            listener,
                            &poller,
                            &shared,
                            &mut conns,
                            &mut next_token,
                            &accepts,
                        );
                    }
                }
                TOKEN_UNIX => {
                    if let Some(listener) = &unix {
                        accept_unix_burst(
                            listener,
                            &poller,
                            &shared,
                            &mut conns,
                            &mut next_token,
                            &accepts,
                            &handoff,
                            &mut rr,
                            shard,
                        );
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut verdict = Verdict::Keep;
                    if ev.readable {
                        let timer = stats.stage_readable.timer();
                        verdict =
                            handle_readable(conn, &shared, &pool, &reply_tx, &wake, &mut drain);
                        drop(timer);
                    }
                    // Flush whatever dispatch queued (and, on writable
                    // events, whatever was already pending).
                    if matches!(verdict, Verdict::Keep) {
                        let timer = ev.writable.then(|| stats.stage_writable.timer());
                        verdict = flush_out(conn, &poller, &pool);
                        drop(timer);
                    }
                    // A pure hangup (no pending bytes to read) closes; a
                    // readable hangup was already consumed to EOF above.
                    if matches!(verdict, Verdict::Keep) && ev.closed && !ev.readable {
                        verdict = Verdict::Close;
                    }
                    match verdict {
                        Verdict::Close => close_conn(&poller, &mut conns, token, &shared, &pool),
                        Verdict::Keep => arm_deadline(&mut conns, token, &mut wheel),
                    }
                }
            }
        }

        // Adopt Unix connections the listener-owning shard handed over.
        while let Ok(h) = handoff_rx.try_recv() {
            register_conn(
                Sock::Unix(h.sock),
                h.permit,
                &poller,
                &shared,
                &mut conns,
                &mut next_token,
                &accepts,
            );
        }

        // Route replies queued by engine workers (and deferred acks).
        while let Ok((token, msg)) = reply_rx.try_recv() {
            let Some(conn) = conns.get_mut(&token) else {
                // Connection gone (the permit already dropped); salvage the
                // response's pooled buffer before dropping the message.
                recycle_dropped(&pool, msg);
                continue;
            };
            let timer = stats.stage_write.timer();
            route_reply(conn, msg);
            drop(timer);
            match flush_out(conn, &poller, &pool) {
                Verdict::Close => close_conn(&poller, &mut conns, token, &shared, &pool),
                Verdict::Keep => arm_deadline(&mut conns, token, &mut wheel),
            }
        }

        // Fire stall deadlines (lazy cancellation: re-check real progress).
        let now = Instant::now();
        wheel.expired(now, &mut fired);
        for &token in &fired {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.timer_armed = false;
            if !conn.engaged() {
                continue;
            }
            if now.saturating_duration_since(conn.last_progress) >= MID_ENVELOPE_STALL {
                close_conn(&poller, &mut conns, token, &shared, &pool);
            } else {
                arm_deadline(&mut conns, token, &mut wheel);
            }
        }

        // Resolve a pending wire drain without ever blocking the loop. Any
        // shard may observe idleness first and set the global flag; every
        // shard answers its own waiters (on the flag alone if another
        // shard won the race).
        if let Some(d) = &drain {
            let already = shared.drain_acked.load(Ordering::SeqCst);
            let idle = shared.gate.in_flight() == 0;
            let timed_out = d.started.elapsed() >= DRAIN_TIMEOUT;
            if already || idle || timed_out {
                if !already {
                    if timed_out && !idle {
                        eprintln!(
                            "preflightd: drain timed out after {DRAIN_TIMEOUT:?} with {} \
                             request(s) still in flight; acking anyway",
                            shared.gate.in_flight()
                        );
                    }
                    // Raise the flag before the ack can reach the wire:
                    // once a client observes DrainAck, `drain_acked()`
                    // must be true.
                    shared.drain_acked.store(true, Ordering::SeqCst);
                }
                let summary = shared.summary();
                let waiters: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.drain_waiter)
                    .map(|(t, _)| *t)
                    .collect();
                for token in waiters {
                    if let Some(conn) = conns.get_mut(&token) {
                        queue_reply(conn, &Message::DrainAck(summary));
                        if let Verdict::Close = flush_out(conn, &poller, &pool) {
                            close_conn(&poller, &mut conns, token, &shared, &pool);
                        }
                    }
                }
                drain = None;
            }
        }

        // The waker drain above may have consumed a wake byte posted
        // *after* this iteration's `stopped` check — re-check before
        // blocking again, or that stop request would wait on the next
        // unrelated event (possibly forever on an idle daemon).
        if shared.stopped.load(Ordering::SeqCst) {
            shutdown_flush(&poller, &mut conns, &stats, &pool);
            return;
        }
    }
}

/// Accepts from a TCP listener until `WouldBlock`, registering each
/// connection locally (or rejecting it with a best-effort `Busy` at the
/// cap). With `SO_REUSEPORT` sharding, each shard only sees the accepts
/// the kernel routed to its own listener.
fn accept_burst(
    listener: &TcpListener,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    accepts: &Counter,
) {
    loop {
        let timer = shared.stats.stage_accept.timer();
        let sock = match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(true);
                let _ = s.set_nodelay(true);
                Sock::Tcp(s)
            }
            Err(e) => {
                drop(timer);
                if e.kind() != ErrorKind::WouldBlock {
                    // EMFILE and friends: back off briefly instead of
                    // spinning on a level-triggered listener.
                    std::thread::sleep(Duration::from_millis(10));
                }
                return;
            }
        };
        let Some(permit) = shared.conn_gate.try_acquire() else {
            reject_connection(sock, shared);
            continue;
        };
        register_conn(sock, permit, poller, shared, conns, next_token, accepts);
    }
}

/// Accepts from the Unix listener, acquiring the connection permit, then
/// round-robins each accepted stream across the shards (itself included)
/// — the Unix-socket stand-in for `SO_REUSEPORT` spreading.
#[allow(clippy::too_many_arguments)]
fn accept_unix_burst(
    listener: &UnixListener,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    accepts: &Counter,
    handoff: &[(channel::Sender<Handoff>, WakeFn)],
    rr: &mut usize,
    own_shard: usize,
) {
    loop {
        let timer = shared.stats.stage_accept.timer();
        let sock = match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(true);
                s
            }
            Err(e) => {
                drop(timer);
                if e.kind() != ErrorKind::WouldBlock {
                    std::thread::sleep(Duration::from_millis(10));
                }
                return;
            }
        };
        let Some(permit) = shared.conn_gate.try_acquire() else {
            reject_connection(Sock::Unix(sock), shared);
            continue;
        };
        let target = if handoff.len() > 1 {
            let t = *rr % handoff.len();
            *rr = rr.wrapping_add(1);
            t
        } else {
            own_shard
        };
        if target == own_shard {
            register_conn(
                Sock::Unix(sock),
                permit,
                poller,
                shared,
                conns,
                next_token,
                accepts,
            );
        } else {
            let (tx, wake_peer) = &handoff[target];
            // On send failure the peer shard is gone; the permit and the
            // socket drop here, freeing the slot.
            if tx.send(Handoff { sock, permit }).is_ok() {
                wake_peer();
            }
        }
    }
}

/// Registers an accepted (or handed-off) connection with this shard.
fn register_conn(
    sock: Sock,
    permit: AdmissionPermit,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    accepts: &Counter,
) {
    let token = *next_token;
    *next_token += 1;
    if poller.add(sock.raw_fd(), token, Interest::Read).is_err() {
        // Registration failed (fd pressure): the permit drops here,
        // freeing the slot, and the socket closes.
        return;
    }
    shared.stats.connections.inc();
    shared.stats.open_connections.add(1);
    accepts.inc();
    conns.insert(
        token,
        Conn {
            sock,
            token,
            _permit: permit,
            state: ReadState::Head { filled: 0 },
            head: [0u8; HEAD_LEN],
            out: VecDeque::new(),
            out_seg: 0,
            out_off: 0,
            free: Vec::new(),
            want_write: false,
            last_progress: Instant::now(),
            timer_armed: false,
            close_after_flush: false,
            drain_waiter: false,
        },
    );
}

/// Answers an over-cap connection with `Busy` (best effort: a fresh socket
/// has an empty send buffer, so the small frame fits without blocking) and
/// closes it.
fn reject_connection(mut sock: Sock, shared: &Arc<Shared>) {
    shared.stats.rejected_connections.inc();
    let bytes = encode_message(&Message::Busy(BusyReply {
        request_id: 0,
        capacity: shared.conn_gate.capacity() as u32,
        in_flight: shared.conn_gate.in_flight() as u32,
    }));
    let _ = sock.write(&bytes);
}

fn close_conn(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    shared: &Arc<Shared>,
    pool: &BufferPool,
) {
    if let Some(mut conn) = conns.remove(&token) {
        let _ = poller.remove(conn.sock.raw_fd());
        shared.stats.open_connections.add(-1);
        // Salvage pooled response buffers still queued behind the socket.
        for mut msg in conn.out.drain(..) {
            if let Some(stack) = msg.stack.take() {
                recycle_payload(pool, stack);
            }
        }
        // Socket and connection permit drop here.
    }
}

/// Arms (at most) one stall-deadline entry for an engaged connection.
fn arm_deadline(conns: &mut HashMap<u64, Conn>, token: u64, wheel: &mut TimerWheel) {
    if let Some(conn) = conns.get_mut(&token) {
        if conn.engaged() && !conn.timer_armed {
            wheel.arm(token, conn.last_progress + MID_ENVELOPE_STALL);
            conn.timer_armed = true;
        }
    }
}

/// Reads as much as the kernel has, advancing the streaming decoder and
/// dispatching every complete message. Payload bytes land directly in the
/// decoder's pooled buffer — no intermediate body copy.
fn handle_readable(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    pool: &Arc<BufferPool>,
    reply_tx: &channel::Sender<(u64, Message)>,
    wake: &WakeFn,
    drain: &mut Option<DrainState>,
) -> Verdict {
    // After a wire error or protocol violation the reply is queued and the
    // connection is closing: stop decoding, just let the flush finish.
    if conn.close_after_flush {
        return Verdict::Keep;
    }
    loop {
        if let ReadState::Head { filled } = conn.state {
            match conn.sock.read(&mut conn.head[filled..]) {
                Ok(0) => {
                    // EOF: clean between envelopes, an error inside one;
                    // either way the connection is over.
                    return Verdict::Close;
                }
                Ok(n) => {
                    conn.last_progress = Instant::now();
                    let filled = filled + n;
                    if filled < HEAD_LEN {
                        conn.state = ReadState::Head { filled };
                        continue;
                    }
                    match parse_head(&conn.head) {
                        Ok((type_code, len)) => {
                            conn.state = ReadState::Body {
                                ingest: Ingest::new(type_code, len as usize, pool),
                            };
                        }
                        Err(e) => {
                            // Desynchronised stream: report, hang up.
                            shared.stats.wire_errors.inc();
                            queue_reply(conn, &wire_error_reply(&e));
                            conn.close_after_flush = true;
                            conn.state = ReadState::Head { filled: 0 };
                            return Verdict::Keep;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Verdict::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Verdict::Close,
            }
            continue;
        }
        // Body: the decoder exposes the next raw destination window (a
        // pooled pixel buffer mid-frame, small scratch otherwise) and the
        // socket reads straight into it.
        let complete = {
            let ReadState::Body { ingest } = &mut conn.state else {
                unreachable!("head state handled above");
            };
            let win = ingest.window();
            if win.is_empty() {
                true
            } else {
                match conn.sock.read(win) {
                    Ok(0) => return Verdict::Close,
                    Ok(n) => {
                        conn.last_progress = Instant::now();
                        ingest.consume(n);
                        false
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Verdict::Keep,
                    Err(e) if e.kind() == ErrorKind::Interrupted => false,
                    Err(_) => return Verdict::Close,
                }
            }
        };
        if complete {
            let ReadState::Body { ingest } =
                std::mem::replace(&mut conn.state, ReadState::Head { filled: 0 })
            else {
                unreachable!("completion observed in body state");
            };
            match ingest.finish() {
                Ok(message) => {
                    if let Verdict::Close = dispatch(conn, message, shared, reply_tx, wake, drain) {
                        return Verdict::Close;
                    }
                    if conn.close_after_flush {
                        return Verdict::Keep;
                    }
                }
                Err(e) => {
                    shared.stats.wire_errors.inc();
                    queue_reply(conn, &wire_error_reply(&e));
                    conn.close_after_flush = true;
                    return Verdict::Keep;
                }
            }
        }
    }
}

/// Handles one decoded message — the same protocol the threaded server
/// spoke, minus anything that blocks.
fn dispatch(
    conn: &mut Conn,
    message: Message,
    shared: &Arc<Shared>,
    reply_tx: &channel::Sender<(u64, Message)>,
    wake: &WakeFn,
    drain: &mut Option<DrainState>,
) -> Verdict {
    match message {
        Message::Submit(request) => {
            // The admission stage spans decode-to-verdict: drain check,
            // gate acquire, and handing the job (or rejection) onward.
            let _admission = shared.stats.stage_admission.timer();
            let request_id = request.request_id;
            if shared.draining.load(Ordering::SeqCst) {
                queue_reply(
                    conn,
                    &Message::Error(ErrorReply {
                        request_id,
                        code: ErrorCode::Draining,
                        message: "server is draining; no new work admitted".to_owned(),
                    }),
                );
                return Verdict::Keep;
            }
            match shared.gate.try_acquire() {
                Some(permit) => {
                    shared.stats.admitted.inc();
                    let job = SubmitJob {
                        request,
                        permit,
                        admitted_at: Instant::now(),
                        reply: ReplySink::new(conn.token, reply_tx.clone(), Some(wake.clone())),
                    };
                    if shared.batcher_tx.send(BatcherCmd::Submit(job)).is_err() {
                        queue_reply(
                            conn,
                            &Message::Error(ErrorReply {
                                request_id,
                                code: ErrorCode::Draining,
                                message: "server is shutting down".to_owned(),
                            }),
                        );
                    }
                }
                None => {
                    shared.stats.rejected_busy.inc();
                    queue_reply(
                        conn,
                        &Message::Busy(BusyReply {
                            request_id,
                            capacity: shared.gate.capacity() as u32,
                            in_flight: shared.gate.in_flight() as u32,
                        }),
                    );
                }
            }
            Verdict::Keep
        }
        Message::StatsRequest => {
            queue_reply(conn, &Message::StatsReply(shared.stats.snapshot()));
            Verdict::Keep
        }
        Message::Ping(token) => {
            queue_reply(conn, &Message::Pong(token));
            Verdict::Keep
        }
        Message::Drain => {
            shared.begin_drain();
            if shared.drain_acked.load(Ordering::SeqCst) {
                // A previous drain already completed: ack right away.
                queue_reply(conn, &Message::DrainAck(shared.summary()));
            } else {
                conn.drain_waiter = true;
                if drain.is_none() {
                    *drain = Some(DrainState {
                        started: Instant::now(),
                    });
                }
                // The ack is deferred: the loop checks gate idleness every
                // iteration and answers every drain waiter then.
            }
            Verdict::Keep
        }
        // Server-to-client messages arriving at the server are a protocol
        // violation; answer and hang up.
        Message::Response(_)
        | Message::Busy(_)
        | Message::Error(_)
        | Message::DrainAck(_)
        | Message::Pong(_)
        | Message::StatsReply(_) => {
            queue_reply(
                conn,
                &Message::Error(ErrorReply {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "unexpected server-side message from client".to_owned(),
                }),
            );
            conn.close_after_flush = true;
            Verdict::Keep
        }
    }
}

/// A recycled (or fresh) out-message with cleared scratch and segments.
fn take_msg(free: &mut Vec<OutMsg>) -> OutMsg {
    free.pop()
        .map(|mut m| {
            m.scratch.clear();
            m.segs.clear();
            m
        })
        .unwrap_or_default()
}

/// Retires a fully-flushed message: the pooled stack goes back to the
/// pool, the scratch/segment allocations back to the connection.
fn retire_msg(conn: &mut Conn, mut msg: OutMsg, pool: &BufferPool) {
    if let Some(stack) = msg.stack.take() {
        recycle_payload(pool, stack);
    }
    if conn.free.len() < FREE_MSGS && msg.scratch.capacity() <= BODY_CHUNK {
        conn.free.push(msg);
    }
}

/// Routes one engine reply into the connection's out-queue: responses take
/// the segmented zero-copy path, everything else the compact encoder.
fn route_reply(conn: &mut Conn, msg: Message) {
    #[cfg(target_endian = "little")]
    let msg = match msg {
        Message::Response(resp) => return queue_response(conn, resp),
        other => other,
    };
    queue_reply(conn, &msg);
}

/// Salvages the pooled buffer of a reply whose connection is gone.
fn recycle_dropped(pool: &BufferPool, msg: Message) {
    if let Message::Response(resp) = msg {
        recycle_payload(pool, resp.payload);
    }
}

/// Appends one encoded control reply to the connection's out-queue,
/// reusing a retired scratch buffer when one is available.
fn queue_reply(conn: &mut Conn, msg: &Message) {
    let mut out = take_msg(&mut conn.free);
    encode_message_into(msg, &mut out.scratch);
    out.segs.push(Seg::Scratch {
        start: 0,
        end: out.scratch.len(),
    });
    conn.out.push_back(out);
}

/// Queues a `Response` without flattening it: head, stats trailer, and
/// geometry go into scratch; each frame is a segment pointing into the
/// engine's pooled stack; frame CRCs and the payload CRC are computed over
/// the in-place views and land in scratch. Byte-identical to
/// [`encode_message`] (pinned by a test below) at zero allocations and
/// zero pixel copies.
#[cfg(target_endian = "little")]
fn queue_response(conn: &mut Conn, resp: crate::wire::SubmitResponse) {
    let msg = response_out_msg(take_msg(&mut conn.free), resp);
    conn.out.push_back(msg);
}

#[cfg(target_endian = "little")]
fn response_out_msg(mut msg: OutMsg, resp: crate::wire::SubmitResponse) -> OutMsg {
    use crate::wire::{encode_stats, put_u32, put_u64, MAGIC, VERSION};
    msg.scratch.extend_from_slice(&MAGIC);
    msg.scratch.push(VERSION);
    msg.scratch.push(RESPONSE_TYPE_CODE);
    put_u32(&mut msg.scratch, 0); // payload length, patched below
    put_u64(&mut msg.scratch, resp.request_id);
    encode_stats(&resp.stats, &mut msg.scratch);
    let payload = resp.payload;
    msg.scratch.push(payload.dtype().code());
    put_u32(&mut msg.scratch, payload.width() as u32);
    put_u32(&mut msg.scratch, payload.height() as u32);
    put_u32(&mut msg.scratch, payload.frames() as u32);
    let prefix_end = msg.scratch.len();
    msg.segs.push(Seg::Scratch {
        start: 0,
        end: prefix_end,
    });
    let mut payload_len = prefix_end - HEAD_LEN;
    let mut payload_crc = crate::crc::Crc32::new();
    payload_crc.update(&msg.scratch[HEAD_LEN..prefix_end]);
    for frame in 0..payload.frames() {
        let bytes = frame_le_bytes(&payload, frame);
        let crc = crate::crc::crc32(bytes);
        payload_crc.update(bytes);
        payload_len += bytes.len() + 4;
        msg.segs.push(Seg::Frame {
            frame,
            len: bytes.len(),
        });
        let at = msg.scratch.len();
        msg.scratch.extend_from_slice(&crc.to_le_bytes());
        payload_crc.update(&crc.to_le_bytes());
        msg.segs.push(Seg::Scratch {
            start: at,
            end: at + 4,
        });
    }
    msg.scratch[6..HEAD_LEN].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let at = msg.scratch.len();
    msg.scratch
        .extend_from_slice(&payload_crc.finish().to_le_bytes());
    msg.segs.push(Seg::Scratch {
        start: at,
        end: at + 4,
    });
    msg.stack = Some(payload);
    msg
}

/// Writes as much of the out-queue as the socket accepts, gathering up to
/// [`IOV_BATCH`] segments per `writev` so a whole response (head, frames,
/// CRCs) usually leaves in one syscall. Maintains write interest so the
/// poller reports this connection again only while messages remain.
fn flush_out(conn: &mut Conn, poller: &Poller, pool: &BufferPool) -> Verdict {
    let fd = conn.sock.raw_fd();
    while !conn.out.is_empty() {
        let wrote = {
            let mut slices: [&[u8]; IOV_BATCH] = [&[]; IOV_BATCH];
            let mut n = 0usize;
            let (mut seg, mut off) = (conn.out_seg, conn.out_off);
            'gather: for msg in conn.out.iter() {
                while seg < msg.segs.len() {
                    if n == IOV_BATCH {
                        break 'gather;
                    }
                    let slice = msg.seg_slice(seg, off);
                    if !slice.is_empty() {
                        slices[n] = slice;
                        n += 1;
                    }
                    seg += 1;
                    off = 0;
                }
                seg = 0;
            }
            if n == 0 {
                break;
            }
            match crate::poll::writev_fd(fd, &slices[..n]) {
                Ok(0) => return Verdict::Close,
                Ok(w) => w,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        };
        conn.last_progress = Instant::now();
        advance_out(conn, wrote, pool);
    }
    let pending = !conn.out.is_empty();
    if !pending && conn.close_after_flush {
        return Verdict::Close;
    }
    if pending != conn.want_write {
        let interest = if pending {
            Interest::ReadWrite
        } else {
            Interest::Read
        };
        if poller
            .modify(conn.sock.raw_fd(), conn.token, interest)
            .is_err()
        {
            return Verdict::Close;
        }
        conn.want_write = pending;
    }
    Verdict::Keep
}

/// Advances the flush cursor by `wrote` bytes, retiring every message the
/// socket fully consumed.
fn advance_out(conn: &mut Conn, mut wrote: usize, pool: &BufferPool) {
    while wrote > 0 {
        let front = conn.out.front().expect("bytes written past the out-queue");
        let remaining = front.seg_len(conn.out_seg) - conn.out_off;
        if wrote < remaining {
            conn.out_off += wrote;
            return;
        }
        wrote -= remaining;
        conn.out_seg += 1;
        conn.out_off = 0;
        if conn.out_seg == front.segs.len() {
            let msg = conn.out.pop_front().expect("front message vanished");
            conn.out_seg = 0;
            retire_msg(conn, msg, pool);
        }
    }
}

/// Final best-effort flush after `stopped`: give pending out-queues (the
/// last `DrainAck`s, in-flight responses) a bounded chance to reach their
/// sockets, then close everything.
fn shutdown_flush(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    stats: &crate::telemetry::ServerStats,
    pool: &BufferPool,
) {
    let deadline = Instant::now() + SHUTDOWN_FLUSH_GRACE;
    while Instant::now() < deadline {
        let mut pending = false;
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.out.is_empty() {
                continue;
            }
            match flush_out(conn, poller, pool) {
                Verdict::Close => {
                    if let Some(c) = conns.remove(&token) {
                        let _ = poller.remove(c.sock.raw_fd());
                        stats.open_connections.add(-1);
                    }
                }
                Verdict::Keep => {
                    if conns.get(&token).is_some_and(|c| !c.out.is_empty()) {
                        pending = true;
                    }
                }
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for (_, conn) in conns.drain() {
        let _ = poller.remove(conn.sock.raw_fd());
        stats.open_connections.add(-1);
    }
}

fn wire_error_reply(e: &crate::wire::WireError) -> Message {
    Message::Error(ErrorReply {
        request_id: 0,
        code: ErrorCode::Malformed,
        message: e.to_string(),
    })
}

#[cfg(all(test, target_endian = "little"))]
mod tests {
    use super::*;
    use crate::telemetry::RequestStats;
    use crate::wire::SubmitResponse;
    use preflight_core::ImageStack;

    fn response(frames: usize) -> SubmitResponse {
        let stack = ImageStack::from_vec(
            5,
            4,
            frames,
            (0..5 * 4 * frames as u64)
                .map(|v| (v.wrapping_mul(0x9E37) % 65_536) as u16)
                .collect(),
        )
        .unwrap();
        SubmitResponse {
            request_id: 0xDEAD_BEEF_CAFE,
            stats: RequestStats {
                samples_changed: 17,
                bits_flipped: 23,
                service_us: 1234,
                ..RequestStats::default()
            },
            payload: FramePayload::U16(stack),
        }
    }

    #[test]
    fn segments_match_encode_message() {
        for frames in [1, 3, 8] {
            let resp = response(frames);
            let reference = encode_message(&Message::Response(resp.clone()));
            let msg = response_out_msg(OutMsg::default(), resp);
            let mut gathered = Vec::new();
            for i in 0..msg.segs.len() {
                gathered.extend_from_slice(msg.seg_slice(i, 0));
            }
            assert_eq!(gathered, reference, "{frames} frame(s)");
        }
    }

    #[test]
    fn advance_retires_messages_and_recycles_stacks() {
        let pool = BufferPool::detached();
        // A connection stub needs a socket; a Unix socketpair is cheapest.
        let (a, _b) = UnixStream::pair().unwrap();
        let gate = crate::queue::AdmissionGate::new(1);
        let mut conn = Conn {
            sock: Sock::Unix(a),
            token: 99,
            _permit: gate.try_acquire().unwrap(),
            state: ReadState::Head { filled: 0 },
            head: [0u8; HEAD_LEN],
            out: VecDeque::new(),
            out_seg: 0,
            out_off: 0,
            free: Vec::new(),
            want_write: false,
            last_progress: Instant::now(),
            timer_armed: false,
            close_after_flush: false,
            drain_waiter: false,
        };
        let resp = response(2);
        let total: usize = {
            let msg = response_out_msg(OutMsg::default(), resp);
            let t = (0..msg.segs.len()).map(|i| msg.seg_len(i)).sum();
            conn.out.push_back(msg);
            t
        };
        // Consume in awkward chunk sizes spanning segment boundaries.
        let mut left = total;
        for chunk in [1usize, 7, 40, usize::MAX] {
            let step = chunk.min(left);
            advance_out(&mut conn, step, &pool);
            left -= step;
            if left == 0 {
                break;
            }
        }
        assert!(conn.out.is_empty(), "message not fully retired");
        assert_eq!(conn.out_seg, 0);
        assert_eq!(conn.out_off, 0);
        assert_eq!(conn.free.len(), 1, "scratch not recycled");
        // The stack buffer made it back to the pool: the next take of the
        // same geometry is a hit.
        assert!(pool.try_take_u16(5 * 4 * 2).is_some(), "stack not pooled");
    }
}
