//! The `/metrics` scrape listener: a deliberately tiny HTTP/1.1 server.
//!
//! `preflightd --metrics-addr ADDR` binds a second TCP listener that
//! speaks just enough HTTP for a Prometheus scraper: `GET /metrics`
//! returns the registry snapshot in text exposition format 0.0.4,
//! everything else gets a short 404/405. Requests are served serially on
//! one thread — scrapes are rare, tiny and read-only, so a connection
//! never touches the daemon's request path or its bounded queues.
//!
//! The listener gets the same distrust the wire protocol does: request
//! heads are read under a deadline and a size cap, so a stalled or
//! hostile scraper cannot pin the thread or grow its buffer.

use preflight_obs::{render_prometheus, Obs};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Accept-loop poll interval (also the per-read timeout on a scrape).
const POLL: Duration = Duration::from_millis(20);

/// A scrape that has not finished sending its head after this long is
/// dropped.
const REQUEST_DEADLINE: Duration = Duration::from_secs(5);

/// Cap on the bytes of request head we will buffer.
const MAX_REQUEST: usize = 8 * 1024;

/// Runs the scrape listener until `stop()` reports true. The listener
/// must already be non-blocking. Public so other daemons fronting the
/// same registry type (the fleet router) expose `/metrics` identically.
pub fn run_metrics_listener(listener: TcpListener, obs: Obs, stop: impl Fn() -> bool) {
    while !stop() {
        match listener.accept() {
            Ok((stream, _peer)) => serve_scrape(stream, &obs),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Answers one HTTP exchange and closes the connection.
fn serve_scrape(mut stream: TcpStream, obs: &Obs) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&obs.snapshot()),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "preflightd exposes /metrics\n".to_owned(),
        )
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the end of the request head (`\r\n\r\n`) and returns its
/// first line. `None` on EOF, timeout, oversize, or transport error.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let started = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST || started.elapsed() >= REQUEST_DEADLINE {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(str::to_owned)
}
