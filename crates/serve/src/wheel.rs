//! Hashed timer wheel for per-connection stall deadlines.
//!
//! The threaded server enforced the 30 s mid-envelope stall deadline with a
//! blocking `read_timeout` per thread; the event loop has no thread to
//! block, so deadlines live here. The wheel is coarse on purpose: a stall
//! deadline only needs one-second resolution, and lazy cancellation (the
//! loop re-checks the connection's actual `last_progress` when an entry
//! fires) means rearming on every byte of progress is unnecessary — each
//! connection keeps at most one live entry.

use std::time::{Duration, Instant};

/// Wheel slot width. Entries fire within `TICK` of their deadline.
pub const TICK: Duration = Duration::from_secs(1);

const SLOTS: usize = 64;

/// A coarse hashed timer wheel over `u64` connection tokens.
pub struct TimerWheel {
    slots: Vec<Vec<u64>>,
    /// Wheel epoch: slot 0 covers `[start, start + TICK)`.
    start: Instant,
    /// Next tick index to drain (monotonic, not wrapped).
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel anchored at `now`.
    pub fn new(now: Instant) -> Self {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            start: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, when: Instant) -> u64 {
        let elapsed = when.saturating_duration_since(self.start);
        let tick = elapsed.as_secs() + u64::from(elapsed.subsec_nanos() > 0);
        // Never schedule behind the cursor; late arms fire on the next
        // drain rather than being lost to an already-passed slot.
        tick.max(self.cursor)
    }

    /// Schedules `token` to fire at `deadline` (rounded up to the tick).
    ///
    /// The wheel holds one slot ring, so deadlines further out than
    /// `SLOTS` ticks wrap onto earlier slots and fire early; the caller's
    /// lazy re-check makes an early fire a harmless re-arm. Stall
    /// deadlines (30 s) fit the 64 s ring without wrapping.
    pub fn arm(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline);
        self.slots[(tick % SLOTS as u64) as usize].push(token);
        self.len += 1;
    }

    /// Pops every token whose slot has passed as of `now`. Fired tokens
    /// are gone from the wheel; the caller decides whether to act or
    /// re-arm (lazy cancellation).
    pub fn expired(&mut self, now: Instant, out: &mut Vec<u64>) {
        out.clear();
        let now_tick = now.saturating_duration_since(self.start).as_secs();
        while self.cursor <= now_tick {
            let slot = &mut self.slots[(self.cursor % SLOTS as u64) as usize];
            self.len -= slot.len();
            out.append(slot);
            self.cursor += 1;
        }
    }

    /// Time until the next armed slot could fire, if anything is armed.
    /// Feeds the poll timeout so an idle loop sleeps instead of spinning.
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        // Find the first non-empty slot at or after the cursor.
        for offset in 0..SLOTS as u64 {
            let tick = self.cursor + offset;
            if !self.slots[(tick % SLOTS as u64) as usize].is_empty() {
                let fire_at = self.start + TICK * u32::try_from(tick).unwrap_or(u32::MAX);
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        None
    }

    /// Number of armed entries (including stale ones awaiting lazy
    /// cancellation).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_after_their_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(1, t0 + Duration::from_secs(2));
        wheel.arm(2, t0 + Duration::from_secs(5));

        let mut fired = Vec::new();
        wheel.expired(t0 + Duration::from_millis(500), &mut fired);
        assert!(fired.is_empty(), "nothing due yet");

        wheel.expired(t0 + Duration::from_secs(3), &mut fired);
        assert_eq!(fired, vec![1]);

        wheel.expired(t0 + Duration::from_secs(6), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_tracks_the_earliest_entry() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert!(wheel.next_deadline(t0).is_none(), "empty wheel never fires");

        wheel.arm(1, t0 + Duration::from_secs(30));
        let d = wheel.next_deadline(t0).expect("armed");
        assert!(d >= Duration::from_secs(29) && d <= Duration::from_secs(31));

        wheel.arm(2, t0 + Duration::from_secs(3));
        let d = wheel.next_deadline(t0).expect("armed");
        assert!(d <= Duration::from_secs(4), "earlier entry wins: {d:?}");
    }

    #[test]
    fn late_arms_fire_on_the_next_drain() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let mut fired = Vec::new();
        wheel.expired(t0 + Duration::from_secs(10), &mut fired);

        // Deadline already in the past relative to the cursor.
        wheel.arm(7, t0 + Duration::from_secs(1));
        wheel.expired(t0 + Duration::from_secs(11), &mut fired);
        assert_eq!(fired, vec![7], "past-deadline arm must still fire");
    }
}
