//! Streaming, zero-copy decode of inbound envelopes.
//!
//! The PR 9 event loop buffered every payload into a `Vec<u8>`, then
//! [`crate::wire::parse_body`] re-walked it: one CRC pass, one per-sample
//! decode pass, one `ImageStack` allocation — three touches of every
//! payload byte plus an allocation per request. [`Ingest`] replaces that
//! for the hot message type: `Submit` pixel bytes are read off the socket
//! *directly into* a pooled, engine-ready stack buffer (the exactly-one
//! payload copy), with both CRC layers folded incrementally as bytes land.
//!
//! Everything else — control messages, `Submit`s too short to carry the
//! fixed 32-byte prefix, and big-endian hosts where memory order differs
//! from wire order — takes the `Buffered` phase, which reproduces the
//! legacy path byte for byte.
//!
//! **Error precedence is part of the wire contract.** The legacy decoder
//! verifies the envelope payload CRC before looking at any field, so a
//! corrupted transfer reports `CrcMismatch{payload}` even when the
//! corruption also mangled, say, the dtype byte. A streaming decoder meets
//! that ordering by *deferring*: the first validation failure is
//! remembered, the remaining payload is consumed through the running CRC
//! only (`Discard`), and the verdict at end-of-envelope is (1) payload CRC
//! mismatch if any, else (2) the remembered error, else (3) the message.

use crate::crc::Crc32;
use crate::pool::BufferPool;
use crate::wire::{self, Dtype, FramePayload, Message, SubmitRequest, WireError};
use preflight_core::ImageStack;
use std::sync::Arc;

/// Growth step for byte buffers, matching the event loop's read chunk: a
/// connection's memory tracks the bytes it has actually sent, so a peer
/// declaring a huge payload and stalling pins one chunk, not the
/// declaration.
const CHUNK: usize = 256 * 1024;

/// Fixed byte length of a `Submit` payload before the first pixel:
/// request id (8) + stream id (8) + lambda/upsilon/flags (3) + dtype (1) +
/// width/height/frames (12).
const SUBMIT_PREFIX: usize = 32;

/// Scratch size for the `Discard` phase (error path only).
const DISCARD_CHUNK: usize = 4096;

/// A pooled pixel buffer being filled straight off the socket.
enum StackBuf {
    U16(Vec<u16>),
    U32(Vec<u32>),
}

#[cfg(target_endian = "little")]
impl StackBuf {
    /// Takes from the pool (full-length, zeroed) or starts empty for
    /// incremental growth on a miss.
    fn take(pool: &BufferPool, dtype: Dtype, samples: usize) -> StackBuf {
        match dtype {
            Dtype::U16 => StackBuf::U16(pool.try_take_u16(samples).unwrap_or_default()),
            Dtype::U32 => StackBuf::U32(pool.try_take_u32(samples).unwrap_or_default()),
        }
    }

    fn len_bytes(&self) -> usize {
        match self {
            StackBuf::U16(v) => v.len() * 2,
            StackBuf::U32(v) => v.len() * 4,
        }
    }

    /// Grows (zero-filling) so at least `need` bytes of the buffer exist,
    /// never past `samples` total elements.
    fn ensure_bytes(&mut self, need: usize, samples: usize) {
        fn grow<T: Copy + Default>(v: &mut Vec<T>, need: usize, samples: usize, word: usize) {
            let want = need.div_ceil(word).min(samples);
            if v.len() < want {
                v.resize(want, T::default());
            }
        }
        match self {
            StackBuf::U16(v) => grow(v, need, samples, 2),
            StackBuf::U32(v) => grow(v, need, samples, 4),
        }
    }

    /// A mutable wire-byte window over `[byte_off, byte_off + len)`.
    fn window(&mut self, byte_off: usize, len: usize) -> &mut [u8] {
        match self {
            StackBuf::U16(v) => crate::bytes::le_window(v, byte_off, len),
            StackBuf::U32(v) => crate::bytes::le_window(v, byte_off, len),
        }
    }

    fn into_payload(
        self,
        width: usize,
        height: usize,
        frames: usize,
    ) -> Result<FramePayload, WireError> {
        match self {
            StackBuf::U16(v) => ImageStack::from_vec(width, height, frames, v)
                .map(FramePayload::U16)
                .map_err(|e| WireError::Malformed(e.to_string())),
            StackBuf::U32(v) => ImageStack::from_vec(width, height, frames, v)
                .map(FramePayload::U32)
                .map_err(|e| WireError::Malformed(e.to_string())),
        }
    }

    /// Returns the buffer to the pool (the error path's recycle: the data
    /// is garbage but the allocation is good, and takes scrub on handout).
    fn recycle(self, pool: &BufferPool) {
        match self {
            StackBuf::U16(v) => pool.put_u16(v),
            StackBuf::U32(v) => pool.put_u32(v),
        }
    }
}

/// Fields of a `Submit` prefix once parsed and validated.
#[cfg(target_endian = "little")]
struct SubmitMeta {
    request_id: u64,
    stream_id: u64,
    lambda: u8,
    upsilon: u8,
    eos: bool,
    width: usize,
    height: usize,
    frames: usize,
    frame_bytes: usize,
    samples: usize,
}

enum Phase {
    /// Legacy path: the whole payload + trailing CRC accumulate in one
    /// grow-as-received byte buffer, finished by [`wire::parse_body`].
    Buffered { buf: Vec<u8>, filled: usize },
    /// Streaming `Submit`: accumulating the fixed 32-byte prefix.
    #[cfg(target_endian = "little")]
    Prefix {
        buf: [u8; SUBMIT_PREFIX],
        filled: usize,
    },
    /// Streaming `Submit`: pixel bytes of frame `frame` land directly in
    /// the pooled stack buffer.
    #[cfg(target_endian = "little")]
    Pixels {
        frame: usize,
        off: usize,
        frame_crc: Crc32,
    },
    /// Streaming `Submit`: the 4-byte CRC trailing frame `frame`;
    /// `actual` is the CRC of the pixel bytes just received.
    #[cfg(target_endian = "little")]
    FrameCrc {
        frame: usize,
        got: [u8; 4],
        filled: usize,
        actual: u32,
    },
    /// A validation error was recorded: consume the rest of the payload
    /// through the payload CRC only.
    #[cfg(target_endian = "little")]
    Discard { buf: Vec<u8> },
    /// The 4-byte envelope payload CRC.
    #[cfg(target_endian = "little")]
    TrailCrc { got: [u8; 4], filled: usize },
    /// Everything received; [`Ingest::finish`] may be called.
    #[cfg(target_endian = "little")]
    Done { trail: u32 },
}

/// Incremental decoder for one envelope body (everything after the
/// 10-byte head). Drive it with [`Ingest::window`] / [`Ingest::consume`]
/// until the window comes back empty, then call [`Ingest::finish`].
pub(crate) struct Ingest {
    type_code: u8,
    payload_len: usize,
    /// Payload bytes consumed so far (excludes the trailing CRC).
    consumed: usize,
    payload_crc: Crc32,
    phase: Phase,
    #[cfg(target_endian = "little")]
    pool: Arc<BufferPool>,
    #[cfg(target_endian = "little")]
    meta: Option<SubmitMeta>,
    #[cfg(target_endian = "little")]
    stack: Option<StackBuf>,
    #[cfg(target_endian = "little")]
    first_err: Option<WireError>,
}

impl Ingest {
    /// Starts decoding a body of `payload_len` bytes (+ 4 CRC bytes) for
    /// an envelope whose head declared `type_code`.
    pub(crate) fn new(type_code: u8, payload_len: usize, pool: &Arc<BufferPool>) -> Ingest {
        #[cfg(not(target_endian = "little"))]
        let _ = pool;
        let phase = {
            #[cfg(target_endian = "little")]
            {
                if type_code == 1 && payload_len >= SUBMIT_PREFIX {
                    Phase::Prefix {
                        buf: [0u8; SUBMIT_PREFIX],
                        filled: 0,
                    }
                } else {
                    Phase::Buffered {
                        buf: Vec::new(),
                        filled: 0,
                    }
                }
            }
            #[cfg(not(target_endian = "little"))]
            {
                Phase::Buffered {
                    buf: Vec::new(),
                    filled: 0,
                }
            }
        };
        Ingest {
            type_code,
            payload_len,
            consumed: 0,
            payload_crc: Crc32::new(),
            phase,
            #[cfg(target_endian = "little")]
            pool: Arc::clone(pool),
            #[cfg(target_endian = "little")]
            meta: None,
            #[cfg(target_endian = "little")]
            stack: None,
            #[cfg(target_endian = "little")]
            first_err: None,
        }
    }

    /// The next destination for socket bytes. An empty window means the
    /// envelope is complete — call [`Ingest::finish`].
    pub(crate) fn window(&mut self) -> &mut [u8] {
        let payload_len = self.payload_len;
        match &mut self.phase {
            Phase::Buffered { buf, filled } => {
                let total = payload_len + 4;
                if *filled == buf.len() && buf.len() < total {
                    let grown = total.min(buf.len() + CHUNK);
                    buf.resize(grown, 0);
                }
                &mut buf[*filled..]
            }
            #[cfg(target_endian = "little")]
            Phase::Prefix { buf, filled } => &mut buf[*filled..],
            #[cfg(target_endian = "little")]
            Phase::Pixels { frame, off, .. } => {
                let meta = self.meta.as_ref().expect("pixels phase without meta");
                let start = *frame * meta.frame_bytes + *off;
                let len = (meta.frame_bytes - *off).min(CHUNK);
                let stack = self.stack.as_mut().expect("pixels phase without stack");
                stack.ensure_bytes(start + len, meta.samples);
                // A pool hit is already full-length; a miss grew above.
                debug_assert!(stack.len_bytes() >= start + len);
                stack.window(start, len)
            }
            #[cfg(target_endian = "little")]
            Phase::FrameCrc { got, filled, .. } => &mut got[*filled..],
            #[cfg(target_endian = "little")]
            Phase::Discard { buf } => {
                let len = (payload_len - self.consumed).min(DISCARD_CHUNK);
                &mut buf[..len]
            }
            #[cfg(target_endian = "little")]
            Phase::TrailCrc { got, filled } => &mut got[*filled..],
            #[cfg(target_endian = "little")]
            Phase::Done { .. } => &mut [],
        }
    }

    /// Accounts `n` bytes just read into the front of the last
    /// [`Ingest::window`], folding CRCs and advancing phases.
    pub(crate) fn consume(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        match &mut self.phase {
            Phase::Buffered { filled, .. } => {
                *filled += n;
            }
            #[cfg(target_endian = "little")]
            Phase::Prefix { buf, filled } => {
                *filled += n;
                self.consumed += n;
                if *filled == SUBMIT_PREFIX {
                    let prefix = *buf;
                    self.payload_crc.update(&prefix);
                    self.on_prefix(&prefix);
                }
            }
            #[cfg(target_endian = "little")]
            Phase::Pixels {
                frame,
                off,
                frame_crc,
            } => {
                let meta = self.meta.as_ref().expect("pixels phase without meta");
                let start = *frame * meta.frame_bytes + *off;
                let frame_done = {
                    let stack = self.stack.as_mut().expect("pixels phase without stack");
                    let bytes = &stack.window(start, n)[..];
                    self.payload_crc.update(bytes);
                    frame_crc.update(bytes);
                    *off += n;
                    *off == meta.frame_bytes
                };
                self.consumed += n;
                if frame_done {
                    self.phase = Phase::FrameCrc {
                        frame: *frame,
                        got: [0u8; 4],
                        filled: 0,
                        actual: frame_crc.finish(),
                    };
                }
            }
            #[cfg(target_endian = "little")]
            Phase::FrameCrc {
                frame,
                got,
                filled,
                actual,
            } => {
                self.payload_crc.update(&got[*filled..*filled + n]);
                *filled += n;
                self.consumed += n;
                if *filled == 4 {
                    let expected = u32::from_le_bytes(*got);
                    let (frame, actual) = (*frame, *actual);
                    if expected != actual {
                        self.fail(WireError::CrcMismatch {
                            scope: "frame",
                            expected,
                            actual,
                        });
                    } else {
                        let frames = self.meta.as_ref().map(|m| m.frames).unwrap_or(0);
                        if frame + 1 == frames {
                            let trailing = self.payload_len - self.consumed;
                            if trailing > 0 {
                                self.fail(WireError::Malformed(format!(
                                    "{trailing} trailing byte(s) after message body"
                                )));
                            } else {
                                self.phase = Phase::TrailCrc {
                                    got: [0u8; 4],
                                    filled: 0,
                                };
                            }
                        } else {
                            self.phase = Phase::Pixels {
                                frame: frame + 1,
                                off: 0,
                                frame_crc: Crc32::new(),
                            };
                        }
                    }
                }
            }
            #[cfg(target_endian = "little")]
            Phase::Discard { buf } => {
                self.payload_crc.update(&buf[..n]);
                self.consumed += n;
                if self.consumed == self.payload_len {
                    self.phase = Phase::TrailCrc {
                        got: [0u8; 4],
                        filled: 0,
                    };
                }
            }
            #[cfg(target_endian = "little")]
            Phase::TrailCrc { got, filled } => {
                *filled += n;
                if *filled == 4 {
                    self.phase = Phase::Done {
                        trail: u32::from_le_bytes(*got),
                    };
                }
            }
            #[cfg(target_endian = "little")]
            Phase::Done { .. } => unreachable!("consume after completion"),
        }
    }

    /// Parses and validates the 32-byte `Submit` prefix, in exactly the
    /// order the legacy decoder checks fields, then opens the pixel phase
    /// (or starts discarding behind a remembered error).
    #[cfg(target_endian = "little")]
    fn on_prefix(&mut self, p: &[u8; SUBMIT_PREFIX]) {
        let u64at = |i: usize| u64::from_le_bytes(p[i..i + 8].try_into().unwrap());
        let u32at = |i: usize| u32::from_le_bytes(p[i..i + 4].try_into().unwrap());
        let (request_id, stream_id) = (u64at(0), u64at(8));
        let (lambda, upsilon, flags, dtype_code) = (p[16], p[17], p[18], p[19]);
        let (width, height, frames) = (u32at(20) as usize, u32at(24) as usize, u32at(28) as usize);
        if lambda > 100 {
            return self.fail(WireError::Malformed(format!(
                "lambda {lambda} out of 0..=100"
            )));
        }
        if upsilon < 2 || upsilon % 2 != 0 || upsilon > 16 {
            return self.fail(WireError::Malformed(format!(
                "upsilon {upsilon} must be even and in 2..=16"
            )));
        }
        let dtype = match Dtype::from_code(dtype_code) {
            Ok(d) => d,
            Err(e) => return self.fail(e),
        };
        if width == 0 || height == 0 || frames == 0 {
            return self.fail(WireError::Malformed(format!(
                "zero dimension in {width}x{height}x{frames} stack"
            )));
        }
        let Some(frame_len) = width.checked_mul(height) else {
            return self.fail(WireError::Malformed("frame area overflows".to_owned()));
        };
        let Some(frame_bytes) = frame_len.checked_mul(dtype.bytes()) else {
            return self.fail(WireError::Malformed("frame size overflows".to_owned()));
        };
        let Some(declared) = frame_bytes
            .checked_add(4)
            .and_then(|per_frame| per_frame.checked_mul(frames))
        else {
            return self.fail(WireError::Malformed("stack size overflows".to_owned()));
        };
        if declared > self.payload_len - SUBMIT_PREFIX {
            return self.fail(WireError::Truncated("frame data"));
        }
        let Some(samples) = frame_len.checked_mul(frames) else {
            return self.fail(WireError::Malformed("stack size overflows".to_owned()));
        };
        self.stack = Some(StackBuf::take(&self.pool, dtype, samples));
        self.meta = Some(SubmitMeta {
            request_id,
            stream_id,
            lambda,
            upsilon,
            eos: flags & 1 != 0,
            width,
            height,
            frames,
            frame_bytes,
            samples,
        });
        self.phase = Phase::Pixels {
            frame: 0,
            off: 0,
            frame_crc: Crc32::new(),
        };
    }

    /// Records the first validation failure and switches to discarding
    /// the rest of the payload (payload-CRC-only).
    #[cfg(target_endian = "little")]
    fn fail(&mut self, err: WireError) {
        if self.first_err.is_none() {
            self.first_err = Some(err);
        }
        if let Some(stack) = self.stack.take() {
            stack.recycle(&self.pool);
        }
        self.phase = if self.consumed == self.payload_len {
            Phase::TrailCrc {
                got: [0u8; 4],
                filled: 0,
            }
        } else {
            Phase::Discard {
                buf: vec![0u8; DISCARD_CHUNK],
            }
        };
    }

    /// Finishes a fully received envelope into its message (or the error
    /// the legacy decoder would have reported).
    pub(crate) fn finish(self) -> Result<Message, WireError> {
        match self.phase {
            Phase::Buffered { buf, filled } => {
                debug_assert_eq!(filled, self.payload_len + 4);
                let (payload, crc_bytes) = buf.split_at(self.payload_len);
                let wire_crc =
                    u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
                wire::parse_body(self.type_code, payload, wire_crc)
            }
            #[cfg(target_endian = "little")]
            Phase::Done { trail } => {
                let actual = self.payload_crc.finish();
                if trail != actual {
                    if let Some(stack) = self.stack {
                        stack.recycle(&self.pool);
                    }
                    return Err(WireError::CrcMismatch {
                        scope: "payload",
                        expected: trail,
                        actual,
                    });
                }
                if let Some(err) = self.first_err {
                    return Err(err);
                }
                let meta = self.meta.expect("clean finish without meta");
                let stack = self.stack.expect("clean finish without stack");
                let payload = stack.into_payload(meta.width, meta.height, meta.frames)?;
                Ok(Message::Submit(SubmitRequest {
                    request_id: meta.request_id,
                    stream_id: meta.stream_id,
                    lambda: meta.lambda,
                    upsilon: meta.upsilon,
                    eos: meta.eos,
                    payload,
                }))
            }
            #[cfg(target_endian = "little")]
            _ => unreachable!("finish before completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_message, encode_message, HEAD_LEN};

    fn submit(frames: usize) -> Message {
        let stack = ImageStack::from_vec(
            4,
            3,
            frames,
            (0..4 * 3 * frames as u64)
                .map(|v| (v * 257 % 65_536) as u16)
                .collect(),
        )
        .unwrap();
        Message::Submit(SubmitRequest {
            request_id: 42,
            stream_id: 7,
            lambda: 80,
            upsilon: 4,
            eos: true,
            payload: FramePayload::U16(stack),
        })
    }

    /// Feeds an encoded envelope's body through an `Ingest` in chunks of
    /// `step` bytes and returns its verdict.
    fn drive(encoded: &[u8], step: usize) -> Result<Message, WireError> {
        let type_code = encoded[5];
        let payload_len =
            u32::from_le_bytes([encoded[6], encoded[7], encoded[8], encoded[9]]) as usize;
        let pool = Arc::new(BufferPool::detached());
        let mut ingest = Ingest::new(type_code, payload_len, &pool);
        let mut body = &encoded[HEAD_LEN..];
        loop {
            let win = ingest.window();
            if win.is_empty() {
                assert!(body.is_empty(), "ingest finished early");
                break;
            }
            assert!(!body.is_empty(), "ingest wants bytes past the envelope");
            let n = win.len().min(step).min(body.len());
            win[..n].copy_from_slice(&body[..n]);
            body = &body[n..];
            ingest.consume(n);
        }
        ingest.finish()
    }

    #[test]
    fn streams_a_submit_identically_to_the_legacy_decoder() {
        let msg = submit(5);
        let encoded = encode_message(&msg);
        for step in [1, 3, 7, 32, 33, 4096, encoded.len()] {
            let got = drive(&encoded, step).expect("clean submit");
            assert_eq!(got, msg, "chunk step {step}");
        }
    }

    #[test]
    fn verdicts_match_parse_body_on_corrupt_envelopes() {
        let clean = encode_message(&submit(3));
        // Corrupt single bytes at interesting offsets: prefix fields,
        // pixel data, a frame CRC, the payload CRC.
        let offsets = [
            HEAD_LEN + 16,   // lambda
            HEAD_LEN + 19,   // dtype
            HEAD_LEN + 20,   // width
            HEAD_LEN + 40,   // pixel byte
            clean.len() - 6, // inside last frame CRC
            clean.len() - 2, // inside payload CRC
        ];
        for &off in &offsets {
            let mut bad = clean.clone();
            bad[off] ^= 0x5A;
            let legacy = decode_message(&bad).map(|(m, _)| m);
            let streamed = drive(&bad, 13);
            match (&legacy, &streamed) {
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "offset {off}"),
                (a, b) => panic!("verdict diverged at {off}: legacy {a:?}, streamed {b:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_reported_like_legacy() {
        // Rebuild the envelope with 3 junk bytes appended to the payload
        // (length + CRC adjusted so only the trailing check can fire).
        let clean = encode_message(&submit(2));
        let payload_len = u32::from_le_bytes(clean[6..10].try_into().unwrap()) as usize;
        let mut payload = clean[HEAD_LEN..HEAD_LEN + payload_len].to_vec();
        payload.extend_from_slice(&[9, 9, 9]);
        let mut tampered = clean[..6].to_vec();
        tampered.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        tampered.extend_from_slice(&payload);
        tampered.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
        let legacy = decode_message(&tampered).map(|(m, _)| m);
        let streamed = drive(&tampered, 8);
        match (&legacy, &streamed) {
            (Err(a), Err(b)) => {
                assert!(a.to_string().contains("trailing byte"), "{a}");
                assert_eq!(a.to_string(), b.to_string());
            }
            (a, b) => panic!("verdict diverged: legacy {a:?}, streamed {b:?}"),
        }
    }

    #[test]
    fn control_messages_take_the_buffered_path() {
        let msg = Message::Ping(99);
        let encoded = encode_message(&msg);
        for step in [1, 4, encoded.len()] {
            assert_eq!(drive(&encoded, step).unwrap(), msg);
        }
    }
}
