//! The supervised batch engine.
//!
//! Each flushed [`BatchJob`] is concatenated into one temporal stack and
//! repaired by the data-parallel [`Preprocessor`] under the PR 1
//! supervisor: per-attempt deadlines, retries with deterministic backoff,
//! and — when a rung keeps failing — a quarantine step down the
//! [`DegradationLadder`] (`Algo_NGST` → bit voter → median smoother →
//! passthrough). A batch therefore always produces responses; the worst
//! case is raw data flagged `passthrough` in the telemetry trailer.
//!
//! Panics inside the preprocessing pass are absorbed with `catch_unwind`
//! and reported to the supervisor as [`FailureKind::Crash`], so one
//! poisoned batch can never take the daemon down.
//!
//! Observability: every batch runs under an `engine` stage span; each
//! request's queue wait feeds the `queue` stage histogram; repairs,
//! retries and ladder transitions land in the shared registry.

use crate::batcher::{BatchJob, GroupKey};
use crate::pool::BufferPool;
use crate::queue::AdmissionPermit;
use crate::reply::ReplySink;
use crate::telemetry::{RequestStats, ServerStats};
use crate::wire::{Dtype, ErrorCode, ErrorReply, FramePayload, Message, SubmitResponse};
use crossbeam::channel;
use preflight_core::{
    observe_stack, AlgoNgst, BitPixel, ImageStack, Kernel, NgstConfig, Preprocessor, Sensitivity,
    TuneDecision, Tuner, Upsilon, ValuePixel,
};
use preflight_obs::Obs;
use preflight_supervisor::{
    supervise, DegradationLadder, FailureKind, FtLevel, RecoveryLog, StageOutcome, Supervision,
};
use preflight_tune::{StreamCalibrator, TuneParams};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads handed to the [`Preprocessor`] per batch.
    pub threads: usize,
    /// Voter kernel handed to the [`Preprocessor`] (all three are
    /// bit-identical; the sweep kernel is the default, the bit-sliced
    /// kernel the SIMD-dispatched throughput option).
    pub kernel: Kernel,
    /// Retry/timeout/degradation policy applied to each batch.
    pub supervision: Supervision,
    /// Per-stream auto-tuning state (`--auto-tune`). `None` — the default —
    /// serves every request with its requested Λ/Υ and the paper's
    /// per-series dynamic windows.
    pub tuners: Option<TunerRegistry>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: preflight_core::available_threads(),
            kernel: Kernel::default(),
            supervision: Supervision::default(),
            tuners: None,
        }
    }
}

/// Per-stream calibrator state, keyed by the batch [`GroupKey`] and shared
/// by every engine worker (clones share one map). A stream keeps its
/// rolling Φ statistics across batches, so boundaries freeze after warm-up
/// and move only when the scene statistics drift out of the hysteresis
/// band.
#[derive(Debug, Clone, Default)]
pub struct TunerRegistry {
    inner: Arc<Mutex<HashMap<GroupKey, Arc<StreamCalibrator>>>>,
}

impl TunerRegistry {
    /// An empty registry; calibrators materialise per stream on first use.
    pub fn new() -> Self {
        TunerRegistry::default()
    }

    /// Number of streams with live calibrators.
    pub fn streams(&self) -> usize {
        self.inner.lock().expect("tuner registry lock").len()
    }

    /// The calibrator for `key`, created on first sight with the stream's
    /// requested Λ/Υ as the tuning baseline.
    fn for_key(
        &self,
        key: &GroupKey,
        lambda: Sensitivity,
        upsilon: Upsilon,
        obs: &Obs,
    ) -> Arc<StreamCalibrator> {
        let mut map = self.inner.lock().expect("tuner registry lock");
        Arc::clone(map.entry(*key).or_insert_with(|| {
            Arc::new(StreamCalibrator::new(TuneParams::new(lambda, upsilon), obs))
        }))
    }
}

/// Monotonic batch counter, used as the supervisor's `unit` id so recovery
/// events are attributable to a specific batch.
static BATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs one engine worker: pulls batches until the channel closes.
/// Buffers for working copies and responses come from (and return to)
/// `pool`, shared with the ingest side of the event loop.
pub fn run_engine_worker(
    rx: channel::Receiver<BatchJob>,
    config: EngineConfig,
    stats: Arc<ServerStats>,
    pool: Arc<BufferPool>,
) {
    for batch in rx.iter() {
        process_batch(batch, &config, &stats, &pool);
    }
}

/// Preprocesses one batch and answers every request inside it.
pub fn process_batch(
    batch: BatchJob,
    config: &EngineConfig,
    stats: &ServerStats,
    pool: &BufferPool,
) {
    stats.batches.inc();
    match batch.key.dtype {
        Dtype::U16 => process_typed::<u16>(batch, config, stats, pool),
        Dtype::U32 => process_typed::<u32>(batch, config, stats, pool),
    }
}

/// Pixel-type plumbing between [`FramePayload`] and the generic engine.
trait PayloadPixel: BitPixel + ValuePixel {
    /// The stack inside `p`, if `p` matches this pixel type.
    fn stack(p: &FramePayload) -> Option<&ImageStack<Self>>;
    /// Moves the stack out of `p`, if `p` matches this pixel type.
    fn into_stack(p: FramePayload) -> Option<ImageStack<Self>>;
    /// Wraps a stack back into a payload.
    fn wrap(stack: ImageStack<Self>) -> FramePayload;
    /// A zeroed pooled buffer of `samples` elements.
    fn take_filled(pool: &BufferPool, samples: usize) -> Vec<Self>;
    /// Recycles a buffer into the pool's shelf for this pixel type.
    fn put(pool: &BufferPool, data: Vec<Self>);
}

impl PayloadPixel for u16 {
    fn stack(p: &FramePayload) -> Option<&ImageStack<u16>> {
        match p {
            FramePayload::U16(s) => Some(s),
            FramePayload::U32(_) => None,
        }
    }

    fn into_stack(p: FramePayload) -> Option<ImageStack<u16>> {
        match p {
            FramePayload::U16(s) => Some(s),
            FramePayload::U32(_) => None,
        }
    }

    fn wrap(stack: ImageStack<u16>) -> FramePayload {
        FramePayload::U16(stack)
    }

    fn take_filled(pool: &BufferPool, samples: usize) -> Vec<u16> {
        pool.take_filled_u16(samples)
    }

    fn put(pool: &BufferPool, data: Vec<u16>) {
        pool.put_u16(data);
    }
}

impl PayloadPixel for u32 {
    fn stack(p: &FramePayload) -> Option<&ImageStack<u32>> {
        match p {
            FramePayload::U32(s) => Some(s),
            FramePayload::U16(_) => None,
        }
    }

    fn into_stack(p: FramePayload) -> Option<ImageStack<u32>> {
        match p {
            FramePayload::U32(s) => Some(s),
            FramePayload::U16(_) => None,
        }
    }

    fn wrap(stack: ImageStack<u32>) -> FramePayload {
        FramePayload::U32(stack)
    }

    fn take_filled(pool: &BufferPool, samples: usize) -> Vec<u32> {
        pool.take_filled_u32(samples)
    }

    fn put(pool: &BufferPool, data: Vec<u32>) {
        pool.put_u32(data);
    }
}

/// A pooled, zeroed stack of the given geometry.
fn pooled_stack<T: PayloadPixel>(
    pool: &BufferPool,
    width: usize,
    height: usize,
    frames: usize,
) -> ImageStack<T> {
    let data = T::take_filled(pool, width * height * frames);
    ImageStack::from_vec(width, height, frames, data).expect("pooled buffer sized to geometry")
}

/// Returns a stack's buffer to the pool.
fn recycle<T: PayloadPixel>(pool: &BufferPool, stack: ImageStack<T>) {
    T::put(pool, stack.into_vec());
}

/// What the engine still owes one request after its stack was moved into
/// the combined input.
struct JobMeta {
    reply: ReplySink,
    request_id: u64,
    admitted_at: Instant,
    start: usize,
    frames: usize,
    /// Held until the reply is queued, exactly as `SubmitJob` held it.
    _permit: AdmissionPermit,
}

fn process_typed<T: PayloadPixel>(
    batch: BatchJob,
    config: &EngineConfig,
    stats: &ServerStats,
    pool: &BufferPool,
) {
    let key = batch.key;
    let total_frames = batch.total_frames;
    let unit = BATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dispatched_at = Instant::now();
    // Covers the whole batch service: ladder walk, slicing, reply queuing.
    let engine_timer = stats.stage_engine.timer();

    let (upsilon, lambda) = match (
        Upsilon::new(key.upsilon as usize),
        Sensitivity::new(u32::from(key.lambda)),
    ) {
        (Ok(upsilon), Ok(lambda)) => (upsilon, lambda),
        _ => {
            // Wire validation bounds Λ and Υ, so this too is defensive.
            respond_error(&batch, "invalid algorithm parameters");
            return;
        }
    };
    if batch
        .jobs
        .iter()
        .any(|job| T::stack(&job.request.payload).is_none())
    {
        // The batcher keys on dtype, so this cannot happen; answer
        // defensively instead of crashing the worker.
        respond_error(&batch, "batch mixed pixel types");
        return;
    }

    // Take ownership of every request's stack. A single-request batch —
    // the latency-path common case — *moves* its pooled ingest buffer
    // straight in as the engine input: zero copies, zero allocations.
    // Multi-request batches concatenate into one pooled stack and recycle
    // the sources immediately.
    let batch_requests = batch.jobs.len() as u32;
    let mut metas: Vec<JobMeta> = Vec::with_capacity(batch.jobs.len());
    let mut stacks: Vec<ImageStack<T>> = Vec::with_capacity(batch.jobs.len());
    let mut offset = 0;
    for job in batch.jobs {
        let stack = T::into_stack(job.request.payload).expect("dtype checked above");
        metas.push(JobMeta {
            reply: job.reply,
            request_id: job.request.request_id,
            admitted_at: job.admitted_at,
            start: offset,
            frames: stack.frames(),
            _permit: job.permit,
        });
        offset += stack.frames();
        stacks.push(stack);
    }
    let input: ImageStack<T> = if stacks.len() == 1 {
        stacks.pop().expect("one stack")
    } else {
        let mut combined = pooled_stack::<T>(pool, key.width, key.height, total_frames);
        for (meta, stack) in metas.iter().zip(stacks.drain(..)) {
            for i in 0..stack.frames() {
                combined
                    .frame_mut(meta.start + i)
                    .copy_from_slice(stack.frame(i));
            }
            recycle(pool, stack);
        }
        combined
    };

    // Auto-tuning: feed this batch's XOR-diff sample to the stream's
    // calibrator and take whatever decision is in force *before* the
    // supervised ladder walk, so every retry of this batch (and every
    // worker thread) sees one frozen decision — retries stay bit-identical
    // to the first attempt.
    let decision: Option<TuneDecision> = config.tuners.as_ref().and_then(|reg| {
        let cal = reg.for_key(&key, lambda, upsilon, stats.obs());
        observe_stack(cal.as_ref(), &input);
        cal.decision(T::BITS)
    });
    let algo = match &decision {
        Some(d) => AlgoNgst::with_config(
            d.upsilon,
            d.lambda,
            NgstConfig {
                static_windows: Some((d.window_a_bits, d.window_c_bits)),
                ..NgstConfig::default()
            },
        ),
        None => AlgoNgst::new(upsilon, lambda),
    };
    let ladder = DegradationLadder::new(Some(algo));

    // Walk the ladder: supervised attempts at each rung, quarantine one
    // rung down on exhaustion. Passthrough cannot fail, so this always
    // produces a repaired (or at worst raw) stack.
    //
    // `input` stays pristine for the per-request diff; each attempt runs
    // on `work`, a *single* pooled buffer refreshed from `input` before
    // the pass — the old `combined.clone()` + per-attempt `input.clone()`
    // chain collapsed to one copy, re-done only when a retry fires.
    let supervision = config.supervision;
    let mut policy = supervision.policy;
    policy.max_retries = supervision.attempts_per_level().saturating_sub(1);
    let mut log = RecoveryLog::new();
    let mut level = ladder.entry_level();
    let mut attempts_total: u32 = 0;
    let work_slot: std::cell::RefCell<Option<ImageStack<T>>> = std::cell::RefCell::new(None);
    let refreshed_work = || {
        let mut work = work_slot
            .borrow_mut()
            .take()
            .unwrap_or_else(|| pooled_stack::<T>(pool, key.width, key.height, total_frames));
        for i in 0..total_frames {
            work.frame_mut(i).copy_from_slice(input.frame(i));
        }
        work
    };
    let (repaired, rung) = loop {
        let Some(stage) = ladder.stage(level) else {
            respond_error_metas(&metas, "degradation ladder has no stage");
            return;
        };
        let attempt_counter = std::cell::Cell::new(0u32);
        let outcome = supervise(&policy, "serve-batch", unit, &mut log, |_attempt| {
            attempt_counter.set(attempt_counter.get() + 1);
            let mut work = refreshed_work();
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                Preprocessor::new(&stage)
                    .threads(config.threads)
                    .kernel(config.kernel)
                    .observer(stats.obs())
                    .run(&mut work)
            }));
            match result {
                Err(_) => {
                    *work_slot.borrow_mut() = Some(work);
                    StageOutcome::Failed(FailureKind::Crash)
                }
                Ok(changed) => {
                    // The pass cannot be preempted mid-flight, so the
                    // deadline is enforced after the fact: an overlong
                    // attempt still counts as a timeout and is retried
                    // (possibly one rung down, where passes are cheaper).
                    if started.elapsed() > policy.stage_timeout {
                        *work_slot.borrow_mut() = Some(work);
                        StageOutcome::Failed(FailureKind::Timeout)
                    } else {
                        StageOutcome::Done((work, changed))
                    }
                }
            }
        });
        attempts_total += attempt_counter.get();
        match outcome {
            Ok((work, _changed)) => break (work, level),
            Err(_) if supervision.degrade => match level.next() {
                Some(next) => {
                    stats.degradation_transition(next);
                    level = next;
                }
                None => {
                    // Passthrough exhausted its budget — only possible with
                    // a pathological stage_timeout. Serve the raw input.
                    break (refreshed_work(), FtLevel::Passthrough);
                }
            },
            Err(e) => {
                respond_error_metas(&metas, &format!("batch failed without degradation: {e}"));
                return;
            }
        }
    };
    if let Some(spare) = work_slot.into_inner() {
        recycle(pool, spare);
    }
    if rung != FtLevel::AlgoNgst {
        stats.degraded_batches.inc();
    }
    stats
        .retries
        .add(u64::from(attempts_total.saturating_sub(1)));
    let service_us = elapsed_us(dispatched_at);

    // Slice the repaired stack back into per-request responses with their
    // telemetry trailers. A single-request batch moves `repaired` straight
    // into its response; multi-request batches copy each range into a
    // pooled out stack.
    let frame_len = key.width * key.height;
    let single = metas.len() == 1;
    let respond = |meta: JobMeta, payload: ImageStack<T>, changed_here: u64, bits_here: u64| {
        let samples = (meta.frames * frame_len) as u64;
        let agreement = (1000 * (samples - changed_here))
            .checked_div(samples)
            .unwrap_or(1000) as u32;
        let queue_wait_us = elapsed_us_between(meta.admitted_at, dispatched_at);
        // The wait spans threads (admission on the reader, dispatch here),
        // so it is observed directly rather than via an RAII timer.
        stats.stage_queue.observe_us(queue_wait_us);
        stats.samples_repaired.add(changed_here);
        stats.bits_repaired.add(bits_here);
        let stats_trailer = RequestStats {
            samples_changed: changed_here,
            bits_flipped: bits_here,
            voter_agreement_permille: agreement,
            queue_wait_us,
            service_us,
            batch_frames: total_frames as u32,
            batch_requests,
            rung,
            attempts: attempts_total.max(1),
            // Network-scope fields: stamped by the client (busy retries)
            // and the fleet router (failovers, serving backend), never by
            // the daemon itself.
            net_retries: 0,
            served_by: 0,
            tuned_lambda: decision.map_or(0, |d| d.lambda.value() as u8),
            tuned_upsilon: decision.map_or(0, |d| d.upsilon.value() as u8),
            tuned_window_a: decision.map_or(0, |d| d.window_a_bits as u8),
            tuned_window_c: decision.map_or(0, |d| d.window_c_bits as u8),
            tuner_recalibrations: decision
                .map_or(0, |d| u32::try_from(d.recalibrations).unwrap_or(u32::MAX)),
        };
        let response = Message::Response(SubmitResponse {
            request_id: meta.request_id,
            stats: stats_trailer,
            payload: T::wrap(payload),
        });
        // A vanished client is not an engine error; its permit releases
        // when the meta drops either way. `completed` counts responses
        // handed to the loop for writing; the loop drops those whose
        // connection disappeared while the batch was in flight.
        if meta.reply.send(response) {
            stats.completed.inc();
        }
    };
    let diff_range = |start: usize, frames: usize| {
        let mut changed: u64 = 0;
        let mut bits: u64 = 0;
        for i in 0..frames {
            let rep = repaired.frame(start + i);
            let orig = input.frame(start + i);
            for p in 0..frame_len {
                if rep[p] != orig[p] {
                    changed += 1;
                    bits += u64::from(rep[p].xor(orig[p]).count_ones());
                }
            }
        }
        (changed, bits)
    };
    if single {
        let meta = metas.pop().expect("one meta");
        let (changed, bits) = diff_range(0, total_frames);
        recycle(pool, input);
        respond(meta, repaired, changed, bits);
    } else {
        for meta in metas {
            let mut out: ImageStack<T> = pooled_stack(pool, key.width, key.height, meta.frames);
            let (changed, bits) = diff_range(meta.start, meta.frames);
            for i in 0..meta.frames {
                out.frame_mut(i)
                    .copy_from_slice(repaired.frame(meta.start + i));
            }
            respond(meta, out, changed, bits);
        }
        recycle(pool, input);
        recycle(pool, repaired);
    }
    drop(engine_timer);
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn elapsed_us_between(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_micros()).unwrap_or(u64::MAX)
}

fn respond_error(batch: &BatchJob, why: &str) {
    for job in &batch.jobs {
        job.reply.send(Message::Error(ErrorReply {
            request_id: job.request.request_id,
            code: ErrorCode::Internal,
            message: why.to_owned(),
        }));
    }
}

/// [`respond_error`] for batches whose jobs were already decomposed into
/// [`JobMeta`]s.
fn respond_error_metas(metas: &[JobMeta], why: &str) {
    for meta in metas {
        meta.reply.send(Message::Error(ErrorReply {
            request_id: meta.request_id,
            code: ErrorCode::Internal,
            message: why.to_owned(),
        }));
    }
}
