//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Every wire frame carries a CRC over its payload and every image frame
//! inside a submission carries its own CRC, so a corrupted transfer is
//! detected at the protocol layer before any pixel reaches the engine —
//! the serving-path analogue of the FITS checksum cards in `preflight-fits`.
//!
//! The implementation is slicing-by-8: eight compile-time lookup tables
//! let the hot loop fold eight payload bytes per iteration instead of one,
//! which matters because a served response crosses this function four
//! times (frame CRC + payload CRC on each side of the wire). The values
//! are bit-identical to the classic one-table form — only the table walk
//! changes. [`Crc32`] is the streaming variant for the event loop's
//! chunked ingest path, where payload bytes arrive straight off the socket
//! and are never re-assembled into one contiguous buffer.

/// Eight byte-indexed lookup tables, built at compile time. `TABLES[0]` is
/// the classic CRC-32 table; `TABLES[k]` advances a byte `k` positions
/// deeper into the message.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Folds `data` into a raw (pre-inverted) CRC state.
fn update(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 of `data` (the common `crc32("123456789") == 0xCBF43926` variant).
pub fn crc32(data: &[u8]) -> u32 {
    !update(0xFFFF_FFFF, data)
}

/// A streaming CRC-32: feed bytes in any chunking, [`Crc32::finish`] yields
/// exactly what [`crc32`] returns over the concatenation.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (equivalent to `crc32(b"")` when finished untouched).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds another chunk into the running CRC.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// The CRC of everything fed so far. Non-destructive: more updates may
    /// follow and a later `finish` covers them too.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The check value from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(&[0x00, 0x01, 0x02, 0x03]);
        let b = crc32(&[0x00, 0x01, 0x02, 0x07]);
        assert_ne!(a, b);
    }

    #[test]
    fn sliced_matches_bytewise_reference() {
        // The one-table form the protocol shipped with originally; the
        // slicing-by-8 walk must be bit-identical at every length and
        // alignment, including tails shorter than the 8-byte stride.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        let mut data = Vec::new();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..64 {
            data.clear();
            for _ in 0..(len * 7 + 3) {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                data.push((state >> 56) as u8);
            }
            assert_eq!(crc32(&data), reference(&data), "length {}", data.len());
        }
    }

    #[test]
    fn streaming_matches_oneshot_across_chunkings() {
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(31) >> 2) as u8)
            .collect();
        let want = crc32(&data);
        for chunk in [1, 3, 7, 8, 13, 64, 999, 1000] {
            let mut h = Crc32::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finish(), want, "chunk size {chunk}");
        }
        // finish() is non-destructive.
        let mut h = Crc32::new();
        h.update(&data[..500]);
        let _ = h.finish();
        h.update(&data[500..]);
        assert_eq!(h.finish(), want);
    }
}
