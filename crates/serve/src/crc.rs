//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Every wire frame carries a CRC over its payload and every image frame
//! inside a submission carries its own CRC, so a corrupted transfer is
//! detected at the protocol layer before any pixel reaches the engine —
//! the serving-path analogue of the FITS checksum cards in `preflight-fits`.

/// The byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (the common `crc32("123456789") == 0xCBF43926` variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The check value from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(&[0x00, 0x01, 0x02, 0x03]);
        let b = crc32(&[0x00, 0x01, 0x02, 0x07]);
        assert_ne!(a, b);
    }
}
