//! Bounded admission with explicit backpressure.
//!
//! The daemon never buffers without bound: every submission must win an
//! [`AdmissionPermit`] before it is parsed past the envelope, and the permit
//! lives for the request's whole stay — waiting in the batcher, riding
//! through the engine, and until its response is handed to the connection
//! writer. When all `capacity` permits are out, the next submission is
//! rejected with `Busy` immediately; nothing queues behind the queue.
//!
//! Permits release on drop, so an error on any path (client gone, engine
//! panic absorbed by the ladder, batch aborted by drain) can never leak
//! capacity.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct GateInner {
    capacity: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

/// The shared admission gate: a counting semaphore with rejection (not
/// blocking) semantics on exhaustion.
#[derive(Clone)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

impl AdmissionGate {
    /// Creates a gate admitting at most `capacity` requests at once.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a server that can never admit work is
    /// a configuration bug, not a runtime state).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be at least 1");
        AdmissionGate {
            inner: Arc::new(GateInner {
                capacity,
                in_flight: Mutex::new(0),
                freed: Condvar::new(),
            }),
        }
    }

    /// Tries to admit one request. `None` means the queue is full — the
    /// caller must reject with `Busy`, never wait.
    pub fn try_acquire(&self) -> Option<AdmissionPermit> {
        let mut n = self
            .inner
            .in_flight
            .lock()
            .expect("admission gate poisoned");
        if *n >= self.inner.capacity {
            return None;
        }
        *n += 1;
        Some(AdmissionPermit {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        *self
            .inner
            .in_flight
            .lock()
            .expect("admission gate poisoned")
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Blocks until every permit has been returned, or until `timeout`
    /// elapses. Returns `true` if the gate is idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self
            .inner
            .in_flight
            .lock()
            .expect("admission gate poisoned");
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .freed
                .wait_timeout(n, deadline - now)
                .expect("admission gate poisoned");
            n = guard;
        }
        true
    }
}

/// One admitted request's hold on the bounded queue; releases on drop.
pub struct AdmissionPermit {
    inner: Arc<GateInner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut n = self
            .inner
            .in_flight
            .lock()
            .expect("admission gate poisoned");
        *n = n.saturating_sub(1);
        self.inner.freed.notify_all();
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(3);
        let p1 = gate.try_acquire().expect("1st");
        let p2 = gate.try_acquire().expect("2nd");
        let p3 = gate.try_acquire().expect("3rd");
        assert!(gate.try_acquire().is_none(), "4th must be rejected");
        assert_eq!(gate.in_flight(), 3);
        drop(p2);
        assert_eq!(gate.in_flight(), 2);
        let p4 = gate.try_acquire().expect("slot freed");
        drop((p1, p3, p4));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_a_bug() {
        let _ = AdmissionGate::new(0);
    }

    #[test]
    fn wait_idle_observes_releases_across_threads() {
        let gate = AdmissionGate::new(2);
        let permit = gate.try_acquire().unwrap();
        assert!(!gate.wait_idle(Duration::from_millis(20)), "still held");
        let g2 = gate.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            drop(permit);
            let _ = g2;
        });
        assert!(gate.wait_idle(Duration::from_secs(5)), "released");
        t.join().unwrap();
    }

    #[test]
    fn permit_drop_on_panic_path_releases() {
        let gate = AdmissionGate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.try_acquire().unwrap();
            panic!("worker died");
        }));
        assert!(result.is_err());
        assert_eq!(gate.in_flight(), 0, "permit must not leak on unwind");
    }
}
