//! The length-prefixed binary wire protocol spoken by `preflightd`.
//!
//! Every message travels in one envelope:
//!
//! ```text
//! +-------+---------+------+----------------+-----------+--------------+
//! | magic | version | type | payload length | payload   | payload CRC  |
//! | PFLT  |   u8    |  u8  |     u32 LE     | ...       |    u32 LE    |
//! +-------+---------+------+----------------+-----------+--------------+
//! ```
//!
//! Submissions and responses additionally protect each image frame with its
//! own CRC-32, so a flipped bit is localised to the frame it hit. All
//! integers are little-endian; pixel data is raw LE words, frame-major (the
//! same layout [`ImageStack`] uses in memory).
//!
//! The decoder is strict: a bad magic, unknown version or message type,
//! oversized length, truncated payload or CRC mismatch all fail with a
//! typed [`WireError`] and never panic, whatever bytes arrive.

use crate::crc::crc32;
use crate::telemetry::{ft_level_code, ft_level_from_code, RequestStats};
use preflight_core::ImageStack;
use preflight_obs::{CounterSnap, GaugeSnap, HistSnap, Snapshot};
use std::fmt;
use std::io::{Read, Write};

/// The four magic bytes opening every envelope.
pub const MAGIC: [u8; 4] = *b"PFLT";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Hard ceiling on a payload, so a corrupted length field cannot make the
/// decoder allocate unbounded memory (256 MiB ≈ a 4096×4096×8 u32 stack).
pub const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Pixel type of a submitted stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 16-bit unsigned pixels (the NGST detector word).
    U16,
    /// 32-bit unsigned pixels.
    U32,
}

impl Dtype {
    /// Wire code for the dtype.
    pub fn code(self) -> u8 {
        match self {
            Dtype::U16 => 0,
            Dtype::U32 => 1,
        }
    }

    /// Bytes per pixel.
    pub fn bytes(self) -> usize {
        match self {
            Dtype::U16 => 2,
            Dtype::U32 => 4,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(Dtype::U16),
            1 => Ok(Dtype::U32),
            other => Err(WireError::Malformed(format!("unknown dtype code {other}"))),
        }
    }
}

/// Decoding/transport failures.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The envelope did not start with `PFLT`.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    BadVersion(u8),
    /// Unknown message-type byte.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload ended before a field was complete.
    Truncated(&'static str),
    /// A CRC did not match the received bytes.
    CrcMismatch {
        /// What the CRC protected (`"payload"` or `"frame"`).
        scope: &'static str,
        /// CRC carried on the wire.
        expected: u32,
        /// CRC of the bytes actually received.
        actual: u32,
    },
    /// A structurally invalid field (bad dtype, zero dimension, ...).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02X?} (expected \"PFLT\")"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD} byte cap")
            }
            WireError::Truncated(what) => write!(f, "payload truncated while reading {what}"),
            WireError::CrcMismatch {
                scope,
                expected,
                actual,
            } => write!(
                f,
                "{scope} CRC mismatch: wire says {expected:#010X}, data hashes to {actual:#010X}"
            ),
            WireError::Malformed(why) => write!(f, "malformed message: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A stack of image frames plus its pixel type — the payload of both
/// submissions and responses.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// 16-bit pixels.
    U16(ImageStack<u16>),
    /// 32-bit pixels.
    U32(ImageStack<u32>),
}

impl FramePayload {
    /// The pixel type tag.
    pub fn dtype(&self) -> Dtype {
        match self {
            FramePayload::U16(_) => Dtype::U16,
            FramePayload::U32(_) => Dtype::U32,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        match self {
            FramePayload::U16(s) => s.width(),
            FramePayload::U32(s) => s.width(),
        }
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        match self {
            FramePayload::U16(s) => s.height(),
            FramePayload::U32(s) => s.height(),
        }
    }

    /// Temporal depth in frames.
    pub fn frames(&self) -> usize {
        match self {
            FramePayload::U16(s) => s.frames(),
            FramePayload::U32(s) => s.frames(),
        }
    }

    /// Total samples in the stack.
    pub fn samples(&self) -> usize {
        self.width() * self.height() * self.frames()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        fn frames_into<T: crate::bytes::WireWord>(s: &ImageStack<T>, out: &mut Vec<u8>) {
            // Frame pixels go out as one bulk little-endian copy per frame
            // (a zero-copy view on LE hosts) instead of a per-sample loop.
            let mut scratch = Vec::new();
            for i in 0..s.frames() {
                let bytes = crate::bytes::le_bytes(s.frame(i), &mut scratch);
                let crc = crc32(bytes);
                out.extend_from_slice(bytes);
                put_u32(out, crc);
            }
        }
        out.push(self.dtype().code());
        put_u32(out, self.width() as u32);
        put_u32(out, self.height() as u32);
        put_u32(out, self.frames() as u32);
        match self {
            FramePayload::U16(s) => frames_into(s, out),
            FramePayload::U32(s) => frames_into(s, out),
        }
    }

    fn decode_from(r: &mut SliceReader<'_>) -> Result<Self, WireError> {
        let dtype = Dtype::from_code(r.u8("dtype")?)?;
        let width = r.u32("width")? as usize;
        let height = r.u32("height")? as usize;
        let frames = r.u32("frames")? as usize;
        if width == 0 || height == 0 || frames == 0 {
            return Err(WireError::Malformed(format!(
                "zero dimension in {width}x{height}x{frames} stack"
            )));
        }
        let frame_len = width
            .checked_mul(height)
            .ok_or_else(|| WireError::Malformed("frame area overflows".to_owned()))?;
        let frame_bytes = frame_len
            .checked_mul(dtype.bytes())
            .ok_or_else(|| WireError::Malformed("frame size overflows".to_owned()))?;
        // The declared geometry is untrusted: before allocating anything
        // sized by it, require that the payload actually carries that many
        // bytes (frame_bytes of pixels + a 4-byte CRC per frame).
        let declared = frame_bytes
            .checked_add(4)
            .and_then(|per_frame| per_frame.checked_mul(frames))
            .ok_or_else(|| WireError::Malformed("stack size overflows".to_owned()))?;
        if declared > r.remaining() {
            return Err(WireError::Truncated("frame data"));
        }
        let samples = frame_len
            .checked_mul(frames)
            .ok_or_else(|| WireError::Malformed("stack size overflows".to_owned()))?;
        fn frames_from<T: crate::bytes::WireWord>(
            r: &mut SliceReader<'_>,
            width: usize,
            height: usize,
            frames: usize,
            frame_bytes: usize,
            samples: usize,
        ) -> Result<ImageStack<T>, WireError> {
            let mut data = Vec::with_capacity(samples);
            for _ in 0..frames {
                let raw = r.bytes(frame_bytes, "frame data")?;
                let expected = r.u32("frame CRC")?;
                let actual = crc32(raw);
                if expected != actual {
                    return Err(WireError::CrcMismatch {
                        scope: "frame",
                        expected,
                        actual,
                    });
                }
                crate::bytes::extend_from_le(&mut data, raw);
            }
            ImageStack::from_vec(width, height, frames, data)
                .map_err(|e| WireError::Malformed(e.to_string()))
        }
        match dtype {
            Dtype::U16 => Ok(FramePayload::U16(frames_from(
                r,
                width,
                height,
                frames,
                frame_bytes,
                samples,
            )?)),
            Dtype::U32 => Ok(FramePayload::U32(frames_from(
                r,
                width,
                height,
                frames,
                frame_bytes,
                samples,
            )?)),
        }
    }
}

/// A preprocessing request: frames for one logical stream plus the
/// algorithm parameters to repair them with.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen id echoed on the response.
    pub request_id: u64,
    /// Logical stream the frames belong to; the batcher only coalesces
    /// frames of the same stream (and identical geometry/parameters).
    pub stream_id: u64,
    /// Sensitivity Λ percentage (0..=100).
    pub lambda: u8,
    /// Voter count Υ (even, 2..=16).
    pub upsilon: u8,
    /// End-of-stream: flush the batch immediately after this submission,
    /// whatever its depth.
    pub eos: bool,
    /// The frames themselves.
    pub payload: FramePayload,
}

/// A served response: the repaired frames plus the per-request telemetry
/// trailer.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitResponse {
    /// Echo of the request id.
    pub request_id: u64,
    /// Telemetry for this request's trip through the daemon.
    pub stats: RequestStats,
    /// The repaired frames (same geometry and dtype as submitted).
    pub payload: FramePayload,
}

/// Explicit backpressure: the bounded queue is full, try again later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyReply {
    /// Echo of the request id (0 when the request could not be parsed far
    /// enough to know).
    pub request_id: u64,
    /// The configured admission capacity.
    pub capacity: u32,
    /// Requests in flight when this one was rejected.
    pub in_flight: u32,
}

/// A request-level failure (malformed submission, draining server, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echo of the request id (0 if unknown).
    pub request_id: u64,
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Machine-readable error classes carried by [`ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The submission failed wire-level validation.
    Malformed,
    /// The server is draining and admits no new work.
    Draining,
    /// The engine failed internally (should not happen; the degradation
    /// ladder ends in passthrough).
    Internal,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Draining => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Draining),
            3 => Ok(ErrorCode::Internal),
            other => Err(WireError::Malformed(format!("unknown error code {other}"))),
        }
    }
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainSummary {
    /// Requests fully served over the server's lifetime.
    pub completed: u64,
    /// Requests rejected with `Busy` over the server's lifetime.
    pub rejected: u64,
}

/// Every message the protocol can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: frames to preprocess.
    Submit(SubmitRequest),
    /// Server → client: repaired frames + telemetry.
    Response(SubmitResponse),
    /// Server → client: bounded queue full.
    Busy(BusyReply),
    /// Server → client: request-level failure.
    Error(ErrorReply),
    /// Client → server: stop accepting, flush everything, then ack.
    Drain,
    /// Server → client: drain complete.
    DrainAck(DrainSummary),
    /// Client → server: liveness probe with an opaque token.
    Ping(u64),
    /// Server → client: echo of the token.
    Pong(u64),
    /// Client → server: ask for the daemon's metrics registry.
    StatsRequest,
    /// Server → client: a point-in-time copy of every registered metric
    /// series — the same snapshot `/metrics` renders.
    StatsReply(Snapshot),
}

impl Message {
    fn type_code(&self) -> u8 {
        match self {
            Message::Submit(_) => 1,
            Message::Response(_) => 2,
            Message::Busy(_) => 3,
            Message::Error(_) => 4,
            Message::Drain => 5,
            Message::DrainAck(_) => 6,
            Message::Ping(_) => 7,
            Message::Pong(_) => 8,
            Message::StatsRequest => 9,
            Message::StatsReply(_) => 10,
        }
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked reader over a received payload.
struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SliceReader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn put_label(out: &mut Vec<u8>, label: &Option<(String, String)>) {
    match label {
        None => out.push(0),
        Some((k, v)) => {
            out.push(1);
            put_str(out, k);
            put_str(out, v);
        }
    }
}

fn read_str(r: &mut SliceReader<'_>, what: &'static str) -> Result<String, WireError> {
    let len = {
        let b = r.bytes(2, what)?;
        u16::from_le_bytes([b[0], b[1]]) as usize
    };
    let raw = r.bytes(len, what)?;
    Ok(String::from_utf8_lossy(raw).into_owned())
}

fn read_label(r: &mut SliceReader<'_>) -> Result<Option<(String, String)>, WireError> {
    match r.u8("label flag")? {
        0 => Ok(None),
        1 => Ok(Some((
            read_str(r, "label key")?,
            read_str(r, "label value")?,
        ))),
        other => Err(WireError::Malformed(format!("unknown label flag {other}"))),
    }
}

fn encode_snapshot(snap: &Snapshot, out: &mut Vec<u8>) {
    put_u32(out, snap.counters.len() as u32);
    for c in &snap.counters {
        put_str(out, &c.name);
        put_label(out, &c.label);
        put_u64(out, c.value);
    }
    put_u32(out, snap.gauges.len() as u32);
    for g in &snap.gauges {
        put_str(out, &g.name);
        put_label(out, &g.label);
        put_u64(out, g.value as u64);
    }
    put_u32(out, snap.histograms.len() as u32);
    for h in &snap.histograms {
        put_str(out, &h.name);
        put_label(out, &h.label);
        put_u64(out, h.count);
        put_u64(out, h.sum_us);
        put_u32(out, h.buckets.len() as u32);
        for &(le, c) in &h.buckets {
            put_u64(out, le);
            put_u64(out, c);
        }
    }
}

fn decode_snapshot(r: &mut SliceReader<'_>) -> Result<Snapshot, WireError> {
    // Counts are untrusted: never pre-allocate from them, let the reader's
    // bounds checks fail fast on a lying length.
    let mut snap = Snapshot::default();
    for _ in 0..r.u32("counter count")? {
        snap.counters.push(CounterSnap {
            name: read_str(r, "counter name")?,
            label: read_label(r)?,
            value: r.u64("counter value")?,
        });
    }
    for _ in 0..r.u32("gauge count")? {
        snap.gauges.push(GaugeSnap {
            name: read_str(r, "gauge name")?,
            label: read_label(r)?,
            value: r.u64("gauge value")? as i64,
        });
    }
    for _ in 0..r.u32("histogram count")? {
        let name = read_str(r, "histogram name")?;
        let label = read_label(r)?;
        let count = r.u64("histogram count")?;
        let sum_us = r.u64("histogram sum")?;
        let mut buckets = Vec::new();
        for _ in 0..r.u32("bucket count")? {
            buckets.push((r.u64("bucket bound")?, r.u64("bucket value")?));
        }
        snap.histograms.push(HistSnap {
            name,
            label,
            count,
            sum_us,
            buckets,
        });
    }
    Ok(snap)
}

pub(crate) fn encode_stats(stats: &RequestStats, out: &mut Vec<u8>) {
    put_u64(out, stats.samples_changed);
    put_u64(out, stats.bits_flipped);
    put_u32(out, stats.voter_agreement_permille);
    put_u64(out, stats.queue_wait_us);
    put_u64(out, stats.service_us);
    put_u32(out, stats.batch_frames);
    put_u32(out, stats.batch_requests);
    out.push(ft_level_code(stats.rung));
    put_u32(out, stats.attempts);
    put_u32(out, stats.net_retries);
    put_u32(out, stats.served_by);
    out.push(stats.tuned_lambda);
    out.push(stats.tuned_upsilon);
    out.push(stats.tuned_window_a);
    out.push(stats.tuned_window_c);
    put_u32(out, stats.tuner_recalibrations);
}

fn decode_stats(r: &mut SliceReader<'_>) -> Result<RequestStats, WireError> {
    Ok(RequestStats {
        samples_changed: r.u64("samples changed")?,
        bits_flipped: r.u64("bits flipped")?,
        voter_agreement_permille: r.u32("voter agreement")?,
        queue_wait_us: r.u64("queue wait")?,
        service_us: r.u64("service time")?,
        batch_frames: r.u32("batch frames")?,
        batch_requests: r.u32("batch requests")?,
        rung: {
            let code = r.u8("ladder rung")?;
            ft_level_from_code(code)
                .ok_or_else(|| WireError::Malformed(format!("unknown ladder rung {code}")))?
        },
        attempts: r.u32("attempts")?,
        net_retries: r.u32("net retries")?,
        served_by: r.u32("served by")?,
        tuned_lambda: r.u8("tuned lambda")?,
        tuned_upsilon: r.u8("tuned upsilon")?,
        tuned_window_a: r.u8("tuned window a")?,
        tuned_window_c: r.u8("tuned window c")?,
        tuner_recalibrations: r.u32("tuner recalibrations")?,
    })
}

fn encode_payload_into(msg: &Message, p: &mut Vec<u8>) {
    match msg {
        Message::Submit(s) => {
            put_u64(p, s.request_id);
            put_u64(p, s.stream_id);
            p.push(s.lambda);
            p.push(s.upsilon);
            p.push(u8::from(s.eos));
            s.payload.encode_into(p);
        }
        Message::Response(r) => {
            put_u64(p, r.request_id);
            encode_stats(&r.stats, p);
            r.payload.encode_into(p);
        }
        Message::Busy(b) => {
            put_u64(p, b.request_id);
            put_u32(p, b.capacity);
            put_u32(p, b.in_flight);
        }
        Message::Error(e) => {
            put_u64(p, e.request_id);
            p.push(e.code.code());
            let bytes = e.message.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            p.extend_from_slice(&(len as u16).to_le_bytes());
            p.extend_from_slice(&bytes[..len]);
        }
        Message::Drain => {}
        Message::DrainAck(d) => {
            put_u64(p, d.completed);
            put_u64(p, d.rejected);
        }
        Message::Ping(token) | Message::Pong(token) => put_u64(p, *token),
        Message::StatsRequest => {}
        Message::StatsReply(snap) => encode_snapshot(snap, p),
    }
}

fn decode_payload(type_code: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = SliceReader::new(payload);
    let msg = match type_code {
        1 => {
            let request_id = r.u64("request id")?;
            let stream_id = r.u64("stream id")?;
            let lambda = r.u8("lambda")?;
            let upsilon = r.u8("upsilon")?;
            let flags = r.u8("flags")?;
            if lambda > 100 {
                return Err(WireError::Malformed(format!(
                    "lambda {lambda} out of 0..=100"
                )));
            }
            if upsilon < 2 || upsilon % 2 != 0 || upsilon > 16 {
                return Err(WireError::Malformed(format!(
                    "upsilon {upsilon} must be even and in 2..=16"
                )));
            }
            let payload = FramePayload::decode_from(&mut r)?;
            Message::Submit(SubmitRequest {
                request_id,
                stream_id,
                lambda,
                upsilon,
                eos: flags & 1 != 0,
                payload,
            })
        }
        2 => {
            let request_id = r.u64("request id")?;
            let stats = decode_stats(&mut r)?;
            let payload = FramePayload::decode_from(&mut r)?;
            Message::Response(SubmitResponse {
                request_id,
                stats,
                payload,
            })
        }
        3 => Message::Busy(BusyReply {
            request_id: r.u64("request id")?,
            capacity: r.u32("capacity")?,
            in_flight: r.u32("in-flight count")?,
        }),
        4 => {
            let request_id = r.u64("request id")?;
            let code = ErrorCode::from_code(r.u8("error code")?)?;
            let len = {
                let b = r.bytes(2, "message length")?;
                u16::from_le_bytes([b[0], b[1]]) as usize
            };
            let raw = r.bytes(len, "message text")?;
            let message = String::from_utf8_lossy(raw).into_owned();
            Message::Error(ErrorReply {
                request_id,
                code,
                message,
            })
        }
        5 => Message::Drain,
        6 => Message::DrainAck(DrainSummary {
            completed: r.u64("completed count")?,
            rejected: r.u64("rejected count")?,
        }),
        7 => Message::Ping(r.u64("token")?),
        8 => Message::Pong(r.u64("token")?),
        9 => Message::StatsRequest,
        10 => Message::StatsReply(decode_snapshot(&mut r)?),
        other => return Err(WireError::UnknownType(other)),
    };
    if !r.finished() {
        return Err(WireError::Malformed(format!(
            "{} trailing byte(s) after message body",
            payload.len() - r.pos
        )));
    }
    Ok(msg)
}

/// Serialises `msg` into one complete envelope.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_message_into(msg, &mut out);
    out
}

/// Serialises `msg` into one complete envelope appended to `out`, reusing
/// the buffer's capacity: the payload is encoded in place after the head
/// (no intermediate payload `Vec`), then the length field is patched and
/// the payload CRC appended. The event loop's reply path leans on this to
/// keep control replies allocation-free in steady state.
pub fn encode_message_into(msg: &Message, out: &mut Vec<u8>) {
    let head_at = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg.type_code());
    put_u32(out, 0); // length, patched below
    let payload_at = out.len();
    encode_payload_into(msg, out);
    let payload_len = out.len() - payload_at;
    out[head_at + 6..head_at + HEAD_LEN].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let crc = crc32(&out[payload_at..]);
    put_u32(out, crc);
}

/// Writes one envelope to `w` and flushes it.
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    w.write_all(&encode_message(msg))?;
    w.flush()
}

/// The fixed envelope head: magic + version + type + payload length.
pub const HEAD_LEN: usize = 10;

/// Validates an envelope head, returning the message type code and the
/// declared payload length.
pub fn parse_head(head: &[u8; HEAD_LEN]) -> Result<(u8, u32), WireError> {
    let magic = [head[0], head[1], head[2], head[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if head[4] != VERSION {
        return Err(WireError::BadVersion(head[4]));
    }
    let len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok((head[5], len))
}

/// Validates a received payload against its wire CRC and decodes the body.
pub fn parse_body(type_code: u8, payload: &[u8], wire_crc: u32) -> Result<Message, WireError> {
    let actual = crc32(payload);
    if wire_crc != actual {
        return Err(WireError::CrcMismatch {
            scope: "payload",
            expected: wire_crc,
            actual,
        });
    }
    decode_payload(type_code, payload)
}

/// Reads exactly one envelope from `r`, validating magic, version, length
/// bound and both CRC layers.
pub fn read_message(r: &mut impl Read) -> Result<Message, WireError> {
    let mut head = [0u8; HEAD_LEN];
    r.read_exact(&mut head)?;
    let (type_code, len) = parse_head(&head)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    parse_body(type_code, &payload, u32::from_le_bytes(crc_bytes))
}

/// Decodes one envelope from a byte slice (test helper mirroring
/// [`read_message`]), returning the message and the bytes consumed.
pub fn decode_message(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let mut cursor = buf;
    let before = cursor.len();
    let msg = read_message(&mut cursor)?;
    Ok((msg, before - cursor.len()))
}
