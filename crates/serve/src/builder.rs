//! Fluent builders for the daemon and its client — the serve-side mirror
//! of the `core::Preprocessor` idiom.
//!
//! PR 3 grew the server a positional [`ServerConfig`] and the client a
//! pair of ad-hoc constructors; every new knob (auto-tuning, kernels,
//! metrics listeners, retry policies) made call sites heavier. These
//! builders are now the front door:
//!
//! ```no_run
//! use preflight_serve::{ClientBuilder, ServerBuilder};
//!
//! let server = ServerBuilder::new()
//!     .bind("127.0.0.1:0")
//!     .max_conns(10_240)
//!     .queue_depth(64)
//!     .auto_tune(true)
//!     .serve()?;
//!
//! let mut client = ClientBuilder::new()
//!     .tcp(server.tcp_addr().unwrap())
//!     .io_timeout(std::time::Duration::from_secs(30))
//!     .stream(7)
//!     .connect()?;
//! let token = client.ping(1)?;
//! # assert_eq!(token, 1);
//! # server.drain();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The old entry points ([`crate::server::start`],
//! [`Client::connect_tcp`], [`Client::connect_unix`]) remain as
//! `#[deprecated]` shims over the same internals.

use crate::batcher::BatchConfig;
use crate::client::{Client, ClientError};
use crate::engine::EngineConfig;
use crate::server::{ServerConfig, ServerHandle};
use preflight_core::Kernel;
use preflight_obs::Obs;
use preflight_supervisor::RetryPolicy;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::Duration;

/// Configures and starts a `preflightd` daemon.
///
/// Defaults mirror [`ServerConfig::default`]: queue depth 64, connection
/// cap 10 240, adaptive batching, two engine workers, live observability.
#[derive(Debug, Clone, Default)]
#[must_use = "a ServerBuilder does nothing until .serve() is called"]
pub struct ServerBuilder {
    config: ServerConfig,
}

impl ServerBuilder {
    /// A builder with the default configuration and no sockets yet; add at
    /// least one of [`bind`](Self::bind) / [`unix`](Self::unix).
    pub fn new() -> Self {
        ServerBuilder::default()
    }

    /// Listens on a TCP address (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.config.tcp = Some(addr.into());
        self
    }

    /// Listens on a Unix socket path (Unix only).
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.unix = Some(path.into());
        self
    }

    /// Bounded-queue capacity: in-flight requests beyond this get `Busy`.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.capacity = depth;
        self
    }

    /// Ceiling on concurrent connections: accepts beyond this are answered
    /// with `Busy` and closed.
    pub fn max_conns(mut self, cap: usize) -> Self {
        self.config.max_connections = cap;
        self
    }

    /// Replaces the batching knobs wholesale.
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.config.batch = batch;
        self
    }

    /// Replaces the engine knobs wholesale (threads, kernel, supervision,
    /// tuners).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// The voter kernel every batch runs with.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.config.engine.kernel = kernel;
        self
    }

    /// Engine threads per batch.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.engine.threads = threads;
        self
    }

    /// Parallel engine workers (batches in flight at once).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.engine_workers = workers;
        self
    }

    /// Event-loop shards (poll threads, each with its own listener and
    /// connections). `0` means auto: `min(4, available cores)`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Enables the per-stream Λ/Υ auto-tuner.
    pub fn auto_tune(mut self, on: bool) -> Self {
        self.config.auto_tune = on;
        self
    }

    /// Serves Prometheus `/metrics` on a second TCP listener.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.metrics_addr = Some(addr.into());
        self
    }

    /// The observability registry every daemon thread records into.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.config.obs = obs;
        self
    }

    /// The [`ServerConfig`] this builder has accumulated, for callers that
    /// want to inspect or store it.
    pub fn into_config(self) -> ServerConfig {
        self.config
    }

    /// Binds the sockets and starts the daemon threads.
    ///
    /// # Errors
    /// Fails if no socket was configured, a bind fails, or the platform
    /// has neither epoll nor kqueue.
    pub fn serve(self) -> std::io::Result<ServerHandle> {
        crate::server::start_config(self.config)
    }
}

impl From<ServerConfig> for ServerBuilder {
    fn from(config: ServerConfig) -> Self {
        ServerBuilder { config }
    }
}

/// Where a [`ClientBuilder`] connects.
#[derive(Debug, Clone)]
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

/// Configures and opens a blocking [`Client`] connection.
#[derive(Debug, Clone, Default)]
#[must_use = "a ClientBuilder does nothing until .connect() is called"]
pub struct ClientBuilder {
    target: Option<Target>,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    stream: u64,
}

impl ClientBuilder {
    /// A builder with no target yet; add [`tcp`](Self::tcp) or
    /// [`unix`](Self::unix).
    pub fn new() -> Self {
        ClientBuilder::default()
    }

    /// Connects over TCP. Any `Display`-able address works (a
    /// `SocketAddr`, `"host:port"`, …); resolution happens at
    /// [`connect`](Self::connect).
    pub fn tcp(mut self, addr: impl ToString) -> Self {
        self.target = Some(Target::Tcp(addr.to_string()));
        self
    }

    /// Connects over a Unix socket (Unix only).
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.target = Some(Target::Unix(path.into()));
        self
    }

    /// Bounds the TCP connection establishment (ignored for Unix sockets,
    /// where connect cannot block meaningfully).
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bounds every read and write on the open connection, so a hung
    /// daemon surfaces as [`ClientError::Io`] instead of blocking forever.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Retry policy [`Client::submit`] applies to `Busy` rejections
    /// (jittered exponential backoff). Without one, `Busy` fails fast.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Default stream id for [`Client::default_options`]; frames batch
    /// only within a stream.
    pub fn stream(mut self, stream_id: u64) -> Self {
        self.stream = stream_id;
        self
    }

    /// Opens the connection.
    ///
    /// # Errors
    /// Fails if no target was configured, resolution fails, the connection
    /// is refused, or a timeout could not be applied.
    pub fn connect(self) -> Result<Client, ClientError> {
        let no_target = || {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "client needs a target: call .tcp(addr) or .unix(path) first",
            ))
        };
        let mut client = match self.target.as_ref().ok_or_else(no_target)? {
            Target::Tcp(addr) => {
                let stream = match self.connect_timeout {
                    Some(timeout) => {
                        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                            ClientError::Io(std::io::Error::new(
                                std::io::ErrorKind::AddrNotAvailable,
                                format!("address resolved to nothing: {addr}"),
                            ))
                        })?;
                        TcpStream::connect_timeout(&resolved, timeout)?
                    }
                    None => TcpStream::connect(addr.as_str())?,
                };
                if let Some(t) = self.io_timeout {
                    stream.set_read_timeout(Some(t))?;
                    stream.set_write_timeout(Some(t))?;
                }
                Client::from_tcp(stream)?
            }
            Target::Unix(path) => {
                #[cfg(unix)]
                {
                    let stream = std::os::unix::net::UnixStream::connect(path)?;
                    if let Some(t) = self.io_timeout {
                        stream.set_read_timeout(Some(t))?;
                        stream.set_write_timeout(Some(t))?;
                    }
                    Client::from_unix(stream)?
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::Unsupported,
                        "Unix sockets are not available on this platform",
                    )));
                }
            }
        };
        client.retry = self.retry;
        client.default_stream = self.stream;
        Ok(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_builder_accumulates_config() {
        let config = ServerBuilder::new()
            .bind("127.0.0.1:0")
            .unix("/tmp/x.sock")
            .queue_depth(7)
            .max_conns(99)
            .workers(3)
            .shards(2)
            .threads(2)
            .auto_tune(true)
            .metrics_addr("127.0.0.1:0")
            .into_config();
        assert_eq!(config.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            config.unix.as_deref(),
            Some(std::path::Path::new("/tmp/x.sock"))
        );
        assert_eq!(config.capacity, 7);
        assert_eq!(config.max_connections, 99);
        assert_eq!(config.engine_workers, 3);
        assert_eq!(config.shards, 2);
        assert_eq!(config.effective_shards(), 2);
        assert_eq!(config.engine.threads, 2);
        assert!(config.auto_tune);
        assert!(config.metrics_addr.is_some());
    }

    #[test]
    fn defaults_are_ten_k_scale() {
        let config = ServerBuilder::new().into_config();
        assert_eq!(config.max_connections, 10_240, "the 10k-scale default");
        assert_eq!(config.capacity, 64);
    }

    #[test]
    fn client_builder_without_target_fails_cleanly() {
        match ClientBuilder::new().connect() {
            Err(ClientError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput);
            }
            Err(other) => panic!("wanted Io(InvalidInput), got {other}"),
            Ok(_) => panic!("connect without a target must fail"),
        }
    }

    #[test]
    fn client_builder_io_timeout_bounds_a_silent_peer() {
        // A listener that accepts but never answers: a ping against it
        // must fail within the IO timeout instead of blocking forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let silent = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

        let started = std::time::Instant::now();
        let mut client = ClientBuilder::new()
            .tcp(addr)
            .connect_timeout(Duration::from_secs(5))
            .io_timeout(Duration::from_millis(100))
            .connect()
            .expect("local connect");
        let result = client.ping(1);
        assert!(result.is_err(), "a silent peer cannot answer a ping");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the IO timeout must bound the read"
        );
        drop(client);
        let _ = silent.join();
    }
}
