//! Byte-level views of pixel buffers for the wire codec.
//!
//! The workspace bans `unsafe` (see CONTRIBUTING.md); [`crate::signal`] and
//! [`crate::poll`] are the first two documented exceptions and this module
//! is the third, for the same reason: the wire format is raw little-endian
//! pixel words, and on a little-endian machine an `&[u16]`/`&[u32]` slice
//! *already is* its wire encoding — but `std` offers no safe way to view it
//! as `&[u8]`. Without the view, every frame crossing the socket pays a
//! per-element `to_le_bytes`/`from_le_bytes` loop; with it, encode/decode
//! collapse to `memcpy` + CRC. The audit surface is deliberately tiny:
//!
//! - the only types admitted are `u16` and `u32` (via the sealed
//!   [`WireWord`] trait): no padding, no niches, every bit pattern valid,
//!   `align_of::<u8>() == 1` so widening a typed slice to bytes is always
//!   aligned;
//! - the byte views never outlive the borrow they were made from, and the
//!   lengths are computed with `size_of::<T>()` on the same slice the
//!   pointer came from;
//! - the fast paths are gated on `target_endian = "little"`; big-endian
//!   targets take the portable per-element fallbacks below, so the wire
//!   bytes are identical everywhere.

#![allow(unsafe_code)]

mod sealed {
    pub trait Sealed {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
}

/// Pixel words the wire protocol carries: plain unsigned integers whose
/// in-memory representation on little-endian hosts equals their wire form.
pub trait WireWord: sealed::Sealed + Copy + Default + 'static {
    /// `size_of::<Self>()` as a const for array scratch.
    const SIZE: usize;
    /// The word's little-endian bytes (portable fallback path; unused on
    /// little-endian hosts, where the views above make it unnecessary).
    #[cfg_attr(target_endian = "little", allow(dead_code))]
    fn to_le(self) -> [u8; 4];
    /// A word from little-endian bytes (only the first `SIZE` are read).
    #[cfg_attr(target_endian = "little", allow(dead_code))]
    fn from_le(b: [u8; 4]) -> Self;
}

impl WireWord for u16 {
    const SIZE: usize = 2;
    fn to_le(self) -> [u8; 4] {
        let b = self.to_le_bytes();
        [b[0], b[1], 0, 0]
    }
    fn from_le(b: [u8; 4]) -> Self {
        u16::from_le_bytes([b[0], b[1]])
    }
}

impl WireWord for u32 {
    const SIZE: usize = 4;
    fn to_le(self) -> [u8; 4] {
        self.to_le_bytes()
    }
    fn from_le(b: [u8; 4]) -> Self {
        u32::from_le_bytes(b)
    }
}

/// The wire (little-endian) bytes of a pixel slice, as a borrowed view.
///
/// Little-endian hosts get the zero-copy reinterpret; big-endian hosts
/// serialise into `scratch` and return a view of that.
pub fn le_bytes<'a, T: WireWord>(pixels: &'a [T], scratch: &'a mut Vec<u8>) -> &'a [u8] {
    #[cfg(target_endian = "little")]
    {
        let _ = scratch;
        // SAFETY: T is u16/u32 (sealed): no padding, alignment of u8 is 1,
        // and the length in bytes is derived from the same slice.
        unsafe {
            std::slice::from_raw_parts(pixels.as_ptr().cast::<u8>(), std::mem::size_of_val(pixels))
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        scratch.clear();
        scratch.reserve(pixels.len() * T::SIZE);
        for &p in pixels {
            scratch.extend_from_slice(&p.to_le()[..T::SIZE]);
        }
        scratch.as_slice()
    }
}

/// The wire bytes of a pixel slice on hosts where memory order equals wire
/// order — the borrow-only twin of [`le_bytes`] for callers that cannot
/// hold a scratch buffer alongside the view (the event loop's vectored
/// reply segments, which re-derive the view at every flush).
#[cfg(target_endian = "little")]
pub fn le_view<T: WireWord>(pixels: &[T]) -> &[u8] {
    // SAFETY: same representation argument as `le_bytes`.
    unsafe {
        std::slice::from_raw_parts(pixels.as_ptr().cast::<u8>(), std::mem::size_of_val(pixels))
    }
}

/// Copies wire bytes `src` into `dst` starting at byte offset `byte_off`
/// (offsets and lengths need not be word-aligned: a pixel split across two
/// socket reads lands byte by byte).
pub fn copy_le_into<T: WireWord>(dst: &mut [T], byte_off: usize, src: &[u8]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: same representation argument as `le_bytes`, mutably; the
        // range is bounds-checked by the safe slice indexing below.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(
                dst.as_mut_ptr().cast::<u8>(),
                std::mem::size_of_val(dst),
            )
        };
        bytes[byte_off..byte_off + src.len()].copy_from_slice(src);
    }
    #[cfg(not(target_endian = "little"))]
    {
        for (i, &b) in src.iter().enumerate() {
            let off = byte_off + i;
            let (word, lane) = (off / T::SIZE, off % T::SIZE);
            let mut le = dst[word].to_le();
            le[lane] = b;
            dst[word] = T::from_le(le);
        }
    }
}

/// A mutable wire-byte window over `dst[byte_off..byte_off + len]`, for
/// reading socket bytes directly into a pooled pixel buffer (the "exactly
/// one payload copy" path). Only available where memory order equals wire
/// order; big-endian callers must take the [`copy_le_into`] route.
#[cfg(target_endian = "little")]
pub fn le_window<T: WireWord>(dst: &mut [T], byte_off: usize, len: usize) -> &mut [u8] {
    // SAFETY: same representation argument as `le_bytes`, mutably; the
    // window is bounds-checked by the safe subslice below.
    let bytes = unsafe {
        std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(dst))
    };
    &mut bytes[byte_off..byte_off + len]
}

/// Decodes wire bytes into pixels, appending to `out`. `src.len()` must be
/// a multiple of the word size.
pub fn extend_from_le<T: WireWord>(out: &mut Vec<T>, src: &[u8]) {
    debug_assert_eq!(src.len() % T::SIZE, 0);
    #[cfg(target_endian = "little")]
    {
        let words = src.len() / T::SIZE;
        let start = out.len();
        out.resize(start + words, T::default());
        copy_le_into(&mut out[start..], 0, src);
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.reserve(src.len() / T::SIZE);
        for c in src.chunks_exact(T::SIZE) {
            let mut le = [0u8; 4];
            le[..T::SIZE].copy_from_slice(c);
            out.push(T::from_le(le));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_bytes_round_trips_through_extend() {
        let pixels: Vec<u16> = (0..257u16).map(|v| v.wrapping_mul(0x1235)).collect();
        let mut scratch = Vec::new();
        let bytes = le_bytes(&pixels, &mut scratch).to_vec();
        assert_eq!(bytes.len(), pixels.len() * 2);
        assert_eq!(&bytes[..2], &pixels[0].to_le_bytes());
        let mut back: Vec<u16> = Vec::new();
        extend_from_le(&mut back, &bytes);
        assert_eq!(back, pixels);
    }

    #[test]
    fn copy_le_into_handles_split_words() {
        let want: Vec<u32> = vec![0xDEAD_BEEF, 0x0102_0304, 0xFFFF_0000];
        let mut scratch = Vec::new();
        let bytes = le_bytes(&want, &mut scratch).to_vec();
        let mut got = vec![0u32; 3];
        // Feed in deliberately misaligned chunks: 3 + 5 + 4 bytes.
        copy_le_into(&mut got, 0, &bytes[..3]);
        copy_le_into(&mut got, 3, &bytes[3..8]);
        copy_le_into(&mut got, 8, &bytes[8..]);
        assert_eq!(got, want);
    }
}
