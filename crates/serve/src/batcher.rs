//! The adaptive batching scheduler.
//!
//! Admitted submissions land here, keyed by *(stream, geometry, dtype,
//! parameters)*. The batcher coalesces compatible submissions into one
//! temporal stack so the engine always preprocesses a deep, cache-friendly
//! cube instead of many shallow ones. A group flushes when any of:
//!
//! - its depth reaches the **effective target** — the configured
//!   `target_frames` scaled up under load (adaptive batching: a busy queue
//!   buys throughput with depth, an idle queue optimises latency),
//! - a submission carries the **end-of-stream** flag (the client needs its
//!   answer now; also what makes single-shot requests byte-identical to the
//!   in-process path),
//! - the group's **deadline** (`max_delay` since it opened) elapses,
//! - the server **drains**.
//!
//! The batcher holds each job's [`AdmissionPermit`] transitively, so frames
//! parked here still occupy bounded-queue capacity — backpressure covers
//! the whole pipeline, not just the wire.

use crate::queue::{AdmissionGate, AdmissionPermit};
use crate::reply::ReplySink;
use crate::wire::{Dtype, SubmitRequest};
use crossbeam::channel;
use preflight_obs::Histogram;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Frames a group should reach before it flushes (scaled when
    /// adaptive). Clamped up to the request's Υ so a flushed stack always
    /// carries at least one full voting window.
    pub target_frames: usize,
    /// Hard per-batch depth cap, whatever the load: a group flushes before
    /// an append would push it past this. A *single* submission deeper than
    /// the cap still flushes alone (its depth is bounded upstream by the
    /// wire payload cap, not here).
    pub max_frames: usize,
    /// Deadline: a group never waits longer than this after opening.
    pub max_delay: Duration,
    /// Scale `target_frames` with queue utilisation.
    pub adaptive: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            target_frames: 16,
            max_frames: 256,
            max_delay: Duration::from_millis(5),
            adaptive: true,
        }
    }
}

impl BatchConfig {
    /// The depth a group must reach to flush right now, given queue load.
    ///
    /// Under light load the base target applies (first-frame latency wins);
    /// past 50 % utilisation the target doubles and past 75 % it
    /// quadruples, so a saturated server amortises dispatch overhead over
    /// deeper stacks.
    pub fn effective_target(&self, gate: &AdmissionGate, upsilon: usize) -> usize {
        let base = self.target_frames.max(upsilon);
        if !self.adaptive {
            return base.min(self.max_frames.max(upsilon));
        }
        let scaled = match (gate.in_flight() * 4).checked_div(gate.capacity()) {
            Some(q) if q >= 3 => base * 4,
            Some(q) if q >= 2 => base * 2,
            _ => base,
        };
        scaled.min(self.max_frames.max(upsilon))
    }
}

/// What one admitted submission carries through the daemon.
pub struct SubmitJob {
    /// The parsed request.
    pub request: SubmitRequest,
    /// The bounded-queue slot this request occupies until its response is
    /// queued for writing.
    pub permit: AdmissionPermit,
    /// When the request won admission (queue-wait telemetry starts here).
    pub admitted_at: Instant,
    /// Routes this request's reply back to its owning connection.
    pub reply: ReplySink,
}

/// Commands the batcher thread accepts.
pub enum BatcherCmd {
    /// An admitted submission to coalesce.
    Submit(SubmitJob),
    /// Flush every open group now (drain path).
    FlushAll,
    /// Flush everything and exit the batcher thread.
    Stop,
}

/// The coalescing key: only frames that are temporally continuable into
/// one stack may share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// Logical stream.
    pub stream_id: u64,
    /// Pixel type.
    pub dtype: Dtype,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Sensitivity Λ.
    pub lambda: u8,
    /// Voter count Υ.
    pub upsilon: u8,
}

impl GroupKey {
    /// The key a request batches under.
    pub fn of(req: &SubmitRequest) -> Self {
        GroupKey {
            stream_id: req.stream_id,
            dtype: req.payload.dtype(),
            width: req.payload.width(),
            height: req.payload.height(),
            lambda: req.lambda,
            upsilon: req.upsilon,
        }
    }
}

/// A flushed batch on its way to the engine.
pub struct BatchJob {
    /// The shared key of every job inside.
    pub key: GroupKey,
    /// The coalesced submissions, in arrival order (their frames
    /// concatenate in this order).
    pub jobs: Vec<SubmitJob>,
    /// Total temporal depth of the concatenated stack.
    pub total_frames: usize,
}

struct Group {
    jobs: Vec<SubmitJob>,
    frames: usize,
    opened_at: Instant,
}

/// Runs the batching loop until [`BatcherCmd::Stop`] or every sender is
/// gone. Never blocks longer than the nearest group deadline.
///
/// `batch_hist` receives each group's formation time (open to flush) —
/// the `batch` stage of the serve pipeline.
pub fn run_batcher(
    rx: channel::Receiver<BatcherCmd>,
    engine_tx: channel::Sender<BatchJob>,
    gate: AdmissionGate,
    config: BatchConfig,
    batch_hist: Histogram,
) {
    let mut groups: HashMap<GroupKey, Group> = HashMap::new();
    let idle_tick = Duration::from_millis(50);
    loop {
        let timeout = groups
            .values()
            .map(|g| (g.opened_at + config.max_delay).saturating_duration_since(Instant::now()))
            .min()
            .unwrap_or(idle_tick);
        match rx.recv_timeout(timeout) {
            Ok(BatcherCmd::Submit(job)) => {
                let key = GroupKey::of(&job.request);
                let eos = job.request.eos;
                let frames = job.request.payload.frames();
                // Never grow an open group past the hard cap by appending:
                // flush what is there first, then start fresh.
                if groups
                    .get(&key)
                    .is_some_and(|g| g.frames + frames > config.max_frames)
                {
                    flush(&mut groups, key, &engine_tx, &batch_hist);
                }
                let group = groups.entry(key).or_insert_with(|| Group {
                    jobs: Vec::new(),
                    frames: 0,
                    opened_at: Instant::now(),
                });
                group.jobs.push(job);
                group.frames += frames;
                let target = config.effective_target(&gate, key.upsilon as usize);
                if eos || group.frames >= target || group.frames >= config.max_frames {
                    flush(&mut groups, key, &engine_tx, &batch_hist);
                }
            }
            Ok(BatcherCmd::FlushAll) => flush_all(&mut groups, &engine_tx, &batch_hist),
            Ok(BatcherCmd::Stop) => {
                flush_all(&mut groups, &engine_tx, &batch_hist);
                return;
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                let due: Vec<GroupKey> = groups
                    .iter()
                    .filter(|(_, g)| g.opened_at.elapsed() >= config.max_delay)
                    .map(|(k, _)| *k)
                    .collect();
                for key in due {
                    flush(&mut groups, key, &engine_tx, &batch_hist);
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                flush_all(&mut groups, &engine_tx, &batch_hist);
                return;
            }
        }
    }
}

fn flush(
    groups: &mut HashMap<GroupKey, Group>,
    key: GroupKey,
    engine_tx: &channel::Sender<BatchJob>,
    batch_hist: &Histogram,
) {
    if let Some(group) = groups.remove(&key) {
        batch_hist.observe_us(group.opened_at.elapsed().as_micros() as u64);
        let batch = BatchJob {
            key,
            total_frames: group.frames,
            jobs: group.jobs,
        };
        // A dead engine (shutdown race) drops the jobs, releasing their
        // permits; the clients see the connection close.
        let _ = engine_tx.send(batch);
    }
}

fn flush_all(
    groups: &mut HashMap<GroupKey, Group>,
    engine_tx: &channel::Sender<BatchJob>,
    batch_hist: &Histogram,
) {
    let keys: Vec<GroupKey> = groups.keys().copied().collect();
    for key in keys {
        flush(groups, key, engine_tx, batch_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FramePayload;
    use preflight_core::ImageStack;

    fn submit(stream_id: u64, frames: usize, eos: bool) -> (SubmitRequest, usize) {
        let stack = ImageStack::<u16>::new(4, 4, frames);
        (
            SubmitRequest {
                request_id: 1,
                stream_id,
                lambda: 80,
                upsilon: 4,
                eos,
                payload: FramePayload::U16(stack),
            },
            frames,
        )
    }

    fn job(
        gate: &AdmissionGate,
        req: SubmitRequest,
    ) -> (SubmitJob, channel::Receiver<(u64, crate::wire::Message)>) {
        let (sink, rx) = ReplySink::detached();
        (
            SubmitJob {
                request: req,
                permit: gate.try_acquire().expect("capacity"),
                admitted_at: Instant::now(),
                reply: sink,
            },
            rx,
        )
    }

    fn spawn_batcher(
        gate: &AdmissionGate,
        config: BatchConfig,
    ) -> (
        channel::Sender<BatcherCmd>,
        channel::Receiver<BatchJob>,
        std::thread::JoinHandle<()>,
    ) {
        let (cmd_tx, cmd_rx) = channel::unbounded();
        let (batch_tx, batch_rx) = channel::unbounded();
        let g = gate.clone();
        let hist = preflight_obs::Obs::disabled().histogram(preflight_obs::STAGE_SECONDS, None);
        let handle = std::thread::spawn(move || run_batcher(cmd_rx, batch_tx, g, config, hist));
        (cmd_tx, batch_rx, handle)
    }

    #[test]
    fn eos_flushes_immediately() {
        let gate = AdmissionGate::new(8);
        let config = BatchConfig {
            target_frames: 1000,
            max_delay: Duration::from_secs(60),
            ..BatchConfig::default()
        };
        let (cmd_tx, batch_rx, handle) = spawn_batcher(&gate, config);
        let (req, _) = submit(7, 4, true);
        let (j, _reply_rx) = job(&gate, req);
        cmd_tx.send(BatcherCmd::Submit(j)).unwrap();
        let batch = batch_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("EOS must flush without waiting for depth or deadline");
        assert_eq!(batch.total_frames, 4);
        assert_eq!(batch.key.stream_id, 7);
        cmd_tx.send(BatcherCmd::Stop).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn depth_target_flushes_and_streams_stay_separate() {
        let gate = AdmissionGate::new(8);
        let config = BatchConfig {
            target_frames: 8,
            max_delay: Duration::from_secs(60),
            adaptive: false,
            ..BatchConfig::default()
        };
        let (cmd_tx, batch_rx, handle) = spawn_batcher(&gate, config);
        // Stream 1 gets 4 + 4 frames (reaches the target), stream 2 only 4.
        for (stream, eos) in [(1, false), (2, false), (1, false)] {
            let (req, _) = submit(stream, 4, eos);
            let (j, _r) = job(&gate, req);
            cmd_tx.send(BatcherCmd::Submit(j)).unwrap();
        }
        let batch = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.key.stream_id, 1);
        assert_eq!(batch.total_frames, 8);
        assert_eq!(batch.jobs.len(), 2);
        assert!(
            batch_rx.try_recv().is_err(),
            "stream 2 is below target and its deadline is far away"
        );
        cmd_tx.send(BatcherCmd::Stop).unwrap();
        let leftover = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(leftover.key.stream_id, 2);
        handle.join().unwrap();
    }

    #[test]
    fn deadline_flushes_a_shallow_group() {
        let gate = AdmissionGate::new(8);
        let config = BatchConfig {
            target_frames: 1000,
            max_delay: Duration::from_millis(30),
            ..BatchConfig::default()
        };
        let (cmd_tx, batch_rx, handle) = spawn_batcher(&gate, config);
        let (req, _) = submit(3, 2, false);
        let (j, _r) = job(&gate, req);
        let before = Instant::now();
        cmd_tx.send(BatcherCmd::Submit(j)).unwrap();
        let batch = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            before.elapsed() >= Duration::from_millis(25),
            "flushed before the deadline"
        );
        assert_eq!(batch.total_frames, 2);
        cmd_tx.send(BatcherCmd::Stop).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn max_frames_cap_flushes_before_append() {
        let gate = AdmissionGate::new(8);
        let config = BatchConfig {
            target_frames: 1000,
            max_frames: 6,
            max_delay: Duration::from_secs(60),
            adaptive: false,
        };
        let (cmd_tx, batch_rx, handle) = spawn_batcher(&gate, config);
        // 4 + 4 frames: appending the second submission would cross the
        // 6-frame cap, so the open group must flush alone first instead of
        // shipping an 8-frame batch.
        for _ in 0..2 {
            let (req, _) = submit(5, 4, false);
            let (j, _r) = job(&gate, req);
            cmd_tx.send(BatcherCmd::Submit(j)).unwrap();
        }
        let first = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.total_frames, 4, "cap exceeded by appending");
        assert_eq!(first.jobs.len(), 1);
        cmd_tx.send(BatcherCmd::Stop).unwrap();
        let second = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(second.total_frames, 4);
        handle.join().unwrap();
    }

    #[test]
    fn adaptive_target_deepens_under_load() {
        let gate = AdmissionGate::new(4);
        let config = BatchConfig {
            target_frames: 8,
            max_frames: 256,
            adaptive: true,
            ..BatchConfig::default()
        };
        assert_eq!(config.effective_target(&gate, 4), 8, "idle queue");
        let _p1 = gate.try_acquire().unwrap();
        let _p2 = gate.try_acquire().unwrap();
        assert_eq!(config.effective_target(&gate, 4), 16, "half full");
        let _p3 = gate.try_acquire().unwrap();
        assert_eq!(config.effective_target(&gate, 4), 32, "nearly full");
        // Υ always wins over a tiny target.
        let idle = AdmissionGate::new(4);
        let small = BatchConfig {
            target_frames: 2,
            ..config
        };
        assert_eq!(small.effective_target(&idle, 8), 8);
    }
}
