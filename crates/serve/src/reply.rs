//! Routing engine replies back to event-loop connections.
//!
//! The threaded server gave every [`SubmitJob`](crate::batcher::SubmitJob)
//! a per-connection channel drained by that connection's writer thread.
//! The event loop has one writer — itself — so replies from engine workers
//! funnel through a single `(token, Message)` channel and a poller
//! [`Waker`](crate::poll::Waker): the worker sends, wakes the loop, and
//! the loop routes the message to the connection registered under the
//! token (or drops it if the peer is gone).

use crate::wire::Message;
use crossbeam::channel;
use std::sync::Arc;

/// Shared wake callback — abstract over [`crate::poll::Waker`] so this
/// module (and the batcher/engine that embed sinks in jobs) compiles on
/// platforms without a poll backend.
pub type WakeFn = Arc<dyn Fn() + Send + Sync>;

/// A cheap, cloneable handle an engine worker uses to deliver one
/// connection's reply into the event loop.
#[derive(Clone)]
pub struct ReplySink {
    token: u64,
    tx: channel::Sender<(u64, Message)>,
    wake: Option<WakeFn>,
}

impl ReplySink {
    /// A sink that routes to the connection registered under `token`,
    /// waking the loop after each send.
    pub fn new(token: u64, tx: channel::Sender<(u64, Message)>, wake: Option<WakeFn>) -> Self {
        ReplySink { token, tx, wake }
    }

    /// The connection token replies are routed to.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Queues `msg` for the owning connection and wakes the loop.
    /// Returns `false` only if the loop side has shut down entirely.
    pub fn send(&self, msg: Message) -> bool {
        let ok = self.tx.send((self.token, msg)).is_ok();
        if let Some(wake) = &self.wake {
            wake();
        }
        ok
    }

    /// A sink wired to a fresh receiver — for tests that want to observe
    /// replies directly instead of running an event loop.
    pub fn detached() -> (Self, channel::Receiver<(u64, Message)>) {
        let (tx, rx) = channel::unbounded();
        (ReplySink::new(0, tx, None), rx)
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplySink")
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn send_routes_by_token_and_wakes() {
        let (tx, rx) = channel::unbounded();
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        let sink = ReplySink::new(
            42,
            tx,
            Some(Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }) as WakeFn),
        );
        assert!(sink.send(Message::Pong(9)));
        let (token, msg) = rx.recv().expect("routed");
        assert_eq!(token, 42);
        assert!(matches!(msg, Message::Pong(9)));
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn send_reports_loop_shutdown() {
        let (sink, rx) = ReplySink::detached();
        drop(rx);
        assert!(
            !sink.send(Message::Pong(0)),
            "closed loop must report false"
        );
    }
}
