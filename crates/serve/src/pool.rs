//! A slab pool of engine-ready pixel buffers, keyed by sample count.
//!
//! The zero-copy ingest path reads socket bytes straight into an
//! [`ImageStack`](preflight_core::ImageStack)-shaped `Vec<u16>`/`Vec<u32>`;
//! once the response hits the wire the buffer comes back here instead of
//! the allocator. In steady state (same geometry request after request —
//! the normal shape of a camera stream) every `take` is a pool hit and the
//! request path performs zero heap allocation.
//!
//! Hygiene rules, enforced by tests in `tests/pool_hygiene.rs`:
//!
//! - [`BufferPool::take_filled`] always returns a buffer of *exactly* the
//!   requested length with every element zeroed, whether it came from the
//!   shelf or the allocator — stale bytes from a previous request never
//!   reach a new one.
//! - [`BufferPool::put_u16`]/[`BufferPool::put_u32`] only shelve buffers
//!   whose capacity can serve a future request; each bucket is capped so a
//!   burst of odd geometries cannot pin unbounded memory.

use preflight_obs::Counter;
use std::collections::HashMap;
use std::sync::Mutex;

/// Buffers kept per distinct sample count before extras are dropped back
/// to the allocator. 32 buffers × the largest common stack (32×32×8 u16 =
/// 16 KiB) is well under a megabyte per bucket; even 4096×4096×8 u32
/// stacks cap at 16 GiB *virtual* only if a client actually sustains 32
/// such requests in flight, which the admission gate already bounds far
/// lower.
const BUCKET_CAP: usize = 32;

#[derive(Default)]
struct Shelf<T> {
    buckets: HashMap<usize, Vec<Vec<T>>>,
}

impl<T: Copy + Default> Shelf<T> {
    fn take(&mut self, samples: usize) -> Option<Vec<T>> {
        let bucket = self.buckets.get_mut(&samples)?;
        let mut buf = bucket.pop()?;
        if bucket.is_empty() {
            self.buckets.remove(&samples);
        }
        // Scrub before handing out: a recycled buffer still holds the
        // previous request's pixels.
        buf.iter_mut().for_each(|v| *v = T::default());
        Some(buf)
    }

    fn put(&mut self, samples: usize, buf: Vec<T>) {
        if buf.len() != samples || samples == 0 {
            // Partial (aborted mid-ingest) or degenerate buffers are not
            // reusable as-is; let the allocator reclaim them.
            return;
        }
        let bucket = self.buckets.entry(samples).or_default();
        if bucket.len() < BUCKET_CAP {
            bucket.push(buf);
        }
    }
}

/// Shared pool of pixel buffers with one shelf per wire dtype.
///
/// All methods take `&self`; the shelves sit behind a [`Mutex`] each, held
/// only for the bucket push/pop (the zero-fill happens outside no lock is
/// needed for it — `take` scrubs inside the lock but the scrub is a linear
/// `memset`-shaped pass the optimiser vectorises).
pub struct BufferPool {
    u16s: Mutex<Shelf<u16>>,
    u32s: Mutex<Shelf<u32>>,
    hits: Counter,
    misses: Counter,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool").finish_non_exhaustive()
    }
}

impl BufferPool {
    /// A pool reporting hits/misses through the given counters (pass
    /// [`Counter`]s from a disabled [`preflight_obs::Obs`] to opt out).
    pub fn new(hits: Counter, misses: Counter) -> Self {
        BufferPool {
            u16s: Mutex::new(Shelf::default()),
            u32s: Mutex::new(Shelf::default()),
            hits,
            misses,
        }
    }

    /// A pool with no-op counters, for tests and library embedders.
    pub fn detached() -> Self {
        let obs = preflight_obs::Obs::disabled();
        BufferPool::new(
            obs.counter("pool_hits", None),
            obs.counter("pool_misses", None),
        )
    }

    /// A shelved, zeroed `Vec<u16>` of exactly `samples` elements, or
    /// `None` on a pool miss (counters bumped either way). The ingest path
    /// uses this directly so misses can grow incrementally as bytes arrive
    /// instead of committing the full declared geometry up front.
    pub fn try_take_u16(&self, samples: usize) -> Option<Vec<u16>> {
        let got = self.u16s.lock().expect("u16 pool poisoned").take(samples);
        match got.is_some() {
            true => self.hits.inc(),
            false => self.misses.inc(),
        }
        got
    }

    /// `u32` twin of [`BufferPool::try_take_u16`].
    pub fn try_take_u32(&self, samples: usize) -> Option<Vec<u32>> {
        let got = self.u32s.lock().expect("u32 pool poisoned").take(samples);
        match got.is_some() {
            true => self.hits.inc(),
            false => self.misses.inc(),
        }
        got
    }

    /// A zeroed `Vec<u16>` of exactly `samples` elements.
    pub fn take_filled_u16(&self, samples: usize) -> Vec<u16> {
        self.try_take_u16(samples)
            .unwrap_or_else(|| vec![0u16; samples])
    }

    /// A zeroed `Vec<u32>` of exactly `samples` elements.
    pub fn take_filled_u32(&self, samples: usize) -> Vec<u32> {
        self.try_take_u32(samples)
            .unwrap_or_else(|| vec![0u32; samples])
    }

    /// Recycles a u16 buffer. Only complete buffers (`len == samples` it
    /// would be handed out as) are shelved; anything else is dropped.
    pub fn put_u16(&self, buf: Vec<u16>) {
        let samples = buf.len();
        self.u16s
            .lock()
            .expect("u16 pool poisoned")
            .put(samples, buf);
    }

    /// Recycles a u32 buffer (same rules as [`BufferPool::put_u16`]).
    pub fn put_u32(&self, buf: Vec<u32>) {
        let samples = buf.len();
        self.u32s
            .lock()
            .expect("u32 pool poisoned")
            .put(samples, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_recycle() {
        let pool = BufferPool::detached();
        let mut buf = pool.take_filled_u16(64);
        buf.iter_mut().for_each(|v| *v = 0xBEEF);
        pool.put_u16(buf);
        let again = pool.take_filled_u16(64);
        assert!(again.iter().all(|&v| v == 0), "stale bytes leaked");
        assert_eq!(again.len(), 64);
    }

    #[test]
    fn mismatched_size_misses_the_bucket() {
        let pool = BufferPool::detached();
        pool.put_u32(vec![7u32; 100]);
        let buf = pool.take_filled_u32(64);
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|&v| v == 0));
    }

    #[test]
    fn bucket_is_capped() {
        let pool = BufferPool::detached();
        for _ in 0..(BUCKET_CAP + 10) {
            pool.put_u16(vec![1u16; 8]);
        }
        let shelved = pool.u16s.lock().unwrap().buckets.get(&8).map(Vec::len);
        assert_eq!(shelved, Some(BUCKET_CAP));
    }
}
