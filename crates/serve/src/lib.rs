//! `preflight-serve`: a batch-serving preprocessing daemon.
//!
//! This crate turns the library pipeline into a long-running service,
//! `preflightd`, for deployments where many camera/telemetry streams share
//! one radiation-tolerant compute budget:
//!
//! - **Wire protocol** ([`wire`]): length-prefixed binary envelopes with
//!   CRC-32 integrity on both the envelope and every image frame — the
//!   transport gets the same distrust the paper applies to sensor data.
//! - **Bounded admission** ([`queue`]): a fixed number of in-flight
//!   requests; beyond that, clients get an explicit `Busy` instead of the
//!   daemon buffering without bound.
//! - **Adaptive batching** ([`batcher`]): frames from many clients
//!   coalesce into temporal stacks of at least depth Υ, flushing on depth
//!   or deadline, with the target depth scaling under load.
//! - **Supervised engine** ([`engine`]): each batch runs under the PR 1
//!   supervisor — retries, timeouts, and the degradation ladder — so the
//!   daemon answers every admitted request even when a rung fails.
//! - **Per-request telemetry** ([`telemetry`]): every response carries a
//!   stats trailer (bits flipped, voter agreement, queue wait, batch
//!   shape, degradation rung).
//! - **Observability** ([`telemetry`], [`metrics`]): every stage of the
//!   serve pipeline (admission, queue wait, batch formation, engine
//!   service, response write) feeds latency histograms and counters in a
//!   shared [`preflight_obs`] registry, exposed three ways — a Prometheus
//!   `/metrics` scrape listener, the `Stats` wire message
//!   ([`Client::stats`]), and the one-line human summary.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod builder;
pub(crate) mod bytes;
pub mod client;
pub mod crc;
pub mod engine;
mod event_loop;
mod ingest;
pub mod metrics;
pub mod poll;
pub mod pool;
pub mod queue;
pub mod reply;
pub mod server;
pub mod signal;
pub mod telemetry;
pub mod wheel;
pub mod wire;

pub use batcher::BatchConfig;
pub use builder::{ClientBuilder, ServerBuilder};
pub use client::{Client, ClientError, SubmitOptions};
pub use engine::{EngineConfig, TunerRegistry};
pub use queue::AdmissionGate;
#[allow(deprecated)]
pub use server::start;
pub use server::{ServerConfig, ServerHandle};
pub use telemetry::{format_summary, RequestStats, ServerStats};
pub use wire::{Dtype, FramePayload, Message, SubmitRequest, SubmitResponse, WireError};

// Re-exported so daemon embedders configure observability without a
// separate dependency on `preflight-obs`.
pub use preflight_obs::{render_prometheus, Obs, Snapshot};
