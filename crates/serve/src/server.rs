//! The daemon: acceptors, per-connection threads, and lifecycle.
//!
//! Thread layout (`preflightd` with both sockets enabled):
//!
//! ```text
//! acceptor(tcp) ─┐                        ┌─ engine worker 0 ─┐
//! acceptor(unix)─┼─ conn reader ─▶ batcher ┼─ engine worker 1 ─┼─▶ conn writer
//!                └─ conn reader ─▶   ...   └─ ...              ┘
//! ```
//!
//! Each connection gets a reader thread (parses envelopes, admits work
//! through the bounded [`AdmissionGate`]) and a writer thread (serialises
//! responses from a channel, so many engine workers can answer one client
//! without interleaving bytes). Readers never block forever: sockets carry
//! a read timeout and every idle wakeup polls the drain flag.
//!
//! Graceful shutdown (wire `Drain` or SIGTERM→[`ServerHandle::drain`]):
//! stop admitting, flush the batcher's open groups, wait for every permit
//! to return (all in-flight responses queued), then stop the batcher and
//! engine workers and join them.

use crate::batcher::{run_batcher, BatchConfig, BatcherCmd, SubmitJob};
use crate::engine::{run_engine_worker, EngineConfig, TunerRegistry};
use crate::metrics::run_metrics_listener;
use crate::queue::{AdmissionGate, AdmissionPermit};
use crate::telemetry::ServerStats;
use crate::wire::{
    parse_body, parse_head, write_message, BusyReply, DrainSummary, ErrorCode, ErrorReply, Message,
    WireError, HEAD_LEN,
};
use crossbeam::channel;
use preflight_obs::Obs;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a reader sleeps per poll while its socket is idle.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long acceptors sleep between failed non-blocking accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Ceiling on waiting for in-flight work during a drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// A reader mid-envelope gives up after this long without a single byte of
/// progress, so a stalled client cannot pin its thread (and body buffer)
/// forever.
const MID_ENVELOPE_STALL: Duration = Duration::from_secs(30);

/// Bodies are read in chunks of this size, so a connection that merely
/// *declares* a large payload never holds more memory than it has sent.
const BODY_CHUNK: usize = 256 * 1024;

/// Everything needed to start a daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address (e.g. `127.0.0.1:0`), if any.
    pub tcp: Option<String>,
    /// Unix socket path, if any (Unix only).
    pub unix: Option<PathBuf>,
    /// Bounded-queue capacity: in-flight requests beyond this are rejected
    /// with `Busy`.
    pub capacity: usize,
    /// Ceiling on concurrent connections: accepts beyond this are answered
    /// with `Busy` and closed, so idle or slow peers cannot exhaust threads
    /// and buffers that the request-level gate does not see.
    pub max_connections: usize,
    /// Batching knobs.
    pub batch: BatchConfig,
    /// Engine knobs (threads per batch, supervision policy).
    pub engine: EngineConfig,
    /// Parallel engine workers (batches in flight at once).
    pub engine_workers: usize,
    /// Enable the per-stream Λ/Υ auto-tuner (`--auto-tune`): each batch
    /// group key gets a rolling-Φ calibrator whose frozen boundaries
    /// replace the requested parameters once warm. Chosen-vs-requested
    /// values surface as `tune_*` gauges and in the stats trailer.
    pub auto_tune: bool,
    /// TCP address for the Prometheus `/metrics` scrape listener, if any
    /// (a second listener, never mixed with the request protocol).
    pub metrics_addr: Option<String>,
    /// The observability registry every daemon thread records into. The
    /// default is a live registry (the daemon's drain summary reads it);
    /// pass [`Obs::disabled`] to switch all recording off.
    pub obs: Obs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: None,
            unix: None,
            capacity: 64,
            max_connections: 256,
            batch: BatchConfig::default(),
            engine: EngineConfig::default(),
            engine_workers: 2,
            auto_tune: false,
            metrics_addr: None,
            obs: Obs::new(),
        }
    }
}

struct Shared {
    gate: AdmissionGate,
    /// Bounds concurrent connections; an accept that cannot win a permit is
    /// answered with `Busy` and closed.
    conn_gate: AdmissionGate,
    stats: Arc<ServerStats>,
    batcher_tx: channel::Sender<BatcherCmd>,
    /// No new work admitted; acceptors wind down.
    draining: AtomicBool,
    /// Fully drained and joined; readers exit at their next poll.
    stopped: AtomicBool,
    /// A wire `Drain` finished flushing (the daemon main loop exits on it).
    drain_acked: AtomicBool,
}

impl Shared {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = self.batcher_tx.send(BatcherCmd::FlushAll);
    }

    fn summary(&self) -> DrainSummary {
        DrainSummary {
            completed: self.stats.completed.get(),
            rejected: self.stats.rejected_busy.get(),
        }
    }
}

/// A running daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    metrics_addr: Option<SocketAddr>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The actual TCP address bound (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The actual `/metrics` scrape address bound, if configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The Unix socket path served, if any.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Whole-server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Requests currently occupying bounded-queue slots.
    pub fn in_flight(&self) -> usize {
        self.shared.gate.in_flight()
    }

    /// `true` once a drain has begun (no new work admitted).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// `true` once a wire-level `Drain` has been acknowledged.
    pub fn drain_acked(&self) -> bool {
        self.shared.drain_acked.load(Ordering::SeqCst)
    }

    /// Gracefully drains and shuts the daemon down: stop admitting, flush
    /// open batches, wait for in-flight work, stop and join every server
    /// thread. Idempotent.
    pub fn drain(&self) -> DrainSummary {
        self.shared.begin_drain();
        if !self.shared.gate.wait_idle(DRAIN_TIMEOUT) {
            eprintln!(
                "preflightd: drain timed out after {DRAIN_TIMEOUT:?} with {} request(s) still \
                 in flight; shutting down anyway",
                self.shared.gate.in_flight()
            );
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = self.shared.batcher_tx.send(BatcherCmd::Stop);
        let mut threads = self.threads.lock().expect("server threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.summary()
    }
}

/// Binds the configured sockets and starts every server thread.
///
/// # Errors
/// Fails if no socket is configured or a bind fails.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    if config.tcp.is_none() && config.unix.is_none() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "server needs at least one of a TCP address or a Unix socket path",
        ));
    }
    let gate = AdmissionGate::new(config.capacity);
    let stats = Arc::new(ServerStats::new(&config.obs));
    let (batcher_tx, batcher_rx) = channel::unbounded();
    let (engine_tx, engine_rx) = channel::unbounded();

    let shared = Arc::new(Shared {
        gate: gate.clone(),
        conn_gate: AdmissionGate::new(config.max_connections.max(1)),
        stats: Arc::clone(&stats),
        batcher_tx,
        draining: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        drain_acked: AtomicBool::new(false),
    });

    let mut threads = Vec::new();

    {
        let rx = batcher_rx;
        let tx = engine_tx;
        let gate = gate.clone();
        let batch = config.batch.clone();
        let batch_hist = stats.stage_batch.clone();
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-batcher".into())
                .spawn(move || run_batcher(rx, tx, gate, batch, batch_hist))?,
        );
    }
    // One registry instance shared by every worker clone, so a stream's
    // calibrator state survives whichever worker picks up its next batch.
    let mut engine_config = config.engine.clone();
    if config.auto_tune && engine_config.tuners.is_none() {
        engine_config.tuners = Some(TunerRegistry::new());
    }
    for i in 0..config.engine_workers.max(1) {
        let rx = engine_rx.clone();
        let engine = engine_config.clone();
        let stats = Arc::clone(&stats);
        threads.push(
            std::thread::Builder::new()
                .name(format!("preflightd-engine-{i}"))
                .spawn(move || run_engine_worker(rx, engine, stats))?,
        );
    }
    drop(engine_rx);

    let mut tcp_addr = None;
    if let Some(addr) = &config.tcp {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-accept-tcp".into())
                .spawn(move || accept_tcp(listener, shared))?,
        );
    }

    let mut unix_path = None;
    #[cfg(unix)]
    if let Some(path) = &config.unix {
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-accept-unix".into())
                .spawn(move || accept_unix(listener, shared))?,
        );
    }
    #[cfg(not(unix))]
    if config.unix.is_some() {
        return Err(std::io::Error::new(
            ErrorKind::Unsupported,
            "Unix sockets are not available on this platform",
        ));
    }

    let mut metrics_addr = None;
    if let Some(addr) = &config.metrics_addr {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        metrics_addr = Some(listener.local_addr()?);
        let obs = config.obs.clone();
        let scrape_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-metrics".into())
                .spawn(move || {
                    run_metrics_listener(listener, obs, move || {
                        scrape_shared.stopped.load(Ordering::SeqCst)
                    });
                })?,
        );
    }

    Ok(ServerHandle {
        shared,
        tcp_addr,
        unix_path,
        metrics_addr,
        threads: Mutex::new(threads),
    })
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let permit = match shared.conn_gate.try_acquire() {
                    Some(p) => p,
                    None => {
                        reject_connection(stream, &shared);
                        continue;
                    }
                };
                let writer = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                spawn_connection(stream, writer, permit, Arc::clone(&shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: std::os::unix::net::UnixListener, shared: Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let permit = match shared.conn_gate.try_acquire() {
                    Some(p) => p,
                    None => {
                        reject_connection(stream, &shared);
                        continue;
                    }
                };
                let writer = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                spawn_connection(stream, writer, permit, Arc::clone(&shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers an over-cap connection with `Busy` (best effort) and closes it.
fn reject_connection(mut w: impl Write, shared: &Shared) {
    shared.stats.rejected_connections.inc();
    let _ = write_message(
        &mut w,
        &Message::Busy(BusyReply {
            request_id: 0,
            capacity: shared.conn_gate.capacity() as u32,
            in_flight: shared.conn_gate.in_flight() as u32,
        }),
    );
}

fn spawn_connection<R, W>(reader: R, writer: W, permit: AdmissionPermit, shared: Arc<Shared>)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    shared.stats.connections.inc();
    let spawned = std::thread::Builder::new()
        .name("preflightd-conn".into())
        .spawn(move || {
            // The permit rides the whole connection thread: it releases on
            // drop whichever way the handler exits.
            let _permit = permit;
            handle_connection(reader, writer, shared);
        });
    // A failed spawn drops the permit immediately, freeing the slot.
    let _ = spawned;
}

/// Outcome of trying to fill a buffer from a socket with read timeouts.
enum Fill {
    /// Buffer completely filled.
    Done,
    /// Peer closed the connection cleanly before any byte arrived.
    Eof,
    /// No bytes arrived this poll interval (only possible while the buffer
    /// is still empty and `idle_ok` was set).
    Idle,
    /// Transport error; the connection is done for.
    Failed,
}

/// Fills `buf` from `r`, retrying timeouts. With `idle_ok`, a timeout
/// before the first byte reports [`Fill::Idle`] so the caller can poll its
/// shutdown flag between envelopes. Once an envelope has started, timeouts
/// keep the read alive only while the server is running and the peer keeps
/// making progress: a server stop or [`MID_ENVELOPE_STALL`] without a byte
/// fails the read, so a stalled client cannot pin its reader thread.
fn read_full(r: &mut impl Read, buf: &mut [u8], idle_ok: bool, stop: &AtomicBool) -> Fill {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 { Fill::Eof } else { Fill::Failed };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if filled == 0 && idle_ok {
                    return Fill::Idle;
                }
                if stop.load(Ordering::SeqCst) || last_progress.elapsed() >= MID_ENVELOPE_STALL {
                    return Fill::Failed;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Fill::Failed,
        }
    }
    Fill::Done
}

/// Reads a declared `total`-byte body (payload + trailing CRC) in
/// [`BODY_CHUNK`] steps, growing the buffer only as bytes actually arrive —
/// a peer that declares 256 MiB but sends nothing costs one chunk, not the
/// whole declared length.
fn read_body(r: &mut impl Read, total: usize, stop: &AtomicBool) -> Option<Vec<u8>> {
    let mut body = Vec::new();
    while body.len() < total {
        let start = body.len();
        let chunk = BODY_CHUNK.min(total - start);
        body.resize(start + chunk, 0);
        match read_full(r, &mut body[start..], false, stop) {
            Fill::Done => {}
            _ => return None,
        }
    }
    Some(body)
}

fn handle_connection<R, W>(mut reader: R, writer: W, shared: Arc<Shared>)
where
    R: Read,
    W: Write + Send + 'static,
{
    // The writer thread serialises replies from every producer (this
    // reader, the batcher's engine workers) onto the socket.
    let (conn_tx, conn_rx) = channel::unbounded::<Message>();
    let write_hist = shared.stats.stage_write.clone();
    let writer_thread = std::thread::Builder::new()
        .name("preflightd-conn-writer".into())
        .spawn(move || {
            let mut writer = writer;
            for msg in conn_rx.iter() {
                let timer = write_hist.timer();
                let result = write_message(&mut writer, &msg);
                drop(timer);
                if result.is_err() {
                    break;
                }
            }
        });

    loop {
        let mut head = [0u8; HEAD_LEN];
        match read_full(&mut reader, &mut head, true, &shared.stopped) {
            Fill::Idle => {
                if shared.stopped.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Fill::Eof => break,
            Fill::Failed => break,
            Fill::Done => {}
        }
        let (type_code, len) = match parse_head(&head) {
            Ok(h) => h,
            Err(e) => {
                // The stream is desynchronised; report and hang up.
                shared.stats.wire_errors.inc();
                let _ = conn_tx.send(wire_error_reply(&e));
                break;
            }
        };
        let body = match read_body(&mut reader, len as usize + 4, &shared.stopped) {
            Some(b) => b,
            None => break,
        };
        let crc_bytes = [
            body[len as usize],
            body[len as usize + 1],
            body[len as usize + 2],
            body[len as usize + 3],
        ];
        let message = match parse_body(
            type_code,
            &body[..len as usize],
            u32::from_le_bytes(crc_bytes),
        ) {
            Ok(m) => m,
            Err(e) => {
                shared.stats.wire_errors.inc();
                let _ = conn_tx.send(wire_error_reply(&e));
                break;
            }
        };
        match message {
            Message::Submit(request) => {
                // The admission stage spans decode-to-verdict: drain
                // check, gate acquire, and handing the job (or the
                // rejection) onward.
                let _admission = shared.stats.stage_admission.timer();
                let request_id = request.request_id;
                if shared.draining.load(Ordering::SeqCst) {
                    let _ = conn_tx.send(Message::Error(ErrorReply {
                        request_id,
                        code: ErrorCode::Draining,
                        message: "server is draining; no new work admitted".to_owned(),
                    }));
                    continue;
                }
                match shared.gate.try_acquire() {
                    Some(permit) => {
                        shared.stats.admitted.inc();
                        let job = SubmitJob {
                            request,
                            permit,
                            admitted_at: Instant::now(),
                            reply: conn_tx.clone(),
                        };
                        if shared.batcher_tx.send(BatcherCmd::Submit(job)).is_err() {
                            let _ = conn_tx.send(Message::Error(ErrorReply {
                                request_id,
                                code: ErrorCode::Draining,
                                message: "server is shutting down".to_owned(),
                            }));
                        }
                    }
                    None => {
                        shared.stats.rejected_busy.inc();
                        let _ = conn_tx.send(Message::Busy(BusyReply {
                            request_id,
                            capacity: shared.gate.capacity() as u32,
                            in_flight: shared.gate.in_flight() as u32,
                        }));
                    }
                }
            }
            Message::StatsRequest => {
                let _ = conn_tx.send(Message::StatsReply(shared.stats.snapshot()));
            }
            Message::Ping(token) => {
                let _ = conn_tx.send(Message::Pong(token));
            }
            Message::Drain => {
                shared.begin_drain();
                if !shared.gate.wait_idle(DRAIN_TIMEOUT) {
                    eprintln!(
                        "preflightd: drain timed out after {DRAIN_TIMEOUT:?} with {} request(s) \
                         still in flight; acking anyway",
                        shared.gate.in_flight()
                    );
                }
                // Raise the flag before the ack can reach the wire: once a
                // client observes DrainAck, `drain_acked()` must be true.
                shared.drain_acked.store(true, Ordering::SeqCst);
                let _ = conn_tx.send(Message::DrainAck(shared.summary()));
            }
            // Server-to-client messages arriving at the server are a
            // protocol violation; answer and hang up.
            Message::Response(_)
            | Message::Busy(_)
            | Message::Error(_)
            | Message::DrainAck(_)
            | Message::Pong(_)
            | Message::StatsReply(_) => {
                let _ = conn_tx.send(Message::Error(ErrorReply {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "unexpected server-side message from client".to_owned(),
                }));
                break;
            }
        }
    }

    // Closing our sender lets the writer flush queued replies and exit;
    // engine workers may still hold clones for in-flight work, and the
    // writer stays alive until those are answered too.
    drop(conn_tx);
    if let Ok(t) = writer_thread {
        let _ = t.join();
    }
}

fn wire_error_reply(e: &WireError) -> Message {
    Message::Error(ErrorReply {
        request_id: 0,
        code: ErrorCode::Malformed,
        message: e.to_string(),
    })
}
