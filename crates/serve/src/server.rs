//! The daemon: lifecycle, shared state, and the event-loop shard threads.
//!
//! Thread layout (`preflightd` with both sockets enabled, N shards):
//!
//! ```text
//!   sockets ──▶ ┌─ loop shard 0 ─┐          ┌─ engine worker 0 ─┐
//!   sockets ──▶ ┼─ loop shard 1 ─┼──▶ batcher ┼─ engine worker 1 ─┘
//!               └─ ...           ┘          └─ ...
//!                 ▲ per-shard reply channel (token, Message) + waker
//! ```
//!
//! Each [`crate::event_loop`] shard thread owns one poller plus the
//! connections assigned to it: accepts, envelope decoding, admission, and
//! response writes all happen non-blocking behind an epoll/kqueue
//! [`crate::poll::Poller`], so concurrent connections cost descriptors and
//! buffers, not stacks. TCP shards each bind their own `SO_REUSEPORT`
//! listener (the kernel load-balances accepts); the Unix listener lives on
//! shard 0, which round-robins accepted sockets to its peers. Engine
//! workers answer through the owning shard's reply channel plus that
//! shard's self-pipe waker. The batcher, engine workers, and the
//! Prometheus scrape listener keep their own (few, fixed) threads.
//!
//! Graceful shutdown (wire `Drain` or SIGTERM→[`ServerHandle::drain`]):
//! stop admitting, flush the batcher's open groups, wait for every permit
//! to return (all in-flight responses queued), then stop the batcher and
//! engine workers and join them. The loop never blocks on a drain — wire
//! `Drain` acks are deferred until the gate reports idle.

use crate::batcher::{run_batcher, BatchConfig, BatcherCmd};
use crate::engine::{run_engine_worker, EngineConfig, TunerRegistry};
use crate::metrics::run_metrics_listener;
use crate::queue::AdmissionGate;
use crate::reply::WakeFn;
use crate::telemetry::ServerStats;
use crate::wire::DrainSummary;
use crossbeam::channel;
use preflight_obs::Obs;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Ceiling on waiting for in-flight work during a drain.
pub(crate) const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// A connection mid-envelope (or with unflushed replies) is closed after
/// this long without a single byte of progress, so a stalled or malicious
/// peer cannot pin buffers forever. Idle connections *between* envelopes
/// carry no deadline.
pub(crate) const MID_ENVELOPE_STALL: Duration = Duration::from_secs(30);

/// Bodies are read (and reusable buffers retained) in chunks of this size,
/// so a connection that merely *declares* a large payload never holds more
/// memory than it has sent.
pub(crate) const BODY_CHUNK: usize = 256 * 1024;

/// Everything needed to start a daemon.
///
/// Prefer [`crate::builder::ServerBuilder`], which constructs one of these
/// behind a fluent API; the struct stays public for embedders that want to
/// store or template configurations.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address (e.g. `127.0.0.1:0`), if any.
    pub tcp: Option<String>,
    /// Unix socket path, if any (Unix only).
    pub unix: Option<PathBuf>,
    /// Bounded-queue capacity: in-flight requests beyond this are rejected
    /// with `Busy`.
    pub capacity: usize,
    /// Ceiling on concurrent connections: accepts beyond this are answered
    /// with `Busy` and closed, so idle or slow peers cannot exhaust
    /// descriptors and buffers that the request-level gate does not see.
    pub max_connections: usize,
    /// Batching knobs.
    pub batch: BatchConfig,
    /// Engine knobs (threads per batch, supervision policy).
    pub engine: EngineConfig,
    /// Parallel engine workers (batches in flight at once).
    pub engine_workers: usize,
    /// Event-loop shards (poll threads, each owning its own listener and
    /// connections). `0` means auto: `min(4, available_parallelism)`.
    /// Explicit values are clamped to `1..=16`.
    pub shards: usize,
    /// Enable the per-stream Λ/Υ auto-tuner (`--auto-tune`): each batch
    /// group key gets a rolling-Φ calibrator whose frozen boundaries
    /// replace the requested parameters once warm. Chosen-vs-requested
    /// values surface as `tune_*` gauges and in the stats trailer.
    pub auto_tune: bool,
    /// TCP address for the Prometheus `/metrics` scrape listener, if any
    /// (a second listener, never mixed with the request protocol).
    pub metrics_addr: Option<String>,
    /// The observability registry every daemon thread records into. The
    /// default is a live registry (the daemon's drain summary reads it);
    /// pass [`Obs::disabled`] to switch all recording off.
    pub obs: Obs,
}

impl ServerConfig {
    /// The number of event-loop shard threads this configuration resolves
    /// to: `shards` clamped to `1..=16`, or `min(4, available cores)` when
    /// left at the `0` auto default.
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            self.shards.clamp(1, 16)
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: None,
            unix: None,
            capacity: 64,
            max_connections: 10_240,
            batch: BatchConfig::default(),
            engine: EngineConfig::default(),
            engine_workers: 2,
            shards: 0,
            auto_tune: false,
            metrics_addr: None,
            obs: Obs::new(),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) gate: AdmissionGate,
    /// Bounds concurrent connections; an accept that cannot win a permit is
    /// answered with `Busy` and closed.
    pub(crate) conn_gate: AdmissionGate,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) batcher_tx: channel::Sender<BatcherCmd>,
    /// No new work admitted; the loop deregisters its listeners.
    pub(crate) draining: AtomicBool,
    /// Fully drained; the loop closes every connection and exits.
    pub(crate) stopped: AtomicBool,
    /// A wire `Drain` finished flushing (the daemon main loop exits on it).
    pub(crate) drain_acked: AtomicBool,
    /// Interrupts every shard's poll wait (filled before the loops start).
    wake: Mutex<Vec<WakeFn>>,
}

impl Shared {
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = self.batcher_tx.send(BatcherCmd::FlushAll);
        self.wake_loop();
    }

    pub(crate) fn summary(&self) -> DrainSummary {
        DrainSummary {
            completed: self.stats.completed.get(),
            rejected: self.stats.rejected_busy.get(),
        }
    }

    fn add_wake(&self, f: WakeFn) {
        self.wake.lock().expect("wake fn poisoned").push(f);
    }

    /// Interrupts every shard's poll wait (drain progress, shutdown).
    pub(crate) fn wake_loop(&self) {
        for f in self.wake.lock().expect("wake fn poisoned").iter() {
            f();
        }
    }
}

/// A running daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    metrics_addr: Option<SocketAddr>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The actual TCP address bound (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The actual `/metrics` scrape address bound, if configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The Unix socket path served, if any.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Whole-server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Requests currently occupying bounded-queue slots.
    pub fn in_flight(&self) -> usize {
        self.shared.gate.in_flight()
    }

    /// Connections currently registered with the event loop.
    pub fn open_connections(&self) -> usize {
        self.shared.conn_gate.in_flight()
    }

    /// `true` once a drain has begun (no new work admitted).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// `true` once a wire-level `Drain` has been acknowledged.
    pub fn drain_acked(&self) -> bool {
        self.shared.drain_acked.load(Ordering::SeqCst)
    }

    /// Gracefully drains and shuts the daemon down: stop admitting, flush
    /// open batches, wait for in-flight work, stop and join every server
    /// thread. Idempotent.
    pub fn drain(&self) -> DrainSummary {
        self.shared.begin_drain();
        if !self.shared.gate.wait_idle(DRAIN_TIMEOUT) {
            eprintln!(
                "preflightd: drain timed out after {DRAIN_TIMEOUT:?} with {} request(s) still \
                 in flight; shutting down anyway",
                self.shared.gate.in_flight()
            );
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.wake_loop();
        let _ = self.shared.batcher_tx.send(BatcherCmd::Stop);
        let mut threads = self.threads.lock().expect("server threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.summary()
    }
}

/// Binds the configured sockets and starts the daemon threads.
///
/// # Errors
/// Fails if no socket is configured or a bind fails.
#[deprecated(
    since = "0.9.0",
    note = "use `ServerBuilder::new().bind(addr)...serve()` instead"
)]
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    start_config(config)
}

/// Binds the configured sockets and starts the daemon threads: the event
/// loop, the batcher, the engine workers, and (optionally) the metrics
/// listener. The non-deprecated internal entry point behind
/// [`crate::builder::ServerBuilder::serve`].
///
/// # Errors
/// Fails if no socket is configured, a bind fails, or — on platforms with
/// neither epoll nor kqueue — with [`ErrorKind::Unsupported`].
pub(crate) fn start_config(config: ServerConfig) -> std::io::Result<ServerHandle> {
    start_impl(config)
}

#[cfg(not(unix))]
fn start_impl(_config: ServerConfig) -> std::io::Result<ServerHandle> {
    Err(std::io::Error::new(
        ErrorKind::Unsupported,
        "the event-driven daemon needs epoll or kqueue; this platform has neither",
    ))
}

#[cfg(unix)]
fn start_impl(config: ServerConfig) -> std::io::Result<ServerHandle> {
    use crate::event_loop::{run_event_loop, Handoff, LoopConfig};
    use crate::poll::{waker, Poller};
    use crate::pool::BufferPool;

    if config.tcp.is_none() && config.unix.is_none() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "server needs at least one of a TCP address or a Unix socket path",
        ));
    }
    // A 10k-connection default outruns common 1024-fd soft limits; raise
    // soft→hard up front (best effort — the connection gate still bounds
    // correctly if the hard limit is lower than the cap).
    let _ = crate::poll::raise_nofile_limit();

    let shards = config.effective_shards();
    let gate = AdmissionGate::new(config.capacity);
    let stats = Arc::new(ServerStats::new(&config.obs));
    // One slab pool shared by the ingest path (socket → stack buffer) and
    // the engine workers (work/repair buffers); recycled when replies
    // finish flushing.
    let pool = Arc::new(BufferPool::new(
        stats.pool_hits.clone(),
        stats.pool_misses.clone(),
    ));
    let (batcher_tx, batcher_rx) = channel::unbounded();
    let (engine_tx, engine_rx) = channel::unbounded();

    let shared = Arc::new(Shared {
        gate: gate.clone(),
        conn_gate: AdmissionGate::new(config.max_connections.max(1)),
        stats: Arc::clone(&stats),
        batcher_tx,
        draining: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        drain_acked: AtomicBool::new(false),
        wake: Mutex::new(Vec::new()),
    });

    let mut threads = Vec::new();

    {
        let rx = batcher_rx;
        let tx = engine_tx;
        let gate = gate.clone();
        let batch = config.batch.clone();
        let batch_hist = stats.stage_batch.clone();
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-batcher".into())
                .spawn(move || run_batcher(rx, tx, gate, batch, batch_hist))?,
        );
    }
    // One registry instance shared by every worker clone, so a stream's
    // calibrator state survives whichever worker picks up its next batch.
    let mut engine_config = config.engine.clone();
    if config.auto_tune && engine_config.tuners.is_none() {
        engine_config.tuners = Some(TunerRegistry::new());
    }
    for i in 0..config.engine_workers.max(1) {
        let rx = engine_rx.clone();
        let engine = engine_config.clone();
        let stats = Arc::clone(&stats);
        let pool = Arc::clone(&pool);
        threads.push(
            std::thread::Builder::new()
                .name(format!("preflightd-engine-{i}"))
                .spawn(move || run_engine_worker(rx, engine, stats, pool))?,
        );
    }
    drop(engine_rx);

    let mut tcp_addr = None;
    let mut tcp_listeners: Vec<Option<TcpListener>> = (0..shards).map(|_| None).collect();
    if let Some(addr) = &config.tcp {
        if shards == 1 {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            tcp_listeners[0] = Some(listener);
        } else {
            // Every shard binds its own `SO_REUSEPORT` listener so the
            // kernel spreads accepts across the poll threads. Bind the
            // first, then point the rest at its *concrete* address, so an
            // ephemeral `:0` request lands every shard on the same port.
            use std::net::ToSocketAddrs;
            let sa = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "TCP address resolved to nothing")
            })?;
            let first = crate::poll::reuseport_tcp_listener(sa)?;
            let bound = first.local_addr()?;
            tcp_addr = Some(bound);
            tcp_listeners[0] = Some(first);
            for slot in tcp_listeners.iter_mut().skip(1) {
                *slot = Some(crate::poll::reuseport_tcp_listener(bound)?);
            }
        }
    }

    let mut unix_path = None;
    let mut unix_listener = None;
    if let Some(path) = &config.unix {
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        unix_listener = Some(listener);
    }

    // Per-shard pollers, wakers, and channels, all created before any loop
    // thread starts: every waker is installed in `Shared` (so `begin_drain`
    // can always interrupt every poll wait) and the full set of Unix
    // handoff lanes (inbox sender + waker per shard) is cloned into every
    // shard before the first accept can happen.
    let mut lanes: Vec<(channel::Sender<Handoff>, WakeFn)> = Vec::with_capacity(shards);
    let mut shard_parts = Vec::with_capacity(shards);
    for _ in 0..shards {
        let poller = Poller::new()?;
        let (wk, wake_reader) = waker()?;
        let wake: WakeFn = Arc::new(move || wk.wake());
        shared.add_wake(Arc::clone(&wake));
        let (reply_tx, reply_rx) = channel::unbounded();
        let (handoff_tx, handoff_rx) = channel::unbounded();
        lanes.push((handoff_tx, Arc::clone(&wake)));
        shard_parts.push((poller, wake_reader, wake, reply_tx, reply_rx, handoff_rx));
    }
    for (shard, (poller, wake_reader, wake, reply_tx, reply_rx, handoff_rx)) in
        shard_parts.into_iter().enumerate()
    {
        let loop_cfg = LoopConfig {
            shard,
            tcp: tcp_listeners[shard].take(),
            unix: if shard == 0 {
                unix_listener.take()
            } else {
                None
            },
            shared: Arc::clone(&shared),
            pool: Arc::clone(&pool),
            wake,
            reply_tx,
            reply_rx,
            wake_reader,
            poller,
            handoff_rx,
            handoff: lanes.clone(),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("preflightd-loop-{shard}"))
                .spawn(move || run_event_loop(loop_cfg))?,
        );
    }

    let mut metrics_addr = None;
    if let Some(addr) = &config.metrics_addr {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        metrics_addr = Some(listener.local_addr()?);
        let obs = config.obs.clone();
        let scrape_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("preflightd-metrics".into())
                .spawn(move || {
                    run_metrics_listener(listener, obs, move || {
                        scrape_shared.stopped.load(Ordering::SeqCst)
                    });
                })?,
        );
    }

    Ok(ServerHandle {
        shared,
        tcp_addr,
        unix_path,
        metrics_addr,
        threads: Mutex::new(threads),
    })
}
