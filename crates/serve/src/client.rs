//! Blocking client for the `preflightd` wire protocol.
//!
//! One [`Client`] owns one connection (TCP or Unix) and speaks the
//! length-prefixed envelope format from [`crate::wire`]. The common path is
//! [`Client::submit`]: send a frame stack, block for the repaired stack and
//! its telemetry trailer. [`Client::send_submit`]/[`Client::recv_response`]
//! split that round trip for callers that want several requests in flight
//! on one connection.

use crate::wire::{
    read_message, write_message, BusyReply, DrainSummary, ErrorReply, FramePayload, Message,
    SubmitRequest, SubmitResponse, WireError,
};
use preflight_obs::Snapshot;
use preflight_supervisor::RetryPolicy;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// Malformed or unexpected bytes on the wire.
    Wire(WireError),
    /// The server's bounded queue was full; retry later.
    Busy(BusyReply),
    /// The server refused or failed the request.
    Server(ErrorReply),
    /// A reply arrived that does not answer what was asked.
    Unexpected {
        /// What the call was waiting for (e.g. `"Response/Busy/Error"`).
        wanted: &'static str,
        /// What actually arrived, so protocol drift is diagnosable from
        /// the error alone.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy(b) => write!(
                f,
                "server busy: {}/{} requests in flight",
                b.in_flight, b.capacity
            ),
            ClientError::Server(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            ClientError::Unexpected { wanted, got } => {
                write!(f, "unexpected reply: wanted {wanted}, got {got}")
            }
        }
    }
}

/// Short description of a message for [`ClientError::Unexpected`]: the
/// variant name plus the identifying field that pins down *which* exchange
/// the stray reply belonged to.
fn describe(msg: &Message) -> String {
    match msg {
        Message::Submit(s) => format!("Submit(request {})", s.request_id),
        Message::Response(r) => format!("Response(request {})", r.request_id),
        Message::Busy(b) => format!("Busy(request {})", b.request_id),
        Message::Error(e) => format!("Error(request {}, {:?})", e.request_id, e.code),
        Message::Drain => "Drain".to_owned(),
        Message::DrainAck(_) => "DrainAck".to_owned(),
        Message::Ping(t) => format!("Ping({t})"),
        Message::Pong(t) => format!("Pong({t})"),
        Message::StatsRequest => "StatsRequest".to_owned(),
        Message::StatsReply(_) => "StatsReply".to_owned(),
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Per-request knobs with paper-faithful defaults (Λ=80, Υ=4).
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Telemetry-stream identity; frames batch only within a stream.
    pub stream_id: u64,
    /// Sensitivity Λ in percent (0..=100).
    pub lambda: u8,
    /// Temporal window depth Υ (even, 2..=16).
    pub upsilon: u8,
    /// End-of-stream: forces the batch containing this request to flush
    /// immediately, so the reply covers exactly the submitted frames.
    pub eos: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            stream_id: 0,
            lambda: 80,
            upsilon: 4,
            eos: true,
        }
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a `preflightd` daemon.
///
/// Build one with [`crate::builder::ClientBuilder`], which also carries
/// connect/IO timeouts, a default retry policy, and a default stream id.
pub struct Client {
    transport: Transport,
    next_request_id: u64,
    /// Builder-configured policy [`Client::submit`] applies to `Busy`
    /// rejections. `None` (the default) fails fast.
    pub(crate) retry: Option<RetryPolicy>,
    /// Builder-configured stream id for [`Client::default_options`].
    pub(crate) default_stream: u64,
}

impl Client {
    pub(crate) fn from_tcp(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true)?;
        Ok(Client {
            transport: Transport::Tcp(stream),
            next_request_id: 1,
            retry: None,
            default_stream: 0,
        })
    }

    #[cfg(unix)]
    pub(crate) fn from_unix(stream: std::os::unix::net::UnixStream) -> Result<Self, ClientError> {
        Ok(Client {
            transport: Transport::Unix(stream),
            next_request_id: 1,
            retry: None,
            default_stream: 0,
        })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    /// Fails if the address does not resolve or the connection is refused.
    #[deprecated(
        since = "0.9.0",
        note = "use `ClientBuilder::new().tcp(addr).connect()` instead"
    )]
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Client::from_tcp(TcpStream::connect(addr)?)
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    /// Fails if the socket path cannot be connected to.
    #[cfg(unix)]
    #[deprecated(
        since = "0.9.0",
        note = "use `ClientBuilder::new().unix(path).connect()` instead"
    )]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Client::from_unix(std::os::unix::net::UnixStream::connect(path)?)
    }

    /// [`SubmitOptions`] preloaded with this client's builder-configured
    /// stream id (paper-faithful Λ/Υ defaults otherwise).
    pub fn default_options(&self) -> SubmitOptions {
        SubmitOptions {
            stream_id: self.default_stream,
            ..SubmitOptions::default()
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Round-trips a ping token.
    ///
    /// # Errors
    /// Fails on transport problems or a non-`Pong` reply.
    pub fn ping(&mut self, token: u64) -> Result<u64, ClientError> {
        write_message(&mut self.transport, &Message::Ping(token))?;
        match read_message(&mut self.transport)? {
            Message::Pong(t) => Ok(t),
            other => Err(ClientError::Unexpected {
                wanted: "Pong",
                got: describe(&other),
            }),
        }
    }

    /// Sends a submit without waiting for its reply. Returns the request id
    /// to match against [`Client::recv_response`].
    ///
    /// # Errors
    /// Fails on transport problems.
    pub fn send_submit(
        &mut self,
        payload: FramePayload,
        opts: &SubmitOptions,
    ) -> Result<u64, ClientError> {
        let request_id = self.fresh_id();
        let request = SubmitRequest {
            request_id,
            stream_id: opts.stream_id,
            lambda: opts.lambda,
            upsilon: opts.upsilon,
            eos: opts.eos,
            payload,
        };
        write_message(&mut self.transport, &Message::Submit(request))?;
        Ok(request_id)
    }

    /// Blocks for the next reply to an outstanding submit. `Busy` and
    /// server-error replies surface as [`ClientError`] variants carrying
    /// the rejected request's id.
    ///
    /// # Errors
    /// Fails on transport problems, rejection replies, or protocol
    /// violations.
    pub fn recv_response(&mut self) -> Result<SubmitResponse, ClientError> {
        match read_message(&mut self.transport)? {
            Message::Response(r) => Ok(r),
            Message::Busy(b) => Err(ClientError::Busy(b)),
            Message::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected {
                wanted: "Response/Busy/Error",
                got: describe(&other),
            }),
        }
    }

    /// Submits a frame stack and blocks for the repaired stack plus its
    /// telemetry trailer.
    ///
    /// A builder-configured retry policy
    /// ([`crate::builder::ClientBuilder::retry`]) is applied to `Busy`
    /// rejections here; without one (the default, and always the case for
    /// the deprecated constructors) `Busy` fails fast.
    ///
    /// # Errors
    /// Fails on transport problems, `Busy` rejection, or server errors.
    pub fn submit(
        &mut self,
        payload: FramePayload,
        opts: &SubmitOptions,
    ) -> Result<SubmitResponse, ClientError> {
        match self.retry {
            Some(policy) => self.submit_retrying(payload, opts, &policy),
            None => self.submit_once(payload, opts),
        }
    }

    fn submit_once(
        &mut self,
        payload: FramePayload,
        opts: &SubmitOptions,
    ) -> Result<SubmitResponse, ClientError> {
        let request_id = self.send_submit(payload, opts)?;
        let response = self.recv_response()?;
        if response.request_id != request_id {
            return Err(ClientError::Unexpected {
                wanted: "Response for the submitted request",
                got: format!("Response(request {})", response.request_id),
            });
        }
        Ok(response)
    }

    /// [`Client::submit`] with bounded, jittered retry on `Busy`
    /// rejections: attempt `k` sleeps `policy.backoff(stream_id, k)`
    /// before resubmitting, up to `policy.max_retries` retries. Every
    /// other error — transport, wire, server — still fails fast; only
    /// explicit backpressure is worth waiting out. The retries consumed
    /// are surfaced in the response's [`crate::telemetry::RequestStats::net_retries`]
    /// trailer field.
    ///
    /// # Errors
    /// Fails on transport problems, server errors, or `Busy` rejection on
    /// the final permitted attempt.
    pub fn submit_with_retry(
        &mut self,
        payload: FramePayload,
        opts: &SubmitOptions,
        policy: &RetryPolicy,
    ) -> Result<SubmitResponse, ClientError> {
        self.submit_retrying(payload, opts, policy)
    }

    fn submit_retrying(
        &mut self,
        payload: FramePayload,
        opts: &SubmitOptions,
        policy: &RetryPolicy,
    ) -> Result<SubmitResponse, ClientError> {
        let mut retries = 0u32;
        loop {
            match self.submit_once(payload.clone(), opts) {
                Ok(mut response) => {
                    response.stats.net_retries = response.stats.net_retries.saturating_add(retries);
                    return Ok(response);
                }
                Err(ClientError::Busy(b)) => {
                    if retries >= policy.max_retries {
                        return Err(ClientError::Busy(b));
                    }
                    retries += 1;
                    std::thread::sleep(policy.backoff(opts.stream_id, retries));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the daemon's metrics registry: the same point-in-time
    /// snapshot the `/metrics` scrape endpoint renders.
    ///
    /// # Errors
    /// Fails on transport problems or a non-`StatsReply` reply.
    pub fn stats(&mut self) -> Result<Snapshot, ClientError> {
        write_message(&mut self.transport, &Message::StatsRequest)?;
        match read_message(&mut self.transport)? {
            Message::StatsReply(snap) => Ok(snap),
            other => Err(ClientError::Unexpected {
                wanted: "StatsReply",
                got: describe(&other),
            }),
        }
    }

    /// Asks the daemon to drain: finish in-flight work, refuse new work,
    /// and acknowledge with completion counters.
    ///
    /// # Errors
    /// Fails on transport problems or a non-`DrainAck` reply.
    pub fn drain(&mut self) -> Result<DrainSummary, ClientError> {
        write_message(&mut self.transport, &Message::Drain)?;
        match read_message(&mut self.transport)? {
            Message::DrainAck(s) => Ok(s),
            other => Err(ClientError::Unexpected {
                wanted: "DrainAck",
                got: describe(&other),
            }),
        }
    }
}
