//! `preflightd` — the batch-serving preprocessing daemon.
//!
//! ```text
//! preflightd [--tcp ADDR] [--unix PATH] [--metrics-addr ADDR] [--capacity N]
//!            [--max-conns N] [--batch-frames N] [--batch-delay-ms N]
//!            [--threads N] [--workers N] [--shards N]
//!            [--kernel sweep|scalar|bitsliced] [--auto-tune]
//! ```
//!
//! At least one of `--tcp`/`--unix` is required. The daemon serves until a
//! wire-level `Drain` arrives or SIGTERM/SIGINT is delivered, then flushes
//! in-flight batches and exits 0.

use preflight_serve::server::ServerConfig;
use preflight_serve::signal;
use preflight_serve::ServerBuilder;
use std::time::Duration;

fn print_usage() {
    eprintln!("usage: preflightd [--tcp ADDR] [--unix PATH] [options]");
    eprintln!();
    eprintln!("  --tcp ADDR           TCP listen address, e.g. 127.0.0.1:7733");
    eprintln!("  --unix PATH          Unix socket path, e.g. /tmp/preflightd.sock");
    eprintln!("  --metrics-addr ADDR  Prometheus /metrics listener, e.g. 127.0.0.1:9090");
    eprintln!("  --capacity N         bounded-queue slots before Busy (default 64)");
    eprintln!("  --max-conns N        concurrent connections before Busy (default 10240)");
    eprintln!("  --batch-frames N     base batch depth target (default 16)");
    eprintln!("  --batch-delay-ms N   batch flush deadline in ms (default 5)");
    eprintln!("  --threads N          engine threads per batch (default: cores)");
    eprintln!("  --workers N          concurrent engine workers (default 2)");
    eprintln!("  --shards N           event-loop poll threads (default: min(4, cores))");
    eprintln!("  --kernel NAME        voter kernel: 'sweep' (default), 'scalar' or 'bitsliced'");
    eprintln!("  --auto-tune          calibrate per-stream \u{39b}/\u{3a5} online from rolling \u{3a6} statistics");
}

struct Args {
    config: ServerConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--tcp" => config.tcp = Some(value(&mut i, "--tcp")?),
            "--unix" => config.unix = Some(value(&mut i, "--unix")?.into()),
            "--metrics-addr" => {
                config.metrics_addr = Some(value(&mut i, "--metrics-addr")?);
            }
            "--capacity" => {
                config.capacity = parse_positive(&value(&mut i, "--capacity")?, "--capacity")?;
            }
            "--max-conns" => {
                config.max_connections =
                    parse_positive(&value(&mut i, "--max-conns")?, "--max-conns")?;
            }
            "--batch-frames" => {
                config.batch.target_frames =
                    parse_positive(&value(&mut i, "--batch-frames")?, "--batch-frames")?;
            }
            "--batch-delay-ms" => {
                let ms: usize =
                    parse_positive(&value(&mut i, "--batch-delay-ms")?, "--batch-delay-ms")?;
                config.batch.max_delay = Duration::from_millis(ms as u64);
            }
            "--threads" => {
                config.engine.threads = parse_positive(&value(&mut i, "--threads")?, "--threads")?;
            }
            "--workers" => {
                config.engine_workers = parse_positive(&value(&mut i, "--workers")?, "--workers")?;
            }
            "--shards" => {
                config.shards = parse_positive(&value(&mut i, "--shards")?, "--shards")?;
            }
            "--kernel" => {
                config.engine.kernel = value(&mut i, "--kernel")?
                    .parse()
                    .map_err(|e| format!("--kernel: {e}"))?;
            }
            "--auto-tune" => config.auto_tune = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if config.tcp.is_none() && config.unix.is_none() {
        return Err("at least one of --tcp or --unix is required".to_owned());
    }
    Ok(Args { config })
}

fn parse_positive(raw: &str, flag: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer, got '{raw}'")),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("preflightd: {msg}");
                eprintln!();
            }
            print_usage();
            std::process::exit(2);
        }
    };

    signal::install();

    let handle = match ServerBuilder::from(args.config).serve() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("preflightd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    if let Some(addr) = handle.tcp_addr() {
        println!("preflightd: listening on tcp://{addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("preflightd: listening on unix://{}", path.display());
    }
    if let Some(addr) = handle.metrics_addr() {
        println!("preflightd: serving metrics on http://{addr}/metrics");
    }

    // Serve until a signal lands or a wire-level Drain completes.
    while !signal::triggered() && !handle.drain_acked() {
        std::thread::sleep(Duration::from_millis(50));
    }

    let summary = handle.drain();
    println!(
        "preflightd: drained ({} completed, {} rejected busy)",
        summary.completed, summary.rejected
    );
    let s = handle.stats();
    println!("{}", s.summary());
}
