//! Per-request and whole-server telemetry.
//!
//! Every response carries a [`RequestStats`] trailer so a client can see
//! exactly what its frames went through: how much repair happened, how long
//! the request waited behind the bounded queue, how deep the batch it rode
//! in was, and which rung of the degradation ladder actually served it.
//!
//! Whole-server counters live in the [`preflight_obs`] registry.
//! [`ServerStats`] is a bundle of pre-resolved handles into that registry,
//! so the hot paths (admission, engine, writer) never take the
//! registration lock. The same registry serves three consumers — the
//! `/metrics` Prometheus endpoint, the `Stats` wire message, and the
//! human [`ServerStats::summary`] line — so the numbers cannot diverge
//! between the log line and the scrape endpoint.

use preflight_obs::{Counter, Gauge, Histogram, Obs, Snapshot, STAGE_SECONDS};
use preflight_supervisor::FtLevel;
use std::fmt;

/// Counter family: submissions admitted past the bounded queue.
pub const ADMITTED_TOTAL: &str = "serve_requests_admitted_total";
/// Counter family: responses fully served.
pub const COMPLETED_TOTAL: &str = "serve_requests_completed_total";
/// Counter family: submissions rejected with `Busy`.
pub const REJECTED_BUSY_TOTAL: &str = "serve_requests_rejected_busy_total";
/// Counter family: envelopes that failed wire-level validation.
pub const WIRE_ERRORS_TOTAL: &str = "serve_wire_errors_total";
/// Counter family: batches dispatched to the engine.
pub const BATCHES_TOTAL: &str = "serve_batches_total";
/// Counter family: batches that finished below the top ladder rung.
pub const BATCHES_DEGRADED_TOTAL: &str = "serve_batches_degraded_total";
/// Counter family: connections accepted over the server's lifetime.
pub const CONNECTIONS_TOTAL: &str = "serve_connections_total";
/// Counter family: connections rejected at the concurrent-connection cap.
pub const CONNECTIONS_REJECTED_TOTAL: &str = "serve_connections_rejected_total";
/// Counter family: samples the engine modified across all batches.
pub const SAMPLES_REPAIRED_TOTAL: &str = "serve_samples_repaired_total";
/// Counter family: bits flipped back across all batches.
pub const BITS_REPAIRED_TOTAL: &str = "serve_bits_repaired_total";
/// Counter family: supervised engine attempts beyond the first per batch.
pub const RETRIES_TOTAL: &str = "serve_retries_total";
/// Counter family (labelled `rung="..."`): steps taken down the
/// degradation ladder, keyed by the rung stepped *to*.
pub const DEGRADATION_TRANSITIONS_TOTAL: &str = "serve_degradation_transitions_total";
/// Counter family: event-loop poll wakeups (readiness, timer, or waker).
pub const POLL_WAKEUPS_TOTAL: &str = "serve_poll_wakeups_total";
/// Counter family (labelled `shard="..."`): connections accepted by each
/// event-loop shard.
pub const SHARD_ACCEPTS_TOTAL: &str = "serve_shard_accepts_total";
/// Counter family (labelled `shard="..."`): poll wakeups per event-loop
/// shard (the unlabelled [`POLL_WAKEUPS_TOTAL`] stays the fleet total).
pub const SHARD_WAKEUPS_TOTAL: &str = "serve_shard_wakeups_total";
/// Counter family: ingest buffers served from the pixel pool.
pub const POOL_HITS_TOTAL: &str = "serve_pool_hits_total";
/// Counter family: ingest buffers that had to be freshly allocated.
pub const POOL_MISSES_TOTAL: &str = "serve_pool_misses_total";
/// Gauge family: connections currently registered with the event loop.
pub const OPEN_CONNECTIONS: &str = "serve_open_connections";

/// Static label values for shard-indexed counters (labels must be
/// `&'static str`; shards are capped at 16 in `ServerConfig`).
pub(crate) fn shard_label(shard: usize) -> &'static str {
    const LABELS: [&str; 16] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    LABELS[shard.min(LABELS.len() - 1)]
}

/// The `stage` label values every serve-side [`STAGE_SECONDS`] histogram
/// uses, in pipeline order: accept, readable-event service, admission,
/// queue wait, batch formation, engine service, response encode,
/// writable-event flush.
pub const SERVE_STAGES: [&str; 8] = [
    "accept",
    "readable",
    "admission",
    "queue",
    "batch",
    "engine",
    "write",
    "writable",
];

/// Telemetry trailer attached to every [`crate::wire::SubmitResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// Samples the engine modified within this request's frames.
    pub samples_changed: u64,
    /// Total bits that differ between the submitted and repaired frames
    /// (popcount of the XOR over every Υ-window of the request).
    pub bits_flipped: u64,
    /// Voter agreement in permille: the fraction of samples the Υ-voter
    /// left untouched (1000 = the voters agreed everywhere).
    pub voter_agreement_permille: u32,
    /// Microseconds between admission and dispatch to the engine.
    pub queue_wait_us: u64,
    /// Microseconds the engine spent preprocessing the batch.
    pub service_us: u64,
    /// Temporal depth (frames) of the batch this request was coalesced into.
    pub batch_frames: u32,
    /// Number of requests coalesced into that batch.
    pub batch_requests: u32,
    /// Degradation-ladder rung that produced the output.
    pub rung: FtLevel,
    /// Engine attempts consumed across all rungs (1 = first try).
    pub attempts: u32,
    /// Network-level retries spent before this response arrived: `Busy`
    /// backoff retries by the client plus failover re-forwards by a
    /// router. 0 = first try succeeded.
    pub net_retries: u32,
    /// 1-based id of the fleet backend that served the request, stamped by
    /// a router in front of the daemon. 0 = served directly.
    pub served_by: u32,
    /// Λ the auto-tuner chose for this batch (`--auto-tune` only).
    /// Meaningless while [`tuned_upsilon`](Self::tuned_upsilon) is 0.
    pub tuned_lambda: u8,
    /// Υ the auto-tuner chose for this batch. 0 = the request was served
    /// with its requested parameters (tuning off or still warming up).
    pub tuned_upsilon: u8,
    /// Frozen width of bit window A the tuner applied (0 when untuned).
    pub tuned_window_a: u8,
    /// Frozen width of bit window C the tuner applied (0 when untuned).
    pub tuned_window_c: u8,
    /// How many times this request's stream calibrator has re-adopted new
    /// boundaries since it was created (0 when untuned or never drifted).
    pub tuner_recalibrations: u32,
}

impl Default for RequestStats {
    fn default() -> Self {
        RequestStats {
            samples_changed: 0,
            bits_flipped: 0,
            voter_agreement_permille: 1000,
            queue_wait_us: 0,
            service_us: 0,
            batch_frames: 0,
            batch_requests: 0,
            rung: FtLevel::AlgoNgst,
            attempts: 1,
            net_retries: 0,
            served_by: 0,
            tuned_lambda: 0,
            tuned_upsilon: 0,
            tuned_window_a: 0,
            tuned_window_c: 0,
            tuner_recalibrations: 0,
        }
    }
}

impl fmt::Display for RequestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "changed {} sample(s), {} bit(s) flipped, agreement {}.{}%, \
             waited {} us, served in {} us by {} (batch {} frame(s) / {} request(s), \
             {} attempt(s))",
            self.samples_changed,
            self.bits_flipped,
            self.voter_agreement_permille / 10,
            self.voter_agreement_permille % 10,
            self.queue_wait_us,
            self.service_us,
            self.rung,
            self.batch_frames,
            self.batch_requests,
            self.attempts
        )?;
        if self.net_retries > 0 {
            write!(f, ", {} net retr(ies)", self.net_retries)?;
        }
        if self.served_by > 0 {
            write!(f, ", via backend {}", self.served_by)?;
        }
        if self.tuned_upsilon > 0 {
            write!(
                f,
                ", tuned L={} U={} windows A={}/C={} ({} recal)",
                self.tuned_lambda,
                self.tuned_upsilon,
                self.tuned_window_a,
                self.tuned_window_c,
                self.tuner_recalibrations
            )?;
        }
        Ok(())
    }
}

/// Wire code for a ladder rung.
pub(crate) fn ft_level_code(level: FtLevel) -> u8 {
    match level {
        FtLevel::AlgoNgst => 0,
        FtLevel::BitVoter => 1,
        FtLevel::MedianSmoother => 2,
        FtLevel::Passthrough => 3,
    }
}

/// Ladder rung for a wire code.
pub(crate) fn ft_level_from_code(code: u8) -> Option<FtLevel> {
    match code {
        0 => Some(FtLevel::AlgoNgst),
        1 => Some(FtLevel::BitVoter),
        2 => Some(FtLevel::MedianSmoother),
        3 => Some(FtLevel::Passthrough),
        _ => None,
    }
}

/// Static metric-label value for a ladder rung.
pub(crate) fn rung_label(level: FtLevel) -> &'static str {
    match level {
        FtLevel::AlgoNgst => "algo-ngst",
        FtLevel::BitVoter => "bit-voter",
        FtLevel::MedianSmoother => "median-smoother",
        FtLevel::Passthrough => "passthrough",
    }
}

/// Pre-resolved handles into the daemon's [`Obs`] registry, shared across
/// every thread. Bumping a field is one relaxed atomic add; nothing here
/// takes the registration lock after construction.
#[derive(Debug, Clone)]
pub struct ServerStats {
    obs: Obs,
    /// Submissions admitted past the bounded queue.
    pub admitted: Counter,
    /// Responses fully served.
    pub completed: Counter,
    /// Submissions rejected with `Busy`.
    pub rejected_busy: Counter,
    /// Envelopes that failed wire-level validation.
    pub wire_errors: Counter,
    /// Batches dispatched to the engine.
    pub batches: Counter,
    /// Batches that finished below the top ladder rung.
    pub degraded_batches: Counter,
    /// Connections accepted over the server's lifetime.
    pub connections: Counter,
    /// Connections rejected because the concurrent-connection cap was hit.
    pub rejected_connections: Counter,
    /// Samples the engine modified, summed over every batch.
    pub samples_repaired: Counter,
    /// Bits flipped back, summed over every batch.
    pub bits_repaired: Counter,
    /// Supervised attempts beyond the first, summed over every batch.
    pub retries: Counter,
    /// Event-loop poll wakeups (readiness, timer expiry, or waker).
    pub poll_wakeups: Counter,
    /// Ingest buffers served from the pixel pool.
    pub pool_hits: Counter,
    /// Ingest buffers that had to be freshly allocated.
    pub pool_misses: Counter,
    /// Connections currently registered with the event loop.
    pub open_connections: Gauge,
    /// Time to accept and register one connection.
    pub stage_accept: Histogram,
    /// Time servicing one readable event (reads + dispatch).
    pub stage_readable: Histogram,
    /// Time servicing one writable event (flushing buffered replies).
    pub stage_writable: Histogram,
    /// Time from envelope decode to a queued admission verdict.
    pub stage_admission: Histogram,
    /// Time a request waited between admission and engine dispatch.
    pub stage_queue: Histogram,
    /// Time a batch group stayed open before flushing to the engine.
    pub stage_batch: Histogram,
    /// Time the engine spent serving one batch (ladder walk included).
    pub stage_engine: Histogram,
    /// Time to serialise one response envelope onto the socket.
    pub stage_write: Histogram,
}

impl ServerStats {
    /// Resolves every handle against `obs`. With a disabled registry all
    /// handles are inert and reads return zero.
    pub fn new(obs: &Obs) -> Self {
        let stage = |s: &'static str| obs.histogram(STAGE_SECONDS, Some(("stage", s)));
        ServerStats {
            obs: obs.clone(),
            admitted: obs.counter(ADMITTED_TOTAL, None),
            completed: obs.counter(COMPLETED_TOTAL, None),
            rejected_busy: obs.counter(REJECTED_BUSY_TOTAL, None),
            wire_errors: obs.counter(WIRE_ERRORS_TOTAL, None),
            batches: obs.counter(BATCHES_TOTAL, None),
            degraded_batches: obs.counter(BATCHES_DEGRADED_TOTAL, None),
            connections: obs.counter(CONNECTIONS_TOTAL, None),
            rejected_connections: obs.counter(CONNECTIONS_REJECTED_TOTAL, None),
            samples_repaired: obs.counter(SAMPLES_REPAIRED_TOTAL, None),
            bits_repaired: obs.counter(BITS_REPAIRED_TOTAL, None),
            retries: obs.counter(RETRIES_TOTAL, None),
            poll_wakeups: obs.counter(POLL_WAKEUPS_TOTAL, None),
            pool_hits: obs.counter(POOL_HITS_TOTAL, None),
            pool_misses: obs.counter(POOL_MISSES_TOTAL, None),
            open_connections: obs.gauge(OPEN_CONNECTIONS, None),
            stage_accept: stage("accept"),
            stage_readable: stage("readable"),
            stage_writable: stage("writable"),
            stage_admission: stage("admission"),
            stage_queue: stage("queue"),
            stage_batch: stage("batch"),
            stage_engine: stage("engine"),
            stage_write: stage("write"),
        }
    }

    /// The registry every handle resolves into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Records one step down the degradation ladder, labelled by the rung
    /// stepped *to*. Cold path: degradations are rare, so the labelled
    /// counter is resolved on demand rather than pre-bundled per rung.
    pub fn degradation_transition(&self, to: FtLevel) {
        self.obs
            .counter(
                DEGRADATION_TRANSITIONS_TOTAL,
                Some(("rung", rung_label(to))),
            )
            .inc();
    }

    /// Resolves the `shard="i"`-labelled accept and wakeup counters for
    /// one event-loop shard. Called once per shard at server start, so the
    /// per-event hot path bumps pre-resolved handles only.
    pub fn shard_counters(&self, shard: usize) -> (Counter, Counter) {
        let l = shard_label(shard);
        (
            self.obs.counter(SHARD_ACCEPTS_TOTAL, Some(("shard", l))),
            self.obs.counter(SHARD_WAKEUPS_TOTAL, Some(("shard", l))),
        )
    }

    /// A point-in-time copy of the whole registry (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.obs.snapshot()
    }

    /// One-line summary for logs and drain reports, formatted from the
    /// same snapshot the scrape endpoint serves.
    pub fn summary(&self) -> String {
        format_summary(&self.snapshot())
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new(&Obs::new())
    }
}

/// Renders the human one-line summary from a structured [`Snapshot`] —
/// the only formatter, so the log line, the drain report and `preflight
/// stats` all agree with `/metrics` by construction.
pub fn format_summary(snap: &Snapshot) -> String {
    let c = |name: &str| snap.counter(name, None).unwrap_or(0);
    format!(
        "admitted {}, completed {}, busy-rejected {}, wire errors {}, \
         batches {} ({} degraded), connections {} ({} rejected)",
        c(ADMITTED_TOTAL),
        c(COMPLETED_TOTAL),
        c(REJECTED_BUSY_TOTAL),
        c(WIRE_ERRORS_TOTAL),
        c(BATCHES_TOTAL),
        c(BATCHES_DEGRADED_TOTAL),
        c(CONNECTIONS_TOTAL),
        c(CONNECTIONS_REJECTED_TOTAL),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft_level_codes_roundtrip() {
        for level in [
            FtLevel::AlgoNgst,
            FtLevel::BitVoter,
            FtLevel::MedianSmoother,
            FtLevel::Passthrough,
        ] {
            assert_eq!(ft_level_from_code(ft_level_code(level)), Some(level));
        }
        assert_eq!(ft_level_from_code(4), None);
    }

    #[test]
    fn display_is_human_readable() {
        let s = RequestStats {
            samples_changed: 3,
            voter_agreement_permille: 997,
            ..RequestStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("changed 3 sample(s)"));
        assert!(text.contains("99.7%"));
    }

    #[test]
    fn counters_accumulate_into_the_registry() {
        let obs = Obs::new();
        let stats = ServerStats::new(&obs);
        stats.admitted.inc();
        stats.admitted.inc();
        stats.rejected_busy.inc();
        assert_eq!(stats.admitted.get(), 2);
        assert_eq!(stats.rejected_busy.get(), 1);
        // The registry sees the same cells the handles bump.
        let snap = obs.snapshot();
        assert_eq!(snap.counter(ADMITTED_TOTAL, None), Some(2));
        assert!(stats.summary().contains("admitted 2"));
    }

    #[test]
    fn summary_and_snapshot_cannot_diverge() {
        let stats = ServerStats::default();
        stats.completed.add(7);
        stats.degradation_transition(FtLevel::BitVoter);
        let snap = stats.snapshot();
        assert_eq!(stats.summary(), format_summary(&snap));
        assert_eq!(
            snap.counter(DEGRADATION_TRANSITIONS_TOTAL, Some(("rung", "bit-voter"))),
            Some(1)
        );
    }

    #[test]
    fn disabled_registry_yields_inert_stats() {
        let stats = ServerStats::new(&Obs::disabled());
        stats.admitted.inc();
        assert_eq!(stats.admitted.get(), 0);
        assert!(stats.summary().contains("admitted 0"));
    }
}
