//! Per-request and whole-server telemetry.
//!
//! Every response carries a [`RequestStats`] trailer so a client can see
//! exactly what its frames went through: how much repair happened, how long
//! the request waited behind the bounded queue, how deep the batch it rode
//! in was, and which rung of the degradation ladder actually served it.

use preflight_supervisor::FtLevel;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Telemetry trailer attached to every [`crate::wire::SubmitResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// Samples the engine modified within this request's frames.
    pub samples_changed: u64,
    /// Total bits that differ between the submitted and repaired frames
    /// (popcount of the XOR over every Υ-window of the request).
    pub bits_flipped: u64,
    /// Voter agreement in permille: the fraction of samples the Υ-voter
    /// left untouched (1000 = the voters agreed everywhere).
    pub voter_agreement_permille: u32,
    /// Microseconds between admission and dispatch to the engine.
    pub queue_wait_us: u64,
    /// Microseconds the engine spent preprocessing the batch.
    pub service_us: u64,
    /// Temporal depth (frames) of the batch this request was coalesced into.
    pub batch_frames: u32,
    /// Number of requests coalesced into that batch.
    pub batch_requests: u32,
    /// Degradation-ladder rung that produced the output.
    pub rung: FtLevel,
    /// Engine attempts consumed across all rungs (1 = first try).
    pub attempts: u32,
}

impl Default for RequestStats {
    fn default() -> Self {
        RequestStats {
            samples_changed: 0,
            bits_flipped: 0,
            voter_agreement_permille: 1000,
            queue_wait_us: 0,
            service_us: 0,
            batch_frames: 0,
            batch_requests: 0,
            rung: FtLevel::AlgoNgst,
            attempts: 1,
        }
    }
}

impl fmt::Display for RequestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "changed {} sample(s), {} bit(s) flipped, agreement {}.{}%, \
             waited {} us, served in {} us by {} (batch {} frame(s) / {} request(s), \
             {} attempt(s))",
            self.samples_changed,
            self.bits_flipped,
            self.voter_agreement_permille / 10,
            self.voter_agreement_permille % 10,
            self.queue_wait_us,
            self.service_us,
            self.rung,
            self.batch_frames,
            self.batch_requests,
            self.attempts
        )
    }
}

/// Wire code for a ladder rung.
pub(crate) fn ft_level_code(level: FtLevel) -> u8 {
    match level {
        FtLevel::AlgoNgst => 0,
        FtLevel::BitVoter => 1,
        FtLevel::MedianSmoother => 2,
        FtLevel::Passthrough => 3,
    }
}

/// Ladder rung for a wire code.
pub(crate) fn ft_level_from_code(code: u8) -> Option<FtLevel> {
    match code {
        0 => Some(FtLevel::AlgoNgst),
        1 => Some(FtLevel::BitVoter),
        2 => Some(FtLevel::MedianSmoother),
        3 => Some(FtLevel::Passthrough),
        _ => None,
    }
}

/// Monotonic whole-server counters, shared across every thread of the
/// daemon and snapshotted by `Drain` acks and the loadgen.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Submissions admitted past the bounded queue.
    pub admitted: AtomicU64,
    /// Responses fully served.
    pub completed: AtomicU64,
    /// Submissions rejected with `Busy`.
    pub rejected_busy: AtomicU64,
    /// Envelopes that failed wire-level validation.
    pub wire_errors: AtomicU64,
    /// Batches dispatched to the engine.
    pub batches: AtomicU64,
    /// Batches that finished below the top ladder rung.
    pub degraded_batches: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections rejected because the concurrent-connection cap was hit.
    pub rejected_connections: AtomicU64,
}

impl ServerStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// One-line summary for logs and drain reports.
    pub fn summary(&self) -> String {
        format!(
            "admitted {}, completed {}, busy-rejected {}, wire errors {}, \
             batches {} ({} degraded), connections {} ({} rejected)",
            Self::get(&self.admitted),
            Self::get(&self.completed),
            Self::get(&self.rejected_busy),
            Self::get(&self.wire_errors),
            Self::get(&self.batches),
            Self::get(&self.degraded_batches),
            Self::get(&self.connections),
            Self::get(&self.rejected_connections),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft_level_codes_roundtrip() {
        for level in [
            FtLevel::AlgoNgst,
            FtLevel::BitVoter,
            FtLevel::MedianSmoother,
            FtLevel::Passthrough,
        ] {
            assert_eq!(ft_level_from_code(ft_level_code(level)), Some(level));
        }
        assert_eq!(ft_level_from_code(4), None);
    }

    #[test]
    fn display_is_human_readable() {
        let s = RequestStats {
            samples_changed: 3,
            voter_agreement_permille: 997,
            ..RequestStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("changed 3 sample(s)"));
        assert!(text.contains("99.7%"));
    }

    #[test]
    fn counters_accumulate() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.admitted);
        ServerStats::bump(&stats.admitted);
        ServerStats::bump(&stats.rejected_busy);
        assert_eq!(ServerStats::get(&stats.admitted), 2);
        assert_eq!(ServerStats::get(&stats.rejected_busy), 1);
        assert!(stats.summary().contains("admitted 2"));
    }
}
