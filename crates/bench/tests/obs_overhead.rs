//! Zero-overhead guard for the observability layer.
//!
//! The PR 2 throughput contract (`BENCH_preprocess.json`) was measured
//! through the free-function drivers. Those are now deprecated shims over
//! [`Preprocessor`], whose default handle is `Obs::disabled()` — so the
//! guard here is that a builder run with observability *off* stays within
//! 5 % of the PR 2 entry point on the same machine, same process, same
//! input (cross-machine wall-clock comparisons against the checked-in
//! JSON would only measure the CI host). A second, looser check keeps the
//! *enabled* path honest: attaching a live registry must not blow up the
//! hot loop, since per-tile instrumentation is one histogram observe and
//! the counters are flushed once per run.

#![allow(deprecated)] // the PR 2 shim IS the baseline under test

use preflight_bench::perf::{perf_algo, sample_u16, synthetic_stack};
use preflight_core::{preprocess_stack_tiled, ImageStack, Preprocessor, DEFAULT_TILE};
use preflight_obs::Obs;
use std::time::Instant;

fn best_secs(
    reps: usize,
    input: &ImageStack<u16>,
    mut pass: impl FnMut(&mut ImageStack<u16>),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut work = input.clone();
        let start = Instant::now();
        pass(&mut work);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn disabled_observability_stays_within_5_percent_of_the_pr2_baseline() {
    // The PR 2 acceptance cube (64×64×128) takes ~10 ms per pass, large
    // enough for best-of-N timing to be stable.
    let input: ImageStack<u16> = synthetic_stack(64, 64, 128, 0xA5A5, sample_u16);
    let algo = perf_algo();
    let reps = 7;

    let baseline = best_secs(reps, &input, |s| {
        preprocess_stack_tiled(&algo, s, DEFAULT_TILE);
    });
    let builder = Preprocessor::new(&algo).tile(DEFAULT_TILE); // obs disabled by default
    let disabled = best_secs(reps, &input, |s| {
        builder.run(s);
    });

    assert!(
        disabled <= baseline * 1.05,
        "obs-disabled builder regressed >5% vs the PR 2 driver: \
         {disabled:.6}s vs {baseline:.6}s"
    );
}

#[test]
fn enabled_observability_overhead_is_bounded() {
    let input: ImageStack<u16> = synthetic_stack(64, 64, 128, 0xA5A5, sample_u16);
    let algo = perf_algo();
    let reps = 7;

    let disabled_pp = Preprocessor::new(&algo).tile(DEFAULT_TILE);
    let disabled = best_secs(reps, &input, |s| {
        disabled_pp.run(s);
    });

    let obs = Obs::new();
    let enabled_pp = Preprocessor::new(&algo).tile(DEFAULT_TILE).observer(&obs);
    let enabled = best_secs(reps, &input, |s| {
        enabled_pp.run(s);
    });

    // Per run: 4 tile spans + 1 preprocess span + a handful of counter
    // adds against ~500k processed samples. 25% headroom absorbs CI
    // noise; real per-sample instrumentation would be orders beyond it.
    assert!(
        enabled <= disabled * 1.25,
        "live registry costs too much on the hot path: \
         {enabled:.6}s vs {disabled:.6}s"
    );
    let snap = obs.snapshot();
    assert_eq!(
        snap.counter("preprocess_runs_total", None),
        Some(reps as u64),
        "the timed passes must actually have been observed"
    );
}
