//! Zero-overhead guard for the observability layer.
//!
//! The PR 2 throughput contract (`BENCH_preprocess.json`) was measured
//! through the free-function drivers. Those are now deprecated shims over
//! [`Preprocessor`], whose default handle is `Obs::disabled()` — so the
//! guard here is that a builder run with observability *off* stays within
//! 5 % of the PR 2 entry point on the same machine, same process, same
//! input (cross-machine wall-clock comparisons against the checked-in
//! JSON would only measure the CI host). A second, looser check keeps the
//! *enabled* path honest: attaching a live registry must not blow up the
//! hot loop, since per-tile instrumentation is one histogram observe and
//! the counters are flushed once per run.
//!
//! Both tests time wall-clock passes, so they must not run concurrently
//! with each other (the harness runs `#[test]`s on parallel threads, and
//! on a small CI box two timing loops simply deschedule each other):
//! each one holds `TIMING_GATE` for its whole body. The A/B comparison
//! additionally interleaves its repetitions so a transient background
//! load spike cannot inflate only one side's entire sample.

#![allow(deprecated)] // the PR 2 shim IS the baseline under test

use preflight_bench::perf::{perf_algo, sample_u16, synthetic_stack};
use preflight_core::{preprocess_stack_tiled, ImageStack, Preprocessor, DEFAULT_TILE};
use preflight_obs::Obs;
use std::sync::Mutex;
use std::time::Instant;

static TIMING_GATE: Mutex<()> = Mutex::new(());

fn timed_pass(input: &ImageStack<u16>, pass: &mut impl FnMut(&mut ImageStack<u16>)) -> f64 {
    let mut work = input.clone();
    let start = Instant::now();
    pass(&mut work);
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` for two alternating passes over the same input; returns
/// `(best_a, best_b)`.
fn best_secs_interleaved(
    reps: usize,
    input: &ImageStack<u16>,
    mut pass_a: impl FnMut(&mut ImageStack<u16>),
    mut pass_b: impl FnMut(&mut ImageStack<u16>),
) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_a = best_a.min(timed_pass(input, &mut pass_a));
        best_b = best_b.min(timed_pass(input, &mut pass_b));
    }
    (best_a, best_b)
}

/// Runs `measure` up to `attempts` times and returns the first
/// measurement satisfying `ok`, else the last one. A sustained
/// system-wide stall (CPU throttling, a noisy CI neighbour) can poison
/// every repetition of one attempt even with interleaving and
/// best-of-N; a genuine regression fails every attempt.
fn measured_with_retry(
    attempts: usize,
    mut measure: impl FnMut() -> (f64, f64),
    ok: impl Fn(f64, f64) -> bool,
) -> (f64, f64) {
    let mut last = measure();
    for _ in 1..attempts {
        if ok(last.0, last.1) {
            break;
        }
        last = measure();
    }
    last
}

#[test]
fn disabled_observability_stays_within_5_percent_of_the_pr2_baseline() {
    let _gate = TIMING_GATE.lock().unwrap();
    // The PR 2 acceptance cube (64×64×128) takes ~10 ms per pass, large
    // enough for best-of-N timing to be stable.
    let input: ImageStack<u16> = synthetic_stack(64, 64, 128, 0xA5A5, sample_u16);
    let algo = perf_algo();
    let reps = 7;

    let builder = Preprocessor::new(&algo).tile(DEFAULT_TILE); // obs disabled by default
    let (baseline, disabled) = measured_with_retry(
        3,
        || {
            best_secs_interleaved(
                reps,
                &input,
                |s| {
                    preprocess_stack_tiled(&algo, s, DEFAULT_TILE);
                },
                |s| {
                    builder.run(s);
                },
            )
        },
        |baseline, disabled| disabled <= baseline * 1.05,
    );

    assert!(
        disabled <= baseline * 1.05,
        "obs-disabled builder regressed >5% vs the PR 2 driver: \
         {disabled:.6}s vs {baseline:.6}s"
    );
}

#[test]
fn enabled_observability_overhead_is_bounded() {
    let _gate = TIMING_GATE.lock().unwrap();
    let input: ImageStack<u16> = synthetic_stack(64, 64, 128, 0xA5A5, sample_u16);
    let algo = perf_algo();
    let reps = 7;

    let obs = Obs::new();
    let disabled_pp = Preprocessor::new(&algo).tile(DEFAULT_TILE);
    let enabled_pp = Preprocessor::new(&algo).tile(DEFAULT_TILE).observer(&obs);
    let (disabled, enabled) = measured_with_retry(
        3,
        || {
            best_secs_interleaved(
                reps,
                &input,
                |s| {
                    disabled_pp.run(s);
                },
                |s| {
                    enabled_pp.run(s);
                },
            )
        },
        |disabled, enabled| enabled <= disabled * 1.25,
    );

    // Per run: 4 tile spans + 1 preprocess span + a handful of counter
    // adds against ~500k processed samples. 25% headroom absorbs CI
    // noise; real per-sample instrumentation would be orders beyond it.
    assert!(
        enabled <= disabled * 1.25,
        "live registry costs too much on the hot path: \
         {enabled:.6}s vs {disabled:.6}s"
    );
    let snap = obs.snapshot();
    let runs = snap
        .counter("preprocess_runs_total", None)
        .expect("the timed passes must actually have been observed");
    assert!(
        runs >= reps as u64 && runs.is_multiple_of(reps as u64),
        "every retry attempt times {reps} observed passes, got {runs}"
    );
}
