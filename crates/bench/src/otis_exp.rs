//! The OTIS-side experiments: Figures 7 and 9 of the paper plus the §7.1
//! spatial-vs-spectral locality comparison.

use crate::report::{Accum, Figure, Scale, Series};
use preflight_core::{
    AlgoOtis, BitVoter, Cube, Image, MedianSmoother, PhysicalBounds, PlanePreprocessor, Sensitivity,
};
use preflight_datagen::planck::{max_radiance, DEFAULT_BANDS};
use preflight_datagen::{emissivity_scene, radiance_cube, temperature_scene, OtisScene};
use preflight_faults::{seeded_rng, Correlated, Uncorrelated};
use preflight_metrics::psi_capped;

/// The Γ₀ grid for the OTIS uncorrelated sweep (the paper highlights
/// Γ₀ = 0.05 → Ψ ≈ 12 % unprocessed, and `Algo_OTIS` dominance for
/// Γ₀ ≥ 0.025).
pub const OTIS_GAMMA0_GRID: [f64; 7] = [0.0025, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1];

/// The Γ_ini grid for the OTIS correlated sweep (the common breakdown point
/// sits near 0.2).
pub const OTIS_GAMMA_INI_GRID: [f64; 7] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4];

/// Builds the clean radiance cube of one scene.
fn scene_cube(scene: OtisScene, size: usize, seed: u64) -> Cube<f32> {
    let mut rng = seeded_rng(seed);
    let temp = temperature_scene(scene, size, size, &mut rng);
    let emis = emissivity_scene(size, size, &mut rng);
    radiance_cube(&temp, &emis, &DEFAULT_BANDS)
}

/// The radiance bounds `Algo_OTIS` enforces: non-negative, and below the
/// hottest physically possible scene (400 K) with margin.
fn radiance_bounds() -> PhysicalBounds {
    PhysicalBounds::radiance(max_radiance(400.0, &DEFAULT_BANDS) * 1.2)
}

/// Bitwise majority voting adapted to the OTIS 32-bit float planes
/// (§4.2 / §7.3): the vote runs on the raw IEEE-754 bit patterns along each
/// row.
pub fn bitvote_plane_f32(plane: &mut Image<f32>) -> usize {
    let mut bits: Image<u32> = plane.map(|v| v.to_bits());
    let changed = BitVoter::new().preprocess_plane(&mut bits);
    for (dst, &src) in plane.as_mut_slice().iter_mut().zip(bits.as_slice()) {
        *dst = f32::from_bits(src);
    }
    changed
}

/// Applies a per-plane algorithm to every band of a cube.
fn per_plane(cube: &mut Cube<f32>, mut f: impl FnMut(&mut Image<f32>) -> usize) -> usize {
    let mut changed = 0;
    for b in 0..cube.bands() {
        let mut img = cube.plane_image(b);
        changed += f(&mut img);
        cube.set_plane(b, &img);
    }
    changed
}

/// Runs the standard four-way comparison (no-preprocessing, median, bit
/// voting, `Algo_OTIS`) for one scene across a Γ grid.
fn otis_sweep(
    scene: OtisScene,
    scale: Scale,
    xs: &[f64],
    seed: u64,
    corrupt: impl Fn(&mut Cube<f32>, f64, u64),
) -> Vec<Series> {
    let algo = AlgoOtis::new(
        Sensitivity::new(80).expect("valid sensitivity"),
        radiance_bounds(),
    );
    let median = MedianSmoother::new();
    let trials = scale.trials.div_ceil(4).max(2);
    let mut series = vec![
        Series::new("NoPreprocessing"),
        Series::new("MedianSmoothing"),
        Series::new("BitVoting"),
        Series::new("Algo_OTIS"),
    ];
    for (gi, &g) in xs.iter().enumerate() {
        let mut accums = [Accum::new(); 4];
        for t in 0..trials {
            let trial_seed = seed ^ (gi as u64 * 8191 + t as u64 * 131);
            let clean = scene_cube(scene, scale.otis_size, trial_seed);
            let mut corrupted = clean.clone();
            corrupt(&mut corrupted, g, trial_seed);
            accums[0].push(psi_capped(clean.as_slice(), corrupted.as_slice(), 1.0));

            let mut work = corrupted.clone();
            per_plane(&mut work, |p| median.preprocess_plane(p));
            accums[1].push(psi_capped(clean.as_slice(), work.as_slice(), 1.0));

            let mut work = corrupted.clone();
            per_plane(&mut work, bitvote_plane_f32);
            accums[2].push(psi_capped(clean.as_slice(), work.as_slice(), 1.0));

            let mut work = corrupted.clone();
            algo.preprocess_cube(&mut work);
            accums[3].push(psi_capped(clean.as_slice(), work.as_slice(), 1.0));
        }
        for (s, a) in series.iter_mut().zip(accums) {
            s.push(a.stats());
        }
    }
    series
}

/// **Figure 7** (the OTIS performance-comparison plot; the prose around the
/// printed "Figure 8" caption) — Ψ vs Γ₀ on the Blob / Stripe / Spots
/// scenes under the uncorrelated model. One sub-figure per scene.
pub fn fig7(scale: Scale) -> Vec<Figure> {
    OtisScene::ALL
        .iter()
        .map(|&scene| {
            let series = otis_sweep(
                scene,
                scale,
                &OTIS_GAMMA0_GRID,
                0xF16_7000 + scene.name().len() as u64,
                |cube, g, seed| {
                    Uncorrelated::new(g)
                        .expect("grid probabilities are valid")
                        .inject_cube(cube, &mut seeded_rng(seed));
                },
            );
            Figure {
                id: format!("fig7-{}", scene.name().to_lowercase()),
                title: format!(
                    "OTIS dataset '{}': performance comparison (uncorrelated faults)",
                    scene.name()
                ),
                xlabel: "Gamma0".into(),
                ylabel: "average relative error Psi".into(),
                xs: OTIS_GAMMA0_GRID.to_vec(),
                series,
            }
        })
        .collect()
}

/// **Figure 9** — Ψ vs Γ_ini on the three OTIS scenes under the correlated
/// model; all algorithms share a breakdown point near Γ_ini ≈ 0.2, beyond
/// which preprocessing *deteriorates* the data.
pub fn fig9(scale: Scale) -> Vec<Figure> {
    OtisScene::ALL
        .iter()
        .map(|&scene| {
            let series = otis_sweep(
                scene,
                scale,
                &OTIS_GAMMA_INI_GRID,
                0xF16_9000 + scene.name().len() as u64,
                |cube, g, seed| {
                    Correlated::new(g)
                        .expect("grid probabilities are valid")
                        .inject_cube(cube, &mut seeded_rng(seed));
                },
            );
            Figure {
                id: format!("fig9-{}", scene.name().to_lowercase()),
                title: format!(
                    "OTIS dataset '{}': performance with correlated faults",
                    scene.name()
                ),
                xlabel: "Gamma_ini".into(),
                ylabel: "average relative error Psi".into(),
                xs: OTIS_GAMMA_INI_GRID.to_vec(),
                series,
            }
        })
        .collect()
}

/// **§7.1 claim** — spatial locality yields better expediency than spectral
/// locality (spectral correlation falls off across bands).
pub fn spatial_vs_spectral(scale: Scale) -> Figure {
    let algo = AlgoOtis::new(
        Sensitivity::new(80).expect("valid sensitivity"),
        radiance_bounds(),
    );
    let trials = scale.trials.div_ceil(4).max(2);
    let mut series = vec![
        Series::from_means("NoPreprocessing", vec![]),
        Series::from_means("Algo_OTIS spatial", vec![]),
        Series::from_means("Algo_OTIS spectral", vec![]),
    ];
    for (gi, &g) in OTIS_GAMMA0_GRID.iter().enumerate() {
        let inj = Uncorrelated::new(g).expect("grid probabilities are valid");
        let mut sums = [0.0f64; 3];
        for t in 0..trials {
            // Average over all three scenes for a representative comparison.
            for (si, &scene) in OtisScene::ALL.iter().enumerate() {
                let seed = 0x5BEC_0000 + gi as u64 * 517 + t as u64 * 31 + si as u64;
                let clean = scene_cube(scene, scale.otis_size, seed);
                let mut corrupted = clean.clone();
                inj.inject_cube(&mut corrupted, &mut seeded_rng(seed));
                sums[0] += psi_capped(clean.as_slice(), corrupted.as_slice(), 1.0);

                let mut work = corrupted.clone();
                algo.preprocess_cube(&mut work);
                sums[1] += psi_capped(clean.as_slice(), work.as_slice(), 1.0);

                let mut work = corrupted.clone();
                algo.preprocess_cube_spectral(&mut work);
                sums[2] += psi_capped(clean.as_slice(), work.as_slice(), 1.0);
            }
        }
        let n = (trials * 3) as f64;
        for (s, sum) in series.iter_mut().zip(sums) {
            s.ys.push(sum / n);
        }
    }
    Figure {
        id: "spatial-vs-spectral".into(),
        title: "Section 7.1: spatial vs spectral locality for Algo_OTIS".into(),
        xlabel: "Gamma0".into(),
        ylabel: "average relative error Psi".into(),
        xs: OTIS_GAMMA0_GRID.to_vec(),
        series,
    }
}
