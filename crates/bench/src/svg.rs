//! A dependency-free SVG line-chart renderer for reproduced figures.
//!
//! `repro <target> --svg DIR` writes one plot per figure: logarithmic axes
//! where the data spans decades (Ψ curves do), error bars where the
//! experiment recorded standard errors, and a legend. The output is plain
//! SVG 1.1 — openable in any browser and diffable in review.

use crate::report::Figure;
use std::fmt::Write as _;

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_LEFT: f64 = 78.0;
const MARGIN_RIGHT: f64 = 210.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 64.0;

/// A color-blind-friendly palette (Okabe–Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// One axis' scale.
#[derive(Debug, Clone, Copy)]
enum Scale {
    Linear { min: f64, max: f64 },
    Log { min: f64, max: f64 },
}

impl Scale {
    /// Chooses log when every value is positive and the span exceeds
    /// 1.5 decades.
    fn choose(values: impl Iterator<Item = f64> + Clone) -> Scale {
        let finite = values.filter(|v| v.is_finite());
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut all_positive = true;
        for v in finite {
            min = min.min(v);
            max = max.max(v);
            if v <= 0.0 {
                all_positive = false;
            }
        }
        if !min.is_finite() || !max.is_finite() {
            return Scale::Linear { min: 0.0, max: 1.0 };
        }
        if all_positive && min > 0.0 && max / min > 30.0 {
            Scale::Log { min, max }
        } else {
            let pad = ((max - min) * 0.05).max(1e-12);
            Scale::Linear {
                min: (min - pad).min(0.0_f64.min(min)),
                max: max + pad,
            }
        }
    }

    /// Normalizes a value into `0..=1` along this scale.
    fn unit(&self, v: f64) -> Option<f64> {
        match *self {
            Scale::Linear { min, max } => {
                if max > min {
                    Some((v - min) / (max - min))
                } else {
                    Some(0.5)
                }
            }
            Scale::Log { min, max } => {
                if v <= 0.0 || !v.is_finite() {
                    return None;
                }
                let (lo, hi) = (min.log10(), max.log10());
                if hi > lo {
                    Some((v.log10() - lo) / (hi - lo))
                } else {
                    Some(0.5)
                }
            }
        }
    }

    /// Tick positions (value, label).
    fn ticks(&self) -> Vec<(f64, String)> {
        match *self {
            Scale::Linear { min, max } => (0..=4)
                .map(|i| {
                    let v = min + (max - min) * f64::from(i) / 4.0;
                    (v, format_tick(v))
                })
                .collect(),
            Scale::Log { min, max } => {
                let lo = min.log10().floor() as i32;
                let hi = max.log10().ceil() as i32;
                (lo..=hi)
                    .map(|d| {
                        let v = 10f64.powi(d);
                        (v, format_tick(v))
                    })
                    .filter(|(v, _)| *v >= min / 1.01 && *v <= max * 1.01)
                    .collect()
            }
        }
    }
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 0.01 && v.abs() < 100_000.0 {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        format!("{v:.0e}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the figure as a self-contained SVG document.
pub fn render(fig: &Figure) -> String {
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let xscale = Scale::choose(fig.xs.iter().copied());
    let yscale = Scale::choose(
        fig.series
            .iter()
            .flat_map(|s| s.ys.iter().copied())
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let px = |u: f64| MARGIN_LEFT + u * plot_w;
    let py = |u: f64| MARGIN_TOP + (1.0 - u) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Title.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="24" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_LEFT,
        esc(&fig.title)
    );
    // Plot frame.
    let _ = writeln!(
        out,
        r##"<rect x="{}" y="{}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##,
        MARGIN_LEFT, MARGIN_TOP
    );
    // Grid + ticks.
    for (v, label) in xscale.ticks() {
        if let Some(u) = xscale.unit(v) {
            let x = px(u);
            let _ = writeln!(
                out,
                r##"<line x1="{x:.1}" y1="{}" x2="{x:.1}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_TOP,
                MARGIN_TOP + plot_h
            );
            let _ = writeln!(
                out,
                r#"<text x="{x:.1}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
                MARGIN_TOP + plot_h + 16.0,
                esc(&label)
            );
        }
    }
    for (v, label) in yscale.ticks() {
        if let Some(u) = yscale.unit(v) {
            let y = py(u);
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_LEFT,
                MARGIN_LEFT + plot_w
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{y:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{}</text>"#,
                MARGIN_LEFT - 6.0,
                esc(&label)
            );
        }
    }
    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 16.0,
        esc(&fig.xlabel)
    );
    let _ = writeln!(
        out,
        r#"<text x="18" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        esc(&fig.ylabel)
    );

    // Series.
    for (si, s) in fig.series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let mut points = Vec::new();
        for (i, (&x, &y)) in fig.xs.iter().zip(&s.ys).enumerate() {
            let (Some(ux), Some(uy)) = (xscale.unit(x), yscale.unit(y)) else {
                continue;
            };
            let (cx, cy) = (px(ux), py(uy));
            points.push(format!("{cx:.1},{cy:.1}"));
            // Error bar.
            if let Some(&e) = s.stderrs.get(i) {
                if e > 0.0 {
                    let lo = yscale.unit(y - e).unwrap_or(uy);
                    let hi = yscale.unit(y + e).unwrap_or(uy);
                    let _ = writeln!(
                        out,
                        r#"<line x1="{cx:.1}" y1="{:.1}" x2="{cx:.1}" y2="{:.1}" stroke="{color}" stroke-width="1"/>"#,
                        py(lo),
                        py(hi)
                    );
                }
            }
            let _ = writeln!(
                out,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="2.6" fill="{color}"/>"#
            );
        }
        if points.len() > 1 {
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                points.join(" ")
            );
        }
        // Legend entry.
        let ly = MARGIN_TOP + 14.0 + si as f64 * 20.0;
        let lx = MARGIN_LEFT + plot_w + 14.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            esc(&s.label)
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn sample(log_worthy: bool) -> Figure {
        let ys = if log_worthy {
            vec![0.1, 0.001, 0.0001]
        } else {
            vec![1.0, 2.0, 3.0]
        };
        Figure {
            id: "t".into(),
            title: "A <test> & title".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            xs: vec![1.0, 2.0, 3.0],
            series: vec![
                Series {
                    label: "one".into(),
                    ys,
                    stderrs: vec![0.01, 0.0001, 0.00001],
                },
                Series::from_means("two", vec![0.2, 0.2, 0.2]),
            ],
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = render(&sample(false));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("one"));
        assert!(svg.contains("two"));
        assert!(svg.contains("&lt;test&gt;"), "title must be escaped");
    }

    #[test]
    fn decade_spanning_data_gets_log_axis_ticks() {
        let svg = render(&sample(true));
        // Log decade labels appear.
        assert!(
            svg.contains("1e-4") || svg.contains("0.0001") || svg.contains("1e-04"),
            "{svg}"
        );
    }

    #[test]
    fn error_bars_render_for_series_with_stderr() {
        let svg = render(&sample(false));
        // 3 error bars (one per point of series one) + grid lines; count
        // strokes of the first palette color used by bars/lines.
        let bar_count = svg
            .matches(r##"stroke="#0072B2" stroke-width="1""##)
            .count();
        assert_eq!(bar_count, 3);
    }

    #[test]
    fn degenerate_figures_do_not_panic() {
        let empty = Figure {
            id: "e".into(),
            title: "empty".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            xs: vec![],
            series: vec![],
        };
        let svg = render(&empty);
        assert!(svg.contains("</svg>"));

        let nan = Figure {
            id: "n".into(),
            title: "nan".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            xs: vec![1.0, 2.0],
            series: vec![Series::from_means("bad", vec![f64::NAN, f64::INFINITY])],
        };
        let svg = render(&nan);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn scale_unit_mapping() {
        let lin = Scale::Linear {
            min: 0.0,
            max: 10.0,
        };
        assert_eq!(lin.unit(5.0), Some(0.5));
        let log = Scale::Log {
            min: 0.001,
            max: 10.0,
        };
        assert_eq!(log.unit(0.1), Some(0.5));
        assert_eq!(log.unit(-1.0), None);
        assert_eq!(log.unit(0.0), None);
    }
}
