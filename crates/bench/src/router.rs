//! Load generator for the `preflight-router` fleet front end
//! (`repro route`).
//!
//! Starts N in-process `preflightd` backends on loopback TCP, fronts them
//! with an in-process router, and fans out concurrent client connections
//! each submitting M frame stacks through the router. Reports request
//! latency (p50/p99) and throughput in Mpix/s the same way the `serve`
//! loadgen does, plus the routing counters — so the cost of the extra hop
//! (and, with `replicate` set, of the dual-write bit-identity cross-check)
//! is directly comparable against `BENCH_serve.json`. The scriptable
//! output lands in `BENCH_router.json`.

use crate::perf::{kernel_label, sample_u16, synthetic_stack, tier_label};
use preflight_router::pool::BackendAddr;
use preflight_router::server::{start as start_router, RouterConfig};
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::{ClientBuilder, ClientError, ServerBuilder, SubmitOptions};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Workload shape for one routed benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteConfig {
    /// Backend daemons in the fleet.
    pub backends: usize,
    /// Dual-write every submit to two replicas and cross-check.
    pub replicate: bool,
    /// Concurrent client connections.
    pub clients: usize,
    /// Stacks each client submits.
    pub requests_per_client: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames per request.
    pub frames: usize,
    /// Router routing-slot capacity (in-flight requests before `Busy`).
    pub capacity: usize,
}

impl RouteConfig {
    /// The standard load: 8 clients × 16 requests of 32×32×8 frames
    /// through a 3-backend fleet — enough streams to exercise every shard
    /// and the consistent-hash spread.
    pub fn standard() -> Self {
        RouteConfig {
            backends: 3,
            replicate: false,
            clients: 8,
            requests_per_client: 16,
            width: 32,
            height: 32,
            frames: 8,
            capacity: 32,
        }
    }

    /// A sub-second smoke workload for CI, replicated so the cross-check
    /// path is always covered.
    pub fn quick() -> Self {
        RouteConfig {
            backends: 2,
            replicate: true,
            clients: 2,
            requests_per_client: 4,
            width: 16,
            height: 16,
            frames: 4,
            capacity: 16,
        }
    }

    /// Samples served per request.
    pub fn samples_per_request(&self) -> usize {
        self.width * self.height * self.frames
    }

    /// Total requests across all clients.
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }
}

/// Results of one routed benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteReport {
    /// The workload that ran.
    pub config: RouteConfig,
    /// Wall time for the whole run, in seconds.
    pub wall_secs: f64,
    /// Median request latency (submit → response), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Million samples served per second of wall time.
    pub mpix_per_s: f64,
    /// `Busy` rejections absorbed by client retry.
    pub busy_retries: u64,
    /// Submissions the router accepted for routing.
    pub routed: u64,
    /// Forwards re-routed to another backend after a fault.
    pub failovers: u64,
    /// Submissions dual-written to two replicas.
    pub replicated: u64,
    /// Replica replies that failed the bit-identity cross-check.
    pub divergences: u64,
    /// Voter kernel the backend engines ran (`scalar`, `sweep` or
    /// `bitsliced`), matching the `BENCH_preprocess.json` row schema.
    pub kernel: &'static str,
    /// Resolved SIMD dispatch tier for bit-sliced engines, `-` otherwise.
    pub dispatch_tier: &'static str,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Runs the load generator against a fresh in-process fleet: N backend
/// daemons behind one router, all on loopback TCP.
///
/// # Panics
/// Panics if the fleet cannot start or a client loses its connection —
/// both are harness failures, not measurements.
pub fn route_loadgen(config: &RouteConfig) -> RouteReport {
    let engine_kernel = ServerConfig::default().engine.kernel;
    let backends: Vec<_> = (0..config.backends)
        .map(|_| {
            ServerBuilder::from(ServerConfig {
                tcp: Some("127.0.0.1:0".to_owned()),
                ..ServerConfig::default()
            })
            .serve()
            .expect("backend start")
        })
        .collect();
    let router = start_router(RouterConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        backends: backends
            .iter()
            .map(|b| BackendAddr::Tcp(b.tcp_addr().expect("backend bound").to_string()))
            .collect(),
        replicate: config.replicate,
        capacity: config.capacity,
        ..RouterConfig::default()
    })
    .expect("router start");
    let addr = router.tcp_addr().expect("router bound");

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..config.clients {
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ClientBuilder::new()
                .tcp(addr)
                .connect()
                .expect("client connect");
            let mut latencies_ms = Vec::with_capacity(config.requests_per_client);
            let mut busy: u64 = 0;
            for r in 0..config.requests_per_client {
                let seed = 0x707E ^ ((c as u64) << 32) ^ r as u64;
                let stack =
                    synthetic_stack(config.width, config.height, config.frames, seed, sample_u16);
                let opts = SubmitOptions {
                    stream_id: c as u64 + 1,
                    eos: true,
                    ..SubmitOptions::default()
                };
                let begin = Instant::now();
                loop {
                    match client.submit(FramePayload::U16(stack.clone()), &opts) {
                        Ok(response) => {
                            assert_eq!(
                                response.payload.frames(),
                                config.frames,
                                "fleet must answer with the submitted depth"
                            );
                            assert!(
                                response.stats.served_by > 0,
                                "router must stamp the serving backend"
                            );
                            break;
                        }
                        Err(ClientError::Busy(_)) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("client {c} request {r} failed: {e}"),
                    }
                }
                latencies_ms.push(begin.elapsed().as_secs_f64() * 1e3);
            }
            (latencies_ms, busy)
        }));
    }

    let mut latencies_ms = Vec::with_capacity(config.total_requests());
    let mut busy_retries = 0;
    for w in workers {
        let (lat, busy) = w.join().expect("client thread");
        latencies_ms.extend(lat);
        busy_retries += busy;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = router.stats();
    let (routed, failovers, replicated, divergences) = (
        stats.routed.get(),
        stats.failovers.get(),
        stats.replicated.get(),
        stats.divergences.get(),
    );
    router.drain();
    for b in backends {
        b.drain();
    }

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let total_samples = (config.total_requests() * config.samples_per_request()) as f64;
    RouteReport {
        config: config.clone(),
        wall_secs,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_ms,
        mpix_per_s: total_samples / wall_secs / 1e6,
        busy_retries,
        routed,
        failovers,
        replicated,
        divergences,
        kernel: kernel_label(engine_kernel),
        dispatch_tier: tier_label(engine_kernel),
    }
}

impl RouteReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "routed throughput, {} client(s) x {} request(s) of {}x{}x{} frames \
             through {} backend(s){}, routing capacity {}",
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.backends,
            if self.config.replicate {
                " (replicated)"
            } else {
                ""
            },
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9} {:>10} {:>11}",
            "kernel",
            "tier",
            "wall_s",
            "p50_ms",
            "p99_ms",
            "mean_ms",
            "Mpix/s",
            "busy",
            "failovers",
            "replicated",
            "divergences"
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12.4} {:>10.3} {:>10.3} {:>10.3} {:>10.2} {:>8} {:>9} {:>10} {:>11}",
            self.kernel,
            self.dispatch_tier,
            self.wall_secs,
            self.p50_ms,
            self.p99_ms,
            self.mean_ms,
            self.mpix_per_s,
            self.busy_retries,
            self.failovers,
            self.replicated,
            self.divergences
        );
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"router_throughput\",");
        let _ = writeln!(
            out,
            "  \"workload\": {{\"backends\": {}, \"replicate\": {}, \"clients\": {}, \
             \"requests_per_client\": {}, \"width\": {}, \"height\": {}, \"frames\": {}, \
             \"capacity\": {}}},",
            self.config.backends,
            self.config.replicate,
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "  \"total_requests\": {},",
            self.config.total_requests()
        );
        let _ = writeln!(out, "  \"wall_secs\": {:.6},", self.wall_secs);
        let _ = writeln!(out, "  \"p50_ms\": {:.3},", self.p50_ms);
        let _ = writeln!(out, "  \"p99_ms\": {:.3},", self.p99_ms);
        let _ = writeln!(out, "  \"mean_ms\": {:.3},", self.mean_ms);
        let _ = writeln!(out, "  \"mpix_per_s\": {:.3},", self.mpix_per_s);
        let _ = writeln!(out, "  \"busy_retries\": {},", self.busy_retries);
        let _ = writeln!(out, "  \"routed\": {},", self.routed);
        let _ = writeln!(out, "  \"failovers\": {},", self.failovers);
        let _ = writeln!(out, "  \"replicated\": {},", self.replicated);
        let _ = writeln!(out, "  \"divergences\": {},", self.divergences);
        let _ = writeln!(out, "  \"kernel\": \"{}\",", self.kernel);
        let _ = writeln!(out, "  \"dispatch_tier\": \"{}\"", self.dispatch_tier);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_loadgen_completes_and_reports_sane_numbers() {
        let report = route_loadgen(&RouteConfig::quick());
        assert!(report.wall_secs > 0.0);
        assert!(report.mpix_per_s > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert_eq!(report.routed, RouteConfig::quick().total_requests() as u64);
        // The quick workload is replicated: every submit is dual-written,
        // and a healthy fleet must never diverge.
        assert!(report.replicated >= 1);
        assert_eq!(report.divergences, 0, "healthy fleet must not diverge");
        assert_eq!(report.failovers, 0, "healthy fleet must not fail over");
    }

    #[test]
    fn serial_fleet_spreads_without_replicating() {
        let config = RouteConfig {
            replicate: false,
            ..RouteConfig::quick()
        };
        let report = route_loadgen(&config);
        assert_eq!(report.routed, config.total_requests() as u64);
        assert_eq!(report.replicated, 0, "serial mode must not dual-write");
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = route_loadgen(&RouteConfig::quick());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"router_throughput\""));
        // Kernel provenance matches the BENCH_preprocess.json row schema.
        assert!(json.contains("\"kernel\": \"sweep\""));
        assert!(json.contains("\"dispatch_tier\": \"-\""));
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
    }
}
