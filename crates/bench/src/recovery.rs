//! The supervised-runtime experiment: what the recovery envelope of the
//! `preflight-supervisor` crate buys under process-level faults.
//!
//! Worker crashes and corrupted result messages strike the master/slave
//! pipeline at a swept per-attempt probability. Without supervision a
//! crash loses the whole science product and a corrupted message is
//! integrated silently; with supervision both are detected (heartbeat,
//! checksum) and retried, falling down the degradation ladder only when
//! retries are exhausted.

use crate::report::{Figure, Scale, Series};
use preflight_core::{AlgoNgst, Sensitivity, Upsilon};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, ChaosConfig, ChaosInjector};
use preflight_metrics::psi;
use preflight_ngst::{NgstPipeline, PipelineConfig};
use preflight_supervisor::{RetryPolicy, Supervision};
use std::time::Duration;

/// The per-attempt process-fault probability grid. Each grid point is
/// split evenly between worker crashes and corrupted result messages, so
/// both recovery paths (requeue after a lost heartbeat, retry after a
/// checksum mismatch) are exercised at every x.
pub const CHAOS_GRID: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4];

/// **Recovery figure** — Ψ error of the pipeline's rate product versus the
/// injected process-fault rate, with and without the supervised runtime.
///
/// Both series are scored against the same fault-free reference run. An
/// unsupervised run that dies with a worker crash has no product at all;
/// it is scored as the Ψ error of an all-zero estimate, which is what the
/// ground system would be left with.
pub fn fig_recovery(scale: Scale) -> Figure {
    let edge = scale.stack_edge.max(32);
    let model = NgstModel {
        frames: scale.series_len.max(16),
        ..NgstModel::default()
    };
    let stack = model.stack(edge, edge, &mut seeded_rng(0xFEC0));
    let pipeline = NgstPipeline::new(PipelineConfig {
        workers: 4,
        tile_size: (edge / 4).max(8),
        preprocess: Some(AlgoNgst::new(
            Upsilon::FOUR,
            Sensitivity::new(80).expect("static sensitivity values are valid"),
        )),
        seed: 3,
        ..PipelineConfig::default()
    })
    .expect("valid pipeline config");
    let reference = pipeline.run(&stack).expect("fault-free reference run");

    // Tight backoff keeps the sweep fast; the recovery *behaviour* is
    // identical to the flight-scale delays.
    let supervision = Supervision {
        policy: RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(200),
            jitter: 0.0,
            ..RetryPolicy::default()
        },
        degrade: true,
        ..Supervision::default()
    };

    let lost = vec![0.0f32; reference.rate.len()];
    let trials = scale.trials.div_ceil(4).max(2);
    let mut supervised_ys = Vec::new();
    let mut unsupervised_ys = Vec::new();
    for (pi, &p) in CHAOS_GRID.iter().enumerate() {
        let mut sup_sum = 0.0f64;
        let mut raw_sum = 0.0f64;
        for t in 0..trials {
            let config = ChaosConfig {
                crash_prob: p / 2.0,
                corrupt_prob: p / 2.0,
                corrupt_gamma: 0.02,
                ..ChaosConfig::default()
            };
            let injector = ChaosInjector::new(config, 0xFEC_0000 + pi as u64 * 127 + t as u64)
                .expect("grid probabilities are valid");

            let supervised = pipeline
                .run_with(&stack, Some(&supervision), Some(&injector))
                .expect("the supervised runtime always yields a product");
            sup_sum += psi(reference.rate.as_slice(), supervised.report.rate.as_slice());

            raw_sum += match pipeline.run_with(&stack, None, Some(&injector)) {
                Ok(raw) => psi(reference.rate.as_slice(), raw.report.rate.as_slice()),
                // A crash without supervision loses the whole product.
                Err(_) => psi(reference.rate.as_slice(), &lost),
            };
        }
        supervised_ys.push(sup_sum / trials as f64);
        unsupervised_ys.push(raw_sum / trials as f64);
    }
    Figure {
        id: "recovery".into(),
        title: "Supervised runtime: science-product error under process faults".into(),
        xlabel: "per-attempt process-fault probability".into(),
        ylabel: "average relative error Psi vs fault-free run".into(),
        xs: CHAOS_GRID.to_vec(),
        series: vec![
            Series::from_means("supervised (retry + degrade)", supervised_ys),
            Series::from_means("unsupervised", unsupervised_ys),
        ],
    }
}
