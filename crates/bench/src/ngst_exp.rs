//! The NGST-side experiments: Figures 2–6 of the paper plus the §2
//! compression claim and the ablations called out in DESIGN.md.

use crate::report::{Accum, Figure, Scale, Series, Stats};
use preflight_core::{
    AlgoNgst, BitVoter, MedianSmoother, NgstConfig, Preprocessor, Sensitivity, SeriesPreprocessor,
    Upsilon,
};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Correlated, Uncorrelated};
use preflight_metrics::psi;
use preflight_ngst::{CosmicRayModel, DetectorConfig, UpTheRamp};
use preflight_rice::RiceCodec;
use std::time::Instant;

/// The Γ₀ grid used by the uncorrelated sweeps (the paper's "wide range of
/// bitflip probabilities", with Γ₀ ≤ 10 % the range of practical interest).
pub const GAMMA0_GRID: [f64; 9] = [0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.3];

/// The Γ_ini grid used by the correlated sweeps (crossing the ~0.2
/// breakdown point of Fig. 9).
pub const GAMMA_INI_GRID: [f64; 7] = [0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4];

/// The Γ_ini grid for Fig. 4 — the practical burst-fault range where the
/// paper's *"Algo_NGST does much better in combating the correlated
/// failures"* claim applies (beyond ~0.1 the majority of data words are
/// corrupted and every estimator saturates).
pub const FIG4_GAMMA_INI_GRID: [f64; 7] = [0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.1];

fn lambda(v: u32) -> Sensitivity {
    Sensitivity::new(v).expect("static sensitivity values are valid")
}

/// Averages Ψ per algorithm over `scale.trials` independent series, all
/// algorithms scored against the *same* corrupted data.
fn psi_over_series(
    scale: Scale,
    model: &NgstModel,
    seed: u64,
    corrupt: impl Fn(&mut Vec<u16>, &mut rand::rngs::StdRng),
    algos: &[(&str, &dyn SeriesPreprocessor<u16>)],
) -> Vec<(String, Stats)> {
    let mut accums = vec![Accum::new(); algos.len() + 1];
    for t in 0..scale.trials {
        let mut rng = seeded_rng(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
        let clean = model.series(&mut rng);
        let mut corrupted = clean.clone();
        corrupt(&mut corrupted, &mut rng);
        accums[0].push(psi(&clean, &corrupted));
        for (i, (_, algo)) in algos.iter().enumerate() {
            let mut work = corrupted.clone();
            algo.preprocess(&mut work);
            accums[i + 1].push(psi(&clean, &work));
        }
    }
    let mut out = vec![("NoPreprocessing".to_owned(), accums[0].stats())];
    for (i, (name, _)) in algos.iter().enumerate() {
        out.push(((*name).to_owned(), accums[i + 1].stats()));
    }
    out
}

/// **Figure 2** — Ψ vs Γ₀ under the uncorrelated fault model: `Algo_NGST`
/// at several sensitivities against median smoothing and the unprocessed
/// data (NMS-like σ).
pub fn fig2(scale: Scale) -> Figure {
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let median = MedianSmoother::new();
    let a20 = AlgoNgst::new(Upsilon::FOUR, lambda(20));
    let a50 = AlgoNgst::new(Upsilon::FOUR, lambda(50));
    let a80 = AlgoNgst::new(Upsilon::FOUR, lambda(80));
    let a95 = AlgoNgst::new(Upsilon::FOUR, lambda(95));
    let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> = vec![
        ("MedianSmoothing", &median),
        ("Algo_NGST(L=20)", &a20),
        ("Algo_NGST(L=50)", &a50),
        ("Algo_NGST(L=80)", &a80),
        ("Algo_NGST(L=95)", &a95),
    ];
    let mut series: Vec<Series> = Vec::new();
    for (gi, &g) in GAMMA0_GRID.iter().enumerate() {
        let model_inj = Uncorrelated::new(g).expect("grid probabilities are valid");
        let res = psi_over_series(
            scale,
            &model,
            0xF16_2000 + gi as u64,
            |s, rng| {
                model_inj.inject_words(s, rng);
            },
            &algos,
        );
        for (label, stats) in res {
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(stats),
                None => {
                    let mut s = Series::new(label);
                    s.push(stats);
                    series.push(s);
                }
            }
        }
    }
    Figure {
        id: "fig2".into(),
        title: "Performance comparison at varying sensitivities (uncorrelated faults)".into(),
        xlabel: "Gamma0".into(),
        ylabel: "average relative error Psi".into(),
        xs: GAMMA0_GRID.to_vec(),
        series,
    }
}

/// **Figure 3** — preprocessing execution overhead as a function of the
/// sensitivity Λ, with the static baselines as references. Reported as
/// microseconds per 64-sample series (relative shape is the claim; absolute
/// numbers are host-dependent — the Criterion bench `fig3_overhead` gives
/// the rigorous timings).
pub fn fig3(scale: Scale) -> Figure {
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let n_series = (scale.trials * 20).max(100);
    let mut rng = seeded_rng(0xF16_3000);
    let inj = Uncorrelated::new(0.01).expect("valid probability");
    let workload: Vec<Vec<u16>> = (0..n_series)
        .map(|_| {
            let mut s = model.series(&mut rng);
            inj.inject_words(&mut s, &mut rng);
            s
        })
        .collect();

    let time_algo = |algo: &dyn SeriesPreprocessor<u16>| -> f64 {
        let start = Instant::now();
        for s in &workload {
            let mut w = s.clone();
            algo.preprocess(&mut w);
        }
        start.elapsed().as_secs_f64() * 1e6 / n_series as f64
    };

    let lambdas: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
    let mut algo_ys = Vec::new();
    for &l in &lambdas {
        let algo = AlgoNgst::new(Upsilon::FOUR, lambda(l as u32));
        algo_ys.push(time_algo(&algo));
    }
    let median_t = time_algo(&MedianSmoother::new());
    let bitvote_t = time_algo(&BitVoter::new());
    Figure {
        id: "fig3".into(),
        title: "Preprocessing overhead as a function of sensitivity".into(),
        xlabel: "Lambda".into(),
        ylabel: "microseconds per series".into(),
        xs: lambdas.clone(),
        series: vec![
            Series::from_means("Algo_NGST", algo_ys),
            Series::from_means("MedianSmoothing", vec![median_t; lambdas.len()]),
            Series::from_means("BitVoting", vec![bitvote_t; lambdas.len()]),
        ],
    }
}

/// **Figure 4** — Ψ vs Γ_ini under the correlated (burst) fault model, on
/// full stacks so the 2-D memory-run structure is exercised.
pub fn fig4(scale: Scale) -> Figure {
    let edge = scale.stack_edge;
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let median = MedianSmoother::new();
    let bitvote = BitVoter::new();
    // The paper ran Algo_NGST at experimentally optimized Λ; emulate that
    // with a small candidate set and keep the best per grid point.
    let candidates: Vec<AlgoNgst> = [50, 80, 95]
        .iter()
        .map(|&l| AlgoNgst::new(Upsilon::FOUR, lambda(l)))
        .collect();

    let mut series = vec![
        Series::from_means("NoPreprocessing", vec![]),
        Series::from_means("MedianSmoothing", vec![]),
        Series::from_means("BitVoting", vec![]),
        Series::from_means("Algo_NGST(opt L)", vec![]),
    ];
    let trials = scale.trials.div_ceil(4).max(2);
    for (gi, &g) in FIG4_GAMMA_INI_GRID.iter().enumerate() {
        let inj = Correlated::new(g).expect("grid probabilities are valid");
        let mut sums = [0.0f64; 3];
        let mut algo_sums = vec![0.0f64; candidates.len()];
        for t in 0..trials {
            let mut rng = seeded_rng(0xF16_4000 + gi as u64 * 131 + t as u64);
            let clean = model.stack(edge, edge, &mut rng);
            let mut corrupted = clean.clone();
            inj.inject_stack(&mut corrupted, &mut rng);
            sums[0] += psi(clean.as_slice(), corrupted.as_slice());
            let runs: [&(dyn SeriesPreprocessor<u16> + Sync); 2] = [&median, &bitvote];
            for (i, r) in runs.iter().enumerate() {
                let mut work = corrupted.clone();
                Preprocessor::new(r).naive(true).run(&mut work);
                sums[i + 1] += psi(clean.as_slice(), work.as_slice());
            }
            for (ai, algo) in candidates.iter().enumerate() {
                let mut work = corrupted.clone();
                Preprocessor::new(algo).naive(true).run(&mut work);
                algo_sums[ai] += psi(clean.as_slice(), work.as_slice());
            }
        }
        for (s, sum) in series.iter_mut().take(3).zip(sums) {
            s.ys.push(sum / trials as f64);
        }
        let best = algo_sums.iter().cloned().fold(f64::INFINITY, f64::min);
        series[3].ys.push(best / trials as f64);
    }
    Figure {
        id: "fig4".into(),
        title: "Performance comparison for NGST datasets with correlated faults".into(),
        xlabel: "Gamma_ini".into(),
        ylabel: "average relative error Psi".into(),
        xs: FIG4_GAMMA_INI_GRID.to_vec(),
        series,
    }
}

/// The mean-intensity grid of Fig. 5 (the "entire gamut" of 16-bit values;
/// background noise keeps reads non-zero).
pub const GAMUT_GRID: [f64; 9] = [
    500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 30_000.0, 45_000.0, 60_000.0,
];

/// **Figure 5** — Ψ across the gamut of mean dataset intensities at
/// Γ₀ = 2.5 %, Υ = 4 and the optimum Λ per dataset (selected from a small
/// candidate set, as the paper optimized experimentally).
pub fn fig5(scale: Scale) -> Figure {
    let inj = Uncorrelated::new(0.025).expect("valid probability");
    let median = MedianSmoother::new();
    let bitvote = BitVoter::new();
    let candidates: Vec<AlgoNgst> = [20, 50, 80, 95]
        .iter()
        .map(|&l| AlgoNgst::new(Upsilon::FOUR, lambda(l)))
        .collect();

    let mut series = vec![
        Series::from_means("NoPreprocessing", vec![]),
        Series::from_means("MedianSmoothing", vec![]),
        Series::from_means("BitVoting", vec![]),
        Series::from_means("Algo_NGST(opt L)", vec![]),
    ];
    for (mi, &mean) in GAMUT_GRID.iter().enumerate() {
        let model = NgstModel::new(scale.series_len, mean as u16, 250.0);
        let mut sums = [0.0f64; 3];
        let mut algo_sums = vec![0.0f64; candidates.len()];
        for t in 0..scale.trials {
            let mut rng = seeded_rng(0xF16_5000 + mi as u64 * 977 + t as u64);
            let clean = model.series(&mut rng);
            let mut corrupted = clean.clone();
            inj.inject_words(&mut corrupted, &mut rng);
            sums[0] += psi(&clean, &corrupted);
            let mut work = corrupted.clone();
            median.preprocess(&mut work);
            sums[1] += psi(&clean, &work);
            let mut work = corrupted.clone();
            SeriesPreprocessor::<u16>::preprocess(&bitvote, &mut work);
            sums[2] += psi(&clean, &work);
            for (ai, algo) in candidates.iter().enumerate() {
                let mut work = corrupted.clone();
                algo.preprocess(&mut work);
                algo_sums[ai] += psi(&clean, &work);
            }
        }
        let n = scale.trials as f64;
        series[0].ys.push(sums[0] / n);
        series[1].ys.push(sums[1] / n);
        series[2].ys.push(sums[2] / n);
        let best = algo_sums.iter().cloned().fold(f64::INFINITY, f64::min);
        series[3].ys.push(best / n);
    }
    Figure {
        id: "fig5".into(),
        title: "Performance characteristics across the entire gamut of datasets".into(),
        xlabel: "mean intensity".into(),
        ylabel: "average relative error Psi".into(),
        xs: GAMUT_GRID.to_vec(),
        series,
    }
}

/// The σ grid of the §6 quasi-NGST study: constant, low, NMS-like, and
/// extremely turbulent (overflow-truncating) datasets.
pub const SIGMA_GRID: [f64; 4] = [0.0, 25.0, 250.0, 8_000.0];

/// **Figure 6** — the Υ study on quasi-NGST datasets: one sub-figure per σ,
/// each sweeping Γ₀ for Υ ∈ {2, 4, 6} (all from Π(1) = 27000, as §6).
pub fn fig6(scale: Scale) -> Vec<Figure> {
    let gammas = [0.005, 0.01, 0.02, 0.04, 0.08, 0.15, 0.3];
    SIGMA_GRID
        .iter()
        .enumerate()
        .map(|(si, &sigma)| {
            let model = NgstModel::new(scale.series_len, 27_000, sigma);
            let a2 = AlgoNgst::new(Upsilon::TWO, lambda(80));
            let a4 = AlgoNgst::new(Upsilon::FOUR, lambda(80));
            let a6 = AlgoNgst::new(Upsilon::SIX, lambda(80));
            let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> =
                vec![("Upsilon=2", &a2), ("Upsilon=4", &a4), ("Upsilon=6", &a6)];
            let mut series: Vec<Series> = Vec::new();
            for (gi, &g) in gammas.iter().enumerate() {
                let inj = Uncorrelated::new(g).expect("valid probability");
                let res = psi_over_series(
                    scale,
                    &model,
                    0xF16_6000 + si as u64 * 7919 + gi as u64,
                    |s, rng| {
                        inj.inject_words(s, rng);
                    },
                    &algos,
                );
                for (label, stats) in res {
                    match series.iter_mut().find(|s| s.label == label) {
                        Some(s) => s.push(stats),
                        None => {
                            let mut s = Series::new(label);
                            s.push(stats);
                            series.push(s);
                        }
                    }
                }
            }
            Figure {
                id: format!("fig6-sigma{sigma}"),
                title: format!("Quasi-NGST dataset, sigma = {sigma}: Upsilon comparison"),
                xlabel: "Gamma0".into(),
                ylabel: "average relative error Psi".into(),
                xs: gammas.to_vec(),
                series,
            }
        })
        .collect()
}

/// **§2 claim** — compression-ratio degradation: Rice ratio of a clean
/// baseline versus cosmic-ray-struck and bit-flipped versions.
pub fn compression_claim(scale: Scale) -> Figure {
    let edge = scale.stack_edge.max(32);
    let cfg = DetectorConfig {
        width: edge,
        height: edge,
        frames: 16,
        read_noise: 10.0,
        ..DetectorConfig::default()
    };
    let det = UpTheRamp::new(cfg);
    let mut rng = seeded_rng(0xC0_DEC);
    let flux = preflight_datagen::ngst::sky_image(edge, edge, 2_000, 6, &mut rng)
        .map(|v| v as f32 / 100.0);
    let clean = det.clean_stack(&flux, &mut rng);
    let codec = RiceCodec::new();
    let ratio_clean = codec.compression_ratio(clean.as_slice());

    let mut with_cr = clean.clone();
    CosmicRayModel::default().strike(&mut with_cr, &mut rng);
    let ratio_cr = codec.compression_ratio(with_cr.as_slice());

    let gammas = [0.0, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05];
    let mut flip_ys = Vec::new();
    for &g in &gammas {
        let mut flipped = clean.clone();
        Uncorrelated::new(g)
            .expect("valid probability")
            .inject_stack(&mut flipped, &mut seeded_rng(0xC0_DEC + (g * 1e6) as u64));
        flip_ys.push(codec.compression_ratio(flipped.as_slice()));
    }
    Figure {
        id: "compression".into(),
        title: "Rice compression ratio degradation under CR hits and bit-flips (section 2)".into(),
        xlabel: "Gamma0".into(),
        ylabel: "compression ratio".into(),
        xs: gammas.to_vec(),
        series: vec![
            Series::from_means("bit-flipped", flip_ys),
            Series::from_means("clean", vec![ratio_clean; gammas.len()]),
            Series::from_means("with CR hits", vec![ratio_cr; gammas.len()]),
        ],
    }
}

/// **Ablation A1** — the GRT (Υ−1-of-Υ, window A) combiner on vs off.
pub fn ablation_windows(scale: Scale) -> Figure {
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let with_grt = AlgoNgst::new(Upsilon::FOUR, lambda(80));
    let without = AlgoNgst::with_config(
        Upsilon::FOUR,
        lambda(80),
        NgstConfig {
            use_grt: false,
            ..NgstConfig::default()
        },
    );
    let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> =
        vec![("GRT on", &with_grt), ("GRT off", &without)];
    let mut series: Vec<Series> = Vec::new();
    for (gi, &g) in GAMMA0_GRID.iter().enumerate() {
        let inj = Uncorrelated::new(g).expect("valid probability");
        let res = psi_over_series(
            scale,
            &model,
            0xAB1_0000 + gi as u64,
            |s, rng| {
                inj.inject_words(s, rng);
            },
            &algos,
        );
        for (label, stats) in res {
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(stats),
                None => {
                    let mut s = Series::new(label);
                    s.push(stats);
                    series.push(s);
                }
            }
        }
    }
    Figure {
        id: "ablation-windows".into(),
        title: "Ablation: near-unanimous (GRT) window-A combiner on vs off".into(),
        xlabel: "Gamma0".into(),
        ylabel: "average relative error Psi".into(),
        xs: GAMMA0_GRID.to_vec(),
        series,
    }
}

/// **Ablation A2** — dynamic window delimiters vs frozen static widths,
/// across dataset turbulence.
pub fn ablation_static(scale: Scale) -> Figure {
    let sigmas = [0.0, 25.0, 100.0, 250.0, 1_000.0, 4_000.0];
    let inj = Uncorrelated::new(0.025).expect("valid probability");
    let dynamic = AlgoNgst::new(Upsilon::FOUR, lambda(80));
    let static_narrow = AlgoNgst::with_config(
        Upsilon::FOUR,
        lambda(80),
        NgstConfig {
            static_windows: Some((2, 10)),
            ..NgstConfig::default()
        },
    );
    let static_wide = AlgoNgst::with_config(
        Upsilon::FOUR,
        lambda(80),
        NgstConfig {
            static_windows: Some((4, 4)),
            ..NgstConfig::default()
        },
    );
    let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> = vec![
        ("dynamic windows", &dynamic),
        ("static A=2,C=10", &static_narrow),
        ("static A=4,C=4", &static_wide),
    ];
    let mut series: Vec<Series> = Vec::new();
    for (si, &sigma) in sigmas.iter().enumerate() {
        let model = NgstModel::new(scale.series_len, 27_000, sigma);
        let res = psi_over_series(
            scale,
            &model,
            0xAB2_0000 + si as u64,
            |s, rng| {
                inj.inject_words(s, rng);
            },
            &algos,
        );
        for (label, stats) in res {
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(stats),
                None => {
                    let mut s = Series::new(label);
                    s.push(stats);
                    series.push(s);
                }
            }
        }
    }
    Figure {
        id: "ablation-static".into(),
        title: "Ablation: dynamic vs static bit-window delimiters across turbulence".into(),
        xlabel: "sigma".into(),
        ylabel: "average relative error Psi".into(),
        xs: sigmas.to_vec(),
        series,
    }
}

/// **Ablation A3** — iterative preprocessing: 1 vs 2 vs 3 analyze-and-
/// repair rounds across Γ₀. Targets deviation D1: the dynamic cut-offs are
/// estimated from corrupted data, so at high fault rates a second round —
/// re-estimating thresholds from the partially cleaned series — recovers
/// flips the first round's inflated thresholds hid.
pub fn ablation_passes(scale: Scale) -> Figure {
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let mk = |passes: usize| {
        AlgoNgst::with_config(
            Upsilon::FOUR,
            lambda(95),
            NgstConfig {
                passes,
                ..NgstConfig::default()
            },
        )
    };
    let (p1, p2, p3) = (mk(1), mk(2), mk(3));
    let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> =
        vec![("1 pass", &p1), ("2 passes", &p2), ("3 passes", &p3)];
    let mut series: Vec<Series> = Vec::new();
    for (gi, &g) in GAMMA0_GRID.iter().enumerate() {
        let inj = Uncorrelated::new(g).expect("grid probabilities are valid");
        let res = psi_over_series(
            scale,
            &model,
            0xAB4_0000 + gi as u64,
            |s, rng| {
                inj.inject_words(s, rng);
            },
            &algos,
        );
        for (label, stats) in res {
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(stats),
                None => {
                    let mut s = Series::new(label);
                    s.push(stats);
                    series.push(s);
                }
            }
        }
    }
    Figure {
        id: "ablation-passes".into(),
        title: "Ablation: iterative analyze-and-repair rounds (deviation D1 mitigation)".into(),
        xlabel: "Gamma0".into(),
        ylabel: "average relative error Psi".into(),
        xs: GAMMA0_GRID.to_vec(),
        series,
    }
}

/// **§2.1 design estimate** — distributed scaling of the master/slave
/// pipeline: wall time and speedup as workers grow toward the flight
/// estimate of 16 COTS processors, with the preprocessing stage enabled
/// (the work the "slack CPU time" absorbs).
pub fn scaling(scale: Scale) -> Figure {
    use preflight_ngst::{NgstPipeline, PipelineConfig, TransitFault};

    let edge = (scale.stack_edge * 2).max(64);
    let model = NgstModel {
        frames: scale.series_len.max(32),
        ..NgstModel::default()
    };
    let stack = model.stack(edge, edge, &mut seeded_rng(0x5CA1E));
    let workers: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0];
    let mut elapsed_ms = Vec::new();
    for &w in &workers {
        let pipeline = NgstPipeline::new(PipelineConfig {
            workers: w as usize,
            tile_size: (edge / 4).max(8),
            preprocess: Some(AlgoNgst::new(Upsilon::FOUR, lambda(80))),
            transit_fault: Some(TransitFault::Uncorrelated(0.005)),
            seed: 1,
            ..PipelineConfig::default()
        })
        .expect("valid pipeline config");
        // Best of three runs to damp scheduler noise.
        let best = (0..3)
            .map(|_| {
                let rep = pipeline.run(&stack).expect("pipeline run");
                rep.elapsed.as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        elapsed_ms.push(best);
    }
    let speedup: Vec<f64> = elapsed_ms.iter().map(|&t| elapsed_ms[0] / t).collect();
    Figure {
        id: "scaling".into(),
        title: "Section 2.1: master/slave pipeline scaling toward the 16-processor estimate".into(),
        xlabel: "workers".into(),
        ylabel: "milliseconds (and speedup vs 1 worker)".into(),
        xs: workers,
        series: vec![
            Series::from_means("wall time (ms)", elapsed_ms),
            Series::from_means("speedup", speedup),
        ],
    }
}

/// **§6 claim (X1)** — the Ψ *improvement factor* of preprocessing over
/// raw data across Γ₀, for the best Λ per point and for median smoothing.
/// The paper quotes "an order of magnitude in the range ~50 to ~1000 on an
/// average for Γ₀ ≤ 10 %" (see EXPERIMENTS.md deviation D1 for how far the
/// reproduction gets).
pub fn improvement_factors(scale: Scale) -> Figure {
    let fig = fig2(scale);
    let nopre = fig
        .series("NoPreprocessing")
        .expect("fig2 always emits it")
        .ys
        .clone();
    let median = fig
        .series("MedianSmoothing")
        .expect("fig2 always emits it")
        .ys
        .clone();
    let best_algo: Vec<f64> = (0..fig.xs.len())
        .map(|i| {
            fig.series
                .iter()
                .filter(|s| s.label.starts_with("Algo_NGST"))
                .map(|s| s.ys[i])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let ratio = |num: &[f64], den: &[f64]| -> Vec<f64> {
        num.iter()
            .zip(den)
            .map(|(n, d)| if *d > 0.0 { n / d } else { f64::NAN })
            .collect()
    };
    Figure {
        id: "factors".into(),
        title: "Section 6 claim: Psi improvement factor of preprocessing over raw data".into(),
        xlabel: "Gamma0".into(),
        ylabel: "Psi_NoPreprocessing / Psi_Algorithm".into(),
        xs: fig.xs,
        series: vec![
            Series::from_means("Algo_NGST (best L)", ratio(&nopre, &best_algo)),
            Series::from_means("MedianSmoothing", ratio(&nopre, &median)),
        ],
    }
}

/// **§4.1 claim** — median smoothing *"yields far better results than Mean
/// Smoothing, due to the better robustness of median over mean"*.
pub fn mean_vs_median(scale: Scale) -> Figure {
    let model = NgstModel {
        frames: scale.series_len,
        ..NgstModel::default()
    };
    let median = MedianSmoother::new();
    let mean = preflight_core::MeanSmoother::new();
    let algos: Vec<(&str, &dyn SeriesPreprocessor<u16>)> =
        vec![("MedianSmoothing", &median), ("MeanSmoothing", &mean)];
    let mut series: Vec<Series> = Vec::new();
    for (gi, &g) in GAMMA0_GRID.iter().enumerate() {
        let inj = Uncorrelated::new(g).expect("grid probabilities are valid");
        let res = psi_over_series(
            scale,
            &model,
            0x4A1_0000 + gi as u64,
            |s, rng| {
                inj.inject_words(s, rng);
            },
            &algos,
        );
        for (label, stats) in res {
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(stats),
                None => {
                    let mut s = Series::new(label);
                    s.push(stats);
                    series.push(s);
                }
            }
        }
    }
    Figure {
        id: "mean-vs-median".into(),
        title: "Section 4.1 claim: robustness of median over mean smoothing".into(),
        xlabel: "Gamma0".into(),
        ylabel: "average relative error Psi".into(),
        xs: GAMMA0_GRID.to_vec(),
        series,
    }
}

/// **§8 claim** — *"storing the neighboring pixels using a preset mapping
/// into different physical regions in the memory organization"* defeats
/// correlated block faults.
///
/// Two physical placements of the same NGST stack take the same burst
/// process:
///
/// - **series-contiguous** — each coordinate's temporal series occupies
///   consecutive words (the cache-friendly naive layout); one burst wipes a
///   run of temporal *neighbors* and the voters lose their redundancy;
/// - **dispersed (frame-major)** — consecutive readouts of a coordinate sit
///   a whole frame apart (the recommended preset mapping); the same burst
///   scatters into single samples of many different series, which the
///   voters repair easily.
pub fn interleave_claim(scale: Scale) -> Figure {
    use preflight_faults::BlockFault;

    let edge = scale.stack_edge;
    let frames = scale.series_len;
    let model = NgstModel {
        frames,
        ..NgstModel::default()
    };
    let algo = AlgoNgst::new(Upsilon::FOUR, lambda(80));
    // Fixed damage budget (2 % of all words), swept across burst lengths:
    // the left end is near-uncorrelated damage, the right end full strikes.
    let burst_lens: Vec<f64> = vec![1.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let budget = (edge * edge * frames) / 50;
    let mut series = vec![
        Series::from_means("NoPreprocessing", vec![]),
        Series::from_means("Algo_NGST series-contiguous", vec![]),
        Series::from_means("Algo_NGST dispersed", vec![]),
    ];
    let trials = scale.trials.div_ceil(4).max(2);
    for (bi, &bl) in burst_lens.iter().enumerate() {
        let inj = BlockFault::with_budget(budget, bl as usize);
        let mut sums = [0.0f64; 3];
        for t in 0..trials {
            let mut rng = seeded_rng(0xAB3_0000 + bi as u64 * 31 + t as u64);
            let clean = model.stack(edge, edge, &mut rng);

            // (a) Series-contiguous placement: transpose to series-major,
            // inject the bursts there, transpose back. One burst wipes a
            // run of temporal neighbors of the same coordinate.
            let mut series_major: Vec<u16> = Vec::with_capacity(clean.len());
            let mut buf = Vec::with_capacity(frames);
            for y in 0..edge {
                for x in 0..edge {
                    clean.gather_series(x, y, &mut buf);
                    series_major.extend_from_slice(&buf);
                }
            }
            inj.inject_words(&mut series_major, &mut rng);
            let mut contiguous = clean.clone();
            for (c, chunk) in series_major.chunks_exact(frames).enumerate() {
                contiguous.scatter_series(c % edge, c / edge, chunk);
            }
            sums[0] += psi(clean.as_slice(), contiguous.as_slice());
            Preprocessor::new(&algo).naive(true).run(&mut contiguous);
            sums[1] += psi(clean.as_slice(), contiguous.as_slice());

            // (b) Dispersed (frame-major) placement: the same burst process
            // on the recommended preset mapping — consecutive readouts of a
            // coordinate sit a whole frame apart, so a burst touches many
            // series once each.
            let mut dispersed = clean.clone();
            inj.inject_words(dispersed.as_mut_slice(), &mut rng);
            Preprocessor::new(&algo).naive(true).run(&mut dispersed);
            sums[2] += psi(clean.as_slice(), dispersed.as_slice());
        }
        for (s, sum) in series.iter_mut().zip(sums) {
            s.ys.push(sum / trials as f64);
        }
    }
    Figure {
        id: "interleave".into(),
        title: "Section 8 recommendation: dispersed physical placement vs block faults".into(),
        xlabel: "burst words".into(),
        ylabel: "average relative error Psi".into(),
        xs: burst_lens,
        series,
    }
}
