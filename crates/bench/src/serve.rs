//! Load generator for the `preflightd` serving daemon (`repro serve`).
//!
//! Starts an in-process daemon on a loopback TCP socket, fans out N
//! concurrent client connections each submitting M frame stacks, and
//! reports request latency (p50/p99) and end-to-end throughput in Mpix/s.
//! `Busy` rejections from the bounded queue are retried (and counted), so
//! the run also measures how the daemon behaves at and beyond capacity.
//! The scriptable output lands in `BENCH_serve.json`.

use crate::perf::{kernel_label, sample_u16, synthetic_stack, tier_label};
use preflight_core::Kernel;
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::{ClientBuilder, ClientError, ServerBuilder, SubmitOptions};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Workload shape for one serving benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Stacks each client submits.
    pub requests_per_client: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames per request.
    pub frames: usize,
    /// Daemon queue capacity (in-flight requests before `Busy`).
    pub capacity: usize,
}

impl ServeConfig {
    /// The standard load: 8 clients × 16 requests of 32×32×8 frames
    /// against a 16-slot queue — enough contention to exercise batching
    /// and occasional backpressure.
    pub fn standard() -> Self {
        ServeConfig {
            clients: 8,
            requests_per_client: 16,
            width: 32,
            height: 32,
            frames: 8,
            capacity: 16,
        }
    }

    /// A sub-second smoke workload for CI.
    pub fn quick() -> Self {
        ServeConfig {
            clients: 2,
            requests_per_client: 4,
            width: 16,
            height: 16,
            frames: 4,
            capacity: 8,
        }
    }

    /// Samples served per request.
    pub fn samples_per_request(&self) -> usize {
        self.width * self.height * self.frames
    }

    /// Total requests across all clients.
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }
}

/// Results of one serving benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The workload that ran.
    pub config: ServeConfig,
    /// Wall time for the whole run, in seconds.
    pub wall_secs: f64,
    /// Median request latency (submit → response), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Million samples served per second of wall time.
    pub mpix_per_s: f64,
    /// `Busy` rejections absorbed by client retry.
    pub busy_retries: u64,
    /// Batches the engine dispatched (from the daemon's counters).
    pub batches: u64,
    /// Batches that needed the degradation ladder.
    pub degraded_batches: u64,
    /// Voter kernel the daemon's engine ran (`scalar`, `sweep` or
    /// `bitsliced`), matching the `BENCH_preprocess.json` row schema.
    pub kernel: &'static str,
    /// Resolved SIMD dispatch tier for bit-sliced engines, `-` otherwise.
    pub dispatch_tier: &'static str,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Runs the load generator against a fresh in-process daemon.
///
/// # Panics
/// Panics if the daemon cannot start or a client loses its connection —
/// both are harness failures, not measurements.
pub fn serve_loadgen(config: &ServeConfig) -> ServeReport {
    let engine_kernel = ServerConfig::default().engine.kernel;
    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .queue_depth(config.capacity)
        .serve()
        .expect("daemon start");
    let addr = handle.tcp_addr().expect("bound address");

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..config.clients {
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ClientBuilder::new()
                .tcp(addr)
                .connect()
                .expect("client connect");
            let mut latencies_ms = Vec::with_capacity(config.requests_per_client);
            let mut busy: u64 = 0;
            for r in 0..config.requests_per_client {
                let seed = 0x5EED ^ ((c as u64) << 32) ^ r as u64;
                let stack =
                    synthetic_stack(config.width, config.height, config.frames, seed, sample_u16);
                let opts = SubmitOptions {
                    stream_id: c as u64,
                    eos: true,
                    ..SubmitOptions::default()
                };
                let begin = Instant::now();
                loop {
                    match client.submit(FramePayload::U16(stack.clone()), &opts) {
                        Ok(response) => {
                            assert_eq!(
                                response.payload.frames(),
                                config.frames,
                                "daemon must answer with the submitted depth"
                            );
                            break;
                        }
                        Err(ClientError::Busy(_)) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("client {c} request {r} failed: {e}"),
                    }
                }
                latencies_ms.push(begin.elapsed().as_secs_f64() * 1e3);
            }
            (latencies_ms, busy)
        }));
    }

    let mut latencies_ms = Vec::with_capacity(config.total_requests());
    let mut busy_retries = 0;
    for w in workers {
        let (lat, busy) = w.join().expect("client thread");
        latencies_ms.extend(lat);
        busy_retries += busy;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = handle.stats();
    let batches = stats.batches.get();
    let degraded_batches = stats.degraded_batches.get();
    handle.drain();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let total_samples = (config.total_requests() * config.samples_per_request()) as f64;
    ServeReport {
        config: config.clone(),
        wall_secs,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_ms,
        mpix_per_s: total_samples / wall_secs / 1e6,
        busy_retries,
        batches,
        degraded_batches,
        kernel: kernel_label(engine_kernel),
        dispatch_tier: tier_label(engine_kernel),
    }
}

impl ServeReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving throughput, {} client(s) x {} request(s) of {}x{}x{} frames, \
             queue capacity {}",
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "kernel",
            "tier",
            "wall_s",
            "p50_ms",
            "p99_ms",
            "mean_ms",
            "Mpix/s",
            "busy",
            "batches",
            "degraded"
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12.4} {:>10.3} {:>10.3} {:>10.3} {:>10.2} {:>8} {:>9} {:>9}",
            self.kernel,
            self.dispatch_tier,
            self.wall_secs,
            self.p50_ms,
            self.p99_ms,
            self.mean_ms,
            self.mpix_per_s,
            self.busy_retries,
            self.batches,
            self.degraded_batches
        );
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"serve_throughput\",");
        let _ = writeln!(
            out,
            "  \"workload\": {{\"clients\": {}, \"requests_per_client\": {}, \
             \"width\": {}, \"height\": {}, \"frames\": {}, \"capacity\": {}}},",
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "  \"total_requests\": {},",
            self.config.total_requests()
        );
        let _ = writeln!(out, "  \"wall_secs\": {:.6},", self.wall_secs);
        let _ = writeln!(out, "  \"p50_ms\": {:.3},", self.p50_ms);
        let _ = writeln!(out, "  \"p99_ms\": {:.3},", self.p99_ms);
        let _ = writeln!(out, "  \"mean_ms\": {:.3},", self.mean_ms);
        let _ = writeln!(out, "  \"mpix_per_s\": {:.3},", self.mpix_per_s);
        let _ = writeln!(out, "  \"busy_retries\": {},", self.busy_retries);
        let _ = writeln!(out, "  \"batches\": {},", self.batches);
        let _ = writeln!(out, "  \"degraded_batches\": {},", self.degraded_batches);
        let _ = writeln!(out, "  \"kernel\": \"{}\",", self.kernel);
        let _ = writeln!(out, "  \"dispatch_tier\": \"{}\"", self.dispatch_tier);
        out.push_str("}\n");
        out
    }
}

/// Workload shape for the open-connection sweep: how does tail latency
/// move as thousands of idle connections sit on the daemon's poller?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnSweepConfig {
    /// Idle-connection counts to sweep through, one daemon each.
    pub open_levels: Vec<usize>,
    /// Concurrent active clients submitting alongside the idle herd.
    pub active_clients: usize,
    /// Stacks each active client submits.
    pub requests_per_client: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames per request.
    pub frames: usize,
    /// Daemon queue capacity (in-flight requests before `Busy`).
    pub capacity: usize,
}

impl ConnSweepConfig {
    /// The full sweep: 256 → 10 000 idle connections under the PR 3
    /// operating load (matching [`ServeConfig::standard`] frame shape).
    pub fn standard() -> Self {
        ConnSweepConfig {
            open_levels: vec![256, 1024, 4096, 10_000],
            active_clients: 4,
            requests_per_client: 8,
            width: 32,
            height: 32,
            frames: 8,
            capacity: 16,
        }
    }

    /// A CI-sized sweep that stays well inside default fd limits.
    pub fn quick() -> Self {
        ConnSweepConfig {
            open_levels: vec![64, 256],
            active_clients: 2,
            requests_per_client: 4,
            width: 16,
            height: 16,
            frames: 4,
            capacity: 8,
        }
    }
}

/// One sweep level: p50/p99 of the active traffic with `open_held` idle
/// connections parked on the same event loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnSweepRow {
    /// Idle connections the level asked for.
    pub open_target: usize,
    /// Idle connections actually established and held.
    pub open_held: usize,
    /// Median active-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile active-request latency, milliseconds.
    pub p99_ms: f64,
    /// `Busy` rejections absorbed by active-client retry.
    pub busy_retries: u64,
    /// Connections the daemon refused at the cap (its own counter).
    pub rejected_connections: u64,
}

/// Results of one open-connection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnSweepReport {
    /// The workload that ran.
    pub config: ConnSweepConfig,
    /// One row per sweep level.
    pub rows: Vec<ConnSweepRow>,
    /// `"subprocess"` when a `preflightd` binary served the sweep from its
    /// own process (each side keeps its own fd budget), `"in-process"`
    /// otherwise.
    pub daemon: &'static str,
}

/// A daemon under test: a real `preflightd` child process when the binary
/// is reachable, an in-process server otherwise. The subprocess path is
/// what lets a 10 000-connection level fit: each side of the socket pair
/// charges a different process's fd limit.
enum SweepDaemon {
    Subprocess {
        child: std::process::Child,
        addr: std::net::SocketAddr,
    },
    InProcess {
        handle: preflight_serve::server::ServerHandle,
        addr: std::net::SocketAddr,
    },
}

impl SweepDaemon {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            SweepDaemon::Subprocess { addr, .. } | SweepDaemon::InProcess { addr, .. } => *addr,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            SweepDaemon::Subprocess { .. } => "subprocess",
            SweepDaemon::InProcess { .. } => "in-process",
        }
    }

    /// Drains over the wire (both variants honour it) and reaps the child.
    fn stop(self) {
        let addr = self.addr();
        if let Ok(mut client) = ClientBuilder::new()
            .tcp(addr)
            .io_timeout(Duration::from_secs(30))
            .connect()
        {
            let _ = client.drain();
        }
        match self {
            SweepDaemon::Subprocess { mut child, .. } => {
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            SweepDaemon::InProcess { handle, .. } => {
                handle.drain();
            }
        }
    }
}

/// Locates a `preflightd` binary: `$PREFLIGHTD_BIN` wins, then siblings of
/// the running executable (`target/<profile>/` and, for unit-test
/// binaries, one directory above `deps/`).
fn find_preflightd() -> Option<std::path::PathBuf> {
    if let Ok(explicit) = std::env::var("PREFLIGHTD_BIN") {
        let path = std::path::PathBuf::from(explicit);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let candidate = dir.join("preflightd");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

fn spawn_daemon(capacity: usize) -> SweepDaemon {
    if let Some(bin) = find_preflightd() {
        let mut child = std::process::Command::new(&bin)
            .args(["--tcp", "127.0.0.1:0", "--capacity", &capacity.to_string()])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn preflightd");
        // The daemon announces its ephemeral port on stdout before serving.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufRead::lines(std::io::BufReader::new(stdout));
        let addr = loop {
            let line = match lines.next() {
                Some(Ok(line)) => line,
                _ => {
                    let _ = child.kill();
                    panic!("preflightd exited before announcing its address");
                }
            };
            if let Some(rest) = line.split("tcp://").nth(1) {
                break rest.trim().parse().expect("announced address parses");
            }
        };
        // Keep draining the pipe so the child never blocks on stdout.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        return SweepDaemon::Subprocess { child, addr };
    }
    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .queue_depth(capacity)
        .serve()
        .expect("in-process daemon start");
    let addr = handle.tcp_addr().expect("bound address");
    SweepDaemon::InProcess { handle, addr }
}

/// Runs the open-connection sweep: per level, park N idle connections on
/// a fresh daemon, drive the active workload through them, and read the
/// daemon's own rejection counters over the wire.
///
/// # Panics
/// Panics if a daemon cannot start or active traffic fails — harness
/// failures, not measurements.
pub fn conn_sweep(config: &ConnSweepConfig) -> ConnSweepReport {
    #[cfg(unix)]
    let _ = preflight_serve::poll::raise_nofile_limit();

    let mut rows = Vec::with_capacity(config.open_levels.len());
    let mut daemon_label = "in-process";
    for &level in &config.open_levels {
        let daemon = spawn_daemon(config.capacity);
        daemon_label = daemon.label();
        let addr = daemon.addr();

        let mut idle = Vec::with_capacity(level);
        for _ in 0..level {
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => idle.push(stream),
                Err(_) => break,
            }
        }
        let open_held = idle.len();

        let mut workers = Vec::new();
        for c in 0..config.active_clients {
            let config = config.clone();
            workers.push(std::thread::spawn(move || {
                let mut client = ClientBuilder::new()
                    .tcp(addr)
                    .connect()
                    .expect("active client connect");
                let mut latencies_ms = Vec::with_capacity(config.requests_per_client);
                let mut busy: u64 = 0;
                for r in 0..config.requests_per_client {
                    let seed = 0x0CEA ^ ((c as u64) << 32) ^ r as u64;
                    let stack = synthetic_stack(
                        config.width,
                        config.height,
                        config.frames,
                        seed,
                        sample_u16,
                    );
                    let opts = SubmitOptions {
                        stream_id: c as u64,
                        eos: true,
                        ..SubmitOptions::default()
                    };
                    let begin = Instant::now();
                    loop {
                        match client.submit(FramePayload::U16(stack.clone()), &opts) {
                            Ok(response) => {
                                assert_eq!(response.payload.frames(), config.frames);
                                break;
                            }
                            Err(ClientError::Busy(_)) => {
                                busy += 1;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(e) => panic!("active client {c} request {r} failed: {e}"),
                        }
                    }
                    latencies_ms.push(begin.elapsed().as_secs_f64() * 1e3);
                }
                (latencies_ms, busy)
            }));
        }

        let mut latencies_ms = Vec::new();
        let mut busy_retries = 0;
        for w in workers {
            let (lat, busy) = w.join().expect("active client thread");
            latencies_ms.extend(lat);
            busy_retries += busy;
        }

        let rejected_connections = ClientBuilder::new()
            .tcp(addr)
            .connect()
            .ok()
            .and_then(|mut c| c.stats().ok())
            .and_then(|snap| snap.counter("serve_connections_rejected_total", None))
            .unwrap_or(0);

        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        rows.push(ConnSweepRow {
            open_target: level,
            open_held,
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
            busy_retries,
            rejected_connections,
        });

        drop(idle);
        daemon.stop();
    }
    ConnSweepReport {
        config: config.clone(),
        rows,
        daemon: daemon_label,
    }
}

impl ConnSweepReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "open-connection sweep, {} active client(s) x {} request(s) of {}x{}x{} frames, \
             queue capacity {}, daemon {}",
            self.config.active_clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity,
            self.daemon
        );
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "open", "held", "p50_ms", "p99_ms", "busy", "rejected"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>10} {:>10} {:>10.3} {:>10.3} {:>8} {:>10}",
                row.open_target,
                row.open_held,
                row.p50_ms,
                row.p99_ms,
                row.busy_retries,
                row.rejected_connections
            );
        }
        out
    }

    /// The sweep as a hand-formatted JSON array (no JSON dependency).
    fn json_rows(&self) -> String {
        let mut out = String::new();
        out.push_str("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"open_target\": {}, \"open_held\": {}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"busy_retries\": {}, \"rejected_connections\": {}}}",
                row.open_target,
                row.open_held,
                row.p50_ms,
                row.p99_ms,
                row.busy_retries,
                row.rejected_connections
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        out
    }
}

/// Workload shape for the active-throughput sweep: how much traffic does
/// the data plane move as payload size, concurrency, and event-loop shard
/// count vary? Each cell starts a fresh in-process daemon with that shard
/// count and drives it to saturation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSweepConfig {
    /// `(width, height, frames)` payload shapes to sweep.
    pub payloads: Vec<(usize, usize, usize)>,
    /// Concurrent client-connection counts to sweep.
    pub client_levels: Vec<usize>,
    /// Daemon event-loop shard counts to sweep (`preflightd --shards`).
    pub shard_levels: Vec<usize>,
    /// Stacks each client submits per cell.
    pub requests_per_client: usize,
    /// Daemon queue capacity (in-flight requests before `Busy`).
    pub capacity: usize,
    /// Voter kernel the daemon's engine runs. The standard sweep uses the
    /// fastest kernel so the measurement saturates the *data plane*, not
    /// the voter — with a slow kernel every shard/copy improvement hides
    /// behind engine time.
    pub kernel: Kernel,
}

impl ActiveSweepConfig {
    /// The full sweep: small and large stacks, single and fanned-out
    /// clients, 1/2/4 shards — the grid behind the README's serving row.
    pub fn standard() -> Self {
        ActiveSweepConfig {
            payloads: vec![(32, 32, 8), (128, 128, 8), (256, 256, 8)],
            client_levels: vec![1, 8],
            shard_levels: vec![1, 2, 4],
            requests_per_client: 16,
            capacity: 16,
            kernel: Kernel::Bitsliced,
        }
    }

    /// A sub-second grid for CI.
    pub fn quick() -> Self {
        ActiveSweepConfig {
            payloads: vec![(16, 16, 4)],
            client_levels: vec![2],
            shard_levels: vec![1, 2],
            requests_per_client: 4,
            capacity: 8,
            kernel: Kernel::Sweep,
        }
    }
}

/// One active-sweep cell: throughput and latency at a fixed payload shape,
/// client count, and daemon shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSweepRow {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames per request.
    pub frames: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Daemon event-loop shards.
    pub shards: usize,
    /// Million samples served per second of wall time.
    pub mpix_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// `Busy` rejections absorbed by client retry.
    pub busy_retries: u64,
}

/// Results of one active-throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSweepReport {
    /// The workload that ran.
    pub config: ActiveSweepConfig,
    /// One row per `(payload, clients, shards)` cell.
    pub rows: Vec<ActiveSweepRow>,
}

/// Runs the active-throughput sweep: one fresh in-process daemon per cell
/// (so the shard count takes effect), saturated by the cell's client herd.
///
/// # Panics
/// Panics if a daemon cannot start or a client loses its connection —
/// harness failures, not measurements.
pub fn active_sweep(config: &ActiveSweepConfig) -> ActiveSweepReport {
    let mut rows = Vec::new();
    for &(width, height, frames) in &config.payloads {
        for &clients in &config.client_levels {
            for &shards in &config.shard_levels {
                let handle = ServerBuilder::new()
                    .bind("127.0.0.1:0")
                    .queue_depth(config.capacity)
                    .shards(shards)
                    .kernel(config.kernel)
                    .serve()
                    .expect("daemon start");
                let addr = handle.tcp_addr().expect("bound address");

                // Payloads are built before the clock starts: the sweep
                // measures the serving data plane, not synthetic-noise
                // generation.
                let prebuilt: Vec<Vec<_>> = (0..clients)
                    .map(|c| {
                        (0..config.requests_per_client)
                            .map(|r| {
                                let seed = 0xAC71 ^ ((c as u64) << 32) ^ r as u64;
                                synthetic_stack(width, height, frames, seed, sample_u16)
                            })
                            .collect()
                    })
                    .collect();

                let started = Instant::now();
                let mut workers = Vec::new();
                for (c, stacks) in prebuilt.into_iter().enumerate() {
                    let requests = config.requests_per_client;
                    workers.push(std::thread::spawn(move || {
                        let mut client = ClientBuilder::new()
                            .tcp(addr)
                            .connect()
                            .expect("client connect");
                        let mut latencies_ms = Vec::with_capacity(requests);
                        let mut busy: u64 = 0;
                        for (r, stack) in stacks.into_iter().enumerate() {
                            let opts = SubmitOptions {
                                stream_id: c as u64,
                                eos: true,
                                ..SubmitOptions::default()
                            };
                            let begin = Instant::now();
                            loop {
                                match client.submit(FramePayload::U16(stack.clone()), &opts) {
                                    Ok(response) => {
                                        assert_eq!(response.payload.frames(), frames);
                                        break;
                                    }
                                    Err(ClientError::Busy(_)) => {
                                        busy += 1;
                                        std::thread::sleep(Duration::from_millis(1));
                                    }
                                    Err(e) => panic!("client {c} request {r} failed: {e}"),
                                }
                            }
                            latencies_ms.push(begin.elapsed().as_secs_f64() * 1e3);
                        }
                        (latencies_ms, busy)
                    }));
                }

                let mut latencies_ms = Vec::new();
                let mut busy_retries = 0;
                for w in workers {
                    let (lat, busy) = w.join().expect("client thread");
                    latencies_ms.extend(lat);
                    busy_retries += busy;
                }
                let wall_secs = started.elapsed().as_secs_f64();
                handle.drain();

                latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
                let total_samples =
                    (clients * config.requests_per_client * width * height * frames) as f64;
                rows.push(ActiveSweepRow {
                    width,
                    height,
                    frames,
                    clients,
                    shards,
                    mpix_per_s: total_samples / wall_secs / 1e6,
                    p50_ms: percentile(&latencies_ms, 0.50),
                    p99_ms: percentile(&latencies_ms, 0.99),
                    busy_retries,
                });
            }
        }
    }
    ActiveSweepReport {
        config: config.clone(),
        rows,
    }
}

impl ActiveSweepReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "active-throughput sweep, {} request(s) per client, queue capacity {}, kernel {}",
            self.config.requests_per_client,
            self.config.capacity,
            kernel_label(self.config.kernel)
        );
        let _ = writeln!(
            out,
            "{:>14} {:>8} {:>7} {:>10} {:>10} {:>10} {:>8}",
            "payload", "clients", "shards", "Mpix/s", "p50_ms", "p99_ms", "busy"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>14} {:>8} {:>7} {:>10.2} {:>10.3} {:>10.3} {:>8}",
                format!("{}x{}x{}", row.width, row.height, row.frames),
                row.clients,
                row.shards,
                row.mpix_per_s,
                row.p50_ms,
                row.p99_ms,
                row.busy_retries
            );
        }
        out
    }

    /// The sweep as a hand-formatted JSON array (no JSON dependency).
    fn json_rows(&self) -> String {
        let mut out = String::new();
        out.push_str("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"width\": {}, \"height\": {}, \"frames\": {}, \"clients\": {}, \
                 \"shards\": {}, \"kernel\": \"{}\", \"mpix_per_s\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"busy_retries\": {}}}",
                row.width,
                row.height,
                row.frames,
                row.clients,
                row.shards,
                kernel_label(self.config.kernel),
                row.mpix_per_s,
                row.p50_ms,
                row.p99_ms,
                row.busy_retries
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        out
    }
}

/// The combined `BENCH_serve.json` document: the PR 3 operating-point
/// loadgen, the active-throughput sweep, and the open-connection sweep.
pub fn bench_json(
    report: &ServeReport,
    active: &ActiveSweepReport,
    sweep: &ConnSweepReport,
) -> String {
    let base = report.to_json();
    let trimmed = base
        .strip_suffix("}\n")
        .expect("loadgen json ends with a brace");
    let mut out = trimmed.trim_end().to_owned();
    out.push_str(",\n");
    let _ = writeln!(
        out,
        "  \"active_throughput_sweep\": {},",
        active.json_rows()
    );
    let _ = writeln!(out, "  \"open_connection_daemon\": \"{}\",", sweep.daemon);
    let _ = writeln!(out, "  \"open_connection_sweep\": {}", sweep.json_rows());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_loadgen_completes_and_reports_sane_numbers() {
        let report = serve_loadgen(&ServeConfig::quick());
        assert!(report.wall_secs > 0.0);
        assert!(report.mpix_per_s > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.batches >= 1);
        assert_eq!(report.degraded_batches, 0, "healthy run must not degrade");
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = serve_loadgen(&ServeConfig::quick());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"serve_throughput\""));
        // Kernel provenance matches the BENCH_preprocess.json row schema.
        assert!(json.contains("\"kernel\": \"sweep\""));
        assert!(json.contains("\"dispatch_tier\": \"-\""));
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
    }

    #[test]
    fn tiny_conn_sweep_holds_idle_connections_and_measures() {
        let config = ConnSweepConfig {
            open_levels: vec![8, 16],
            active_clients: 1,
            requests_per_client: 2,
            width: 8,
            height: 8,
            frames: 4,
            capacity: 4,
        };
        let report = conn_sweep(&config);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.open_held, row.open_target, "idle herd must connect");
            assert!(row.p99_ms >= row.p50_ms);
            assert_eq!(row.rejected_connections, 0, "well under the cap");
        }
    }

    #[test]
    fn quick_active_sweep_covers_the_grid() {
        let config = ActiveSweepConfig::quick();
        let report = active_sweep(&config);
        assert_eq!(
            report.rows.len(),
            config.payloads.len() * config.client_levels.len() * config.shard_levels.len()
        );
        for row in &report.rows {
            assert!(row.mpix_per_s > 0.0);
            assert!(row.p99_ms >= row.p50_ms);
        }
        // Shard counts actually varied across the grid.
        assert!(report.rows.iter().any(|r| r.shards == 1));
        assert!(report.rows.iter().any(|r| r.shards == 2));
    }

    #[test]
    fn combined_bench_json_nests_the_sweeps() {
        let report = serve_loadgen(&ServeConfig::quick());
        let active = ActiveSweepReport {
            config: ActiveSweepConfig::quick(),
            rows: vec![ActiveSweepRow {
                width: 16,
                height: 16,
                frames: 4,
                clients: 2,
                shards: 2,
                mpix_per_s: 10.0,
                p50_ms: 1.0,
                p99_ms: 2.0,
                busy_retries: 0,
            }],
        };
        let sweep = ConnSweepReport {
            config: ConnSweepConfig::quick(),
            rows: vec![ConnSweepRow {
                open_target: 64,
                open_held: 64,
                p50_ms: 1.0,
                p99_ms: 2.0,
                busy_retries: 0,
                rejected_connections: 0,
            }],
            daemon: "in-process",
        };
        let json = bench_json(&report, &active, &sweep);
        assert!(json.contains("\"active_throughput_sweep\": ["));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"open_connection_sweep\": ["));
        assert!(json.contains("\"open_target\": 64"));
        assert!(json.ends_with("}\n"));
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }
}
