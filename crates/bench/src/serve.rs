//! Load generator for the `preflightd` serving daemon (`repro serve`).
//!
//! Starts an in-process daemon on a loopback TCP socket, fans out N
//! concurrent client connections each submitting M frame stacks, and
//! reports request latency (p50/p99) and end-to-end throughput in Mpix/s.
//! `Busy` rejections from the bounded queue are retried (and counted), so
//! the run also measures how the daemon behaves at and beyond capacity.
//! The scriptable output lands in `BENCH_serve.json`.

use crate::perf::{kernel_label, sample_u16, synthetic_stack, tier_label};
use preflight_serve::server::{start, ServerConfig};
use preflight_serve::wire::FramePayload;
use preflight_serve::{Client, ClientError, SubmitOptions};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Workload shape for one serving benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Stacks each client submits.
    pub requests_per_client: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames per request.
    pub frames: usize,
    /// Daemon queue capacity (in-flight requests before `Busy`).
    pub capacity: usize,
}

impl ServeConfig {
    /// The standard load: 8 clients × 16 requests of 32×32×8 frames
    /// against a 16-slot queue — enough contention to exercise batching
    /// and occasional backpressure.
    pub fn standard() -> Self {
        ServeConfig {
            clients: 8,
            requests_per_client: 16,
            width: 32,
            height: 32,
            frames: 8,
            capacity: 16,
        }
    }

    /// A sub-second smoke workload for CI.
    pub fn quick() -> Self {
        ServeConfig {
            clients: 2,
            requests_per_client: 4,
            width: 16,
            height: 16,
            frames: 4,
            capacity: 8,
        }
    }

    /// Samples served per request.
    pub fn samples_per_request(&self) -> usize {
        self.width * self.height * self.frames
    }

    /// Total requests across all clients.
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }
}

/// Results of one serving benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The workload that ran.
    pub config: ServeConfig,
    /// Wall time for the whole run, in seconds.
    pub wall_secs: f64,
    /// Median request latency (submit → response), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Million samples served per second of wall time.
    pub mpix_per_s: f64,
    /// `Busy` rejections absorbed by client retry.
    pub busy_retries: u64,
    /// Batches the engine dispatched (from the daemon's counters).
    pub batches: u64,
    /// Batches that needed the degradation ladder.
    pub degraded_batches: u64,
    /// Voter kernel the daemon's engine ran (`scalar`, `sweep` or
    /// `bitsliced`), matching the `BENCH_preprocess.json` row schema.
    pub kernel: &'static str,
    /// Resolved SIMD dispatch tier for bit-sliced engines, `-` otherwise.
    pub dispatch_tier: &'static str,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Runs the load generator against a fresh in-process daemon.
///
/// # Panics
/// Panics if the daemon cannot start or a client loses its connection —
/// both are harness failures, not measurements.
pub fn serve_loadgen(config: &ServeConfig) -> ServeReport {
    let server_config = ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        capacity: config.capacity,
        ..ServerConfig::default()
    };
    let engine_kernel = server_config.engine.kernel;
    let handle = start(server_config).expect("daemon start");
    let addr = handle.tcp_addr().expect("bound address");

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..config.clients {
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).expect("client connect");
            let mut latencies_ms = Vec::with_capacity(config.requests_per_client);
            let mut busy: u64 = 0;
            for r in 0..config.requests_per_client {
                let seed = 0x5EED ^ ((c as u64) << 32) ^ r as u64;
                let stack =
                    synthetic_stack(config.width, config.height, config.frames, seed, sample_u16);
                let opts = SubmitOptions {
                    stream_id: c as u64,
                    eos: true,
                    ..SubmitOptions::default()
                };
                let begin = Instant::now();
                loop {
                    match client.submit(FramePayload::U16(stack.clone()), &opts) {
                        Ok(response) => {
                            assert_eq!(
                                response.payload.frames(),
                                config.frames,
                                "daemon must answer with the submitted depth"
                            );
                            break;
                        }
                        Err(ClientError::Busy(_)) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("client {c} request {r} failed: {e}"),
                    }
                }
                latencies_ms.push(begin.elapsed().as_secs_f64() * 1e3);
            }
            (latencies_ms, busy)
        }));
    }

    let mut latencies_ms = Vec::with_capacity(config.total_requests());
    let mut busy_retries = 0;
    for w in workers {
        let (lat, busy) = w.join().expect("client thread");
        latencies_ms.extend(lat);
        busy_retries += busy;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = handle.stats();
    let batches = stats.batches.get();
    let degraded_batches = stats.degraded_batches.get();
    handle.drain();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let total_samples = (config.total_requests() * config.samples_per_request()) as f64;
    ServeReport {
        config: config.clone(),
        wall_secs,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_ms,
        mpix_per_s: total_samples / wall_secs / 1e6,
        busy_retries,
        batches,
        degraded_batches,
        kernel: kernel_label(engine_kernel),
        dispatch_tier: tier_label(engine_kernel),
    }
}

impl ServeReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving throughput, {} client(s) x {} request(s) of {}x{}x{} frames, \
             queue capacity {}",
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "kernel",
            "tier",
            "wall_s",
            "p50_ms",
            "p99_ms",
            "mean_ms",
            "Mpix/s",
            "busy",
            "batches",
            "degraded"
        );
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>12.4} {:>10.3} {:>10.3} {:>10.3} {:>10.2} {:>8} {:>9} {:>9}",
            self.kernel,
            self.dispatch_tier,
            self.wall_secs,
            self.p50_ms,
            self.p99_ms,
            self.mean_ms,
            self.mpix_per_s,
            self.busy_retries,
            self.batches,
            self.degraded_batches
        );
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"serve_throughput\",");
        let _ = writeln!(
            out,
            "  \"workload\": {{\"clients\": {}, \"requests_per_client\": {}, \
             \"width\": {}, \"height\": {}, \"frames\": {}, \"capacity\": {}}},",
            self.config.clients,
            self.config.requests_per_client,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.capacity
        );
        let _ = writeln!(
            out,
            "  \"total_requests\": {},",
            self.config.total_requests()
        );
        let _ = writeln!(out, "  \"wall_secs\": {:.6},", self.wall_secs);
        let _ = writeln!(out, "  \"p50_ms\": {:.3},", self.p50_ms);
        let _ = writeln!(out, "  \"p99_ms\": {:.3},", self.p99_ms);
        let _ = writeln!(out, "  \"mean_ms\": {:.3},", self.mean_ms);
        let _ = writeln!(out, "  \"mpix_per_s\": {:.3},", self.mpix_per_s);
        let _ = writeln!(out, "  \"busy_retries\": {},", self.busy_retries);
        let _ = writeln!(out, "  \"batches\": {},", self.batches);
        let _ = writeln!(out, "  \"degraded_batches\": {},", self.degraded_batches);
        let _ = writeln!(out, "  \"kernel\": \"{}\",", self.kernel);
        let _ = writeln!(out, "  \"dispatch_tier\": \"{}\"", self.dispatch_tier);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_loadgen_completes_and_reports_sane_numbers() {
        let report = serve_loadgen(&ServeConfig::quick());
        assert!(report.wall_secs > 0.0);
        assert!(report.mpix_per_s > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.batches >= 1);
        assert_eq!(report.degraded_batches, 0, "healthy run must not degrade");
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = serve_loadgen(&ServeConfig::quick());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"serve_throughput\""));
        // Kernel provenance matches the BENCH_preprocess.json row schema.
        assert!(json.contains("\"kernel\": \"sweep\""));
        assert!(json.contains("\"dispatch_tier\": \"-\""));
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
    }
}
