//! Experiment scaling and result containers.

use std::fmt::Write as _;

/// How much work each experiment does.
///
/// `quick` keeps every experiment under ~a second for smoke tests; `paper`
/// approaches the paper's averaging depth (100-dataset averages, 64-frame
/// series, full Γ sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Datasets averaged per point.
    pub trials: usize,
    /// Temporal series length `N`.
    pub series_len: usize,
    /// OTIS scene edge length (scenes are square).
    pub otis_size: usize,
    /// NGST stack tile edge for stack-level experiments.
    pub stack_edge: usize,
}

impl Scale {
    /// Smoke-test scale: everything small.
    pub fn quick() -> Self {
        Scale {
            trials: 12,
            series_len: 64,
            otis_size: 32,
            stack_edge: 16,
        }
    }

    /// The default scale of the `repro` binary: enough averaging for
    /// stable orderings at interactive runtimes.
    pub fn medium() -> Self {
        Scale {
            trials: 40,
            series_len: 64,
            otis_size: 64,
            stack_edge: 32,
        }
    }

    /// The paper's averaging depth.
    pub fn paper() -> Self {
        Scale {
            trials: 100,
            series_len: 64,
            otis_size: 96,
            stack_edge: 64,
        }
    }
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (algorithm name, possibly with parameters).
    pub label: String,
    /// y value per x grid point.
    pub ys: Vec<f64>,
    /// Standard error of each y (empty when the experiment reports plain
    /// means).
    pub stderrs: Vec<f64>,
}

impl Series {
    /// An empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            ys: Vec::new(),
            stderrs: Vec::new(),
        }
    }

    /// A series of plain means (no error bars).
    pub fn from_means(label: impl Into<String>, ys: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            ys,
            stderrs: Vec::new(),
        }
    }

    /// Appends a point with its standard error.
    pub fn push(&mut self, stats: Stats) {
        self.ys.push(stats.mean);
        self.stderrs.push(stats.stderr);
    }
}

/// An online accumulator for mean and standard error of the mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accum {
    sum: f64,
    sum_sq: f64,
    n: usize,
}

/// A summarized sample: mean and standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (0 for fewer than two samples).
    pub stderr: f64,
    /// Sample count.
    pub n: usize,
}

impl Accum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accum::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
        self.sum_sq += x * x;
        self.n += 1;
    }

    /// Summarizes the samples seen so far.
    pub fn stats(&self) -> Stats {
        let n = self.n as f64;
        if self.n == 0 {
            return Stats {
                mean: 0.0,
                stderr: 0.0,
                n: 0,
            };
        }
        let mean = self.sum / n;
        let stderr = if self.n < 2 {
            0.0
        } else {
            let var = (self.sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0);
            (var / n).sqrt()
        };
        Stats {
            mean,
            stderr,
            n: self.n,
        }
    }
}

/// One reproduced figure: an x grid and a bundle of curves over it.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Short identifier, e.g. `fig2`.
    pub id: String,
    /// Human title quoting the paper figure it reproduces.
    pub title: String,
    /// x axis label.
    pub xlabel: String,
    /// y axis label.
    pub ylabel: String,
    /// The x grid.
    pub xs: Vec<f64>,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders an aligned text table (x column + one column per series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.ylabel);
        let _ = write!(out, "{:>12}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, " {:>18}", truncate(&s.label, 18));
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>12.5}");
            for s in &self.series {
                match s.ys.get(i) {
                    Some(y) if y.is_finite() => match s.stderrs.get(i) {
                        Some(e) if *e > 0.0 => {
                            let cell = format!("{y:.6}±{e:.6}");
                            let _ = write!(out, " {cell:>18}");
                        }
                        _ => {
                            let _ = write!(out, " {y:>18.6}");
                        }
                    },
                    _ => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV with a header row. Series carrying
    /// standard errors get a second `<label> stderr` column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_field(&self.xlabel));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_field(&s.label));
            if !s.stderrs.is_empty() {
                let _ = write!(out, ",{}", csv_field(&format!("{} stderr", s.label)));
            }
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.ys.get(i) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
                if !s.stderrs.is_empty() {
                    match s.stderrs.get(i) {
                        Some(e) => {
                            let _ = write!(out, ",{e}");
                        }
                        None => out.push(','),
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            title: "demo".into(),
            xlabel: "gamma".into(),
            ylabel: "psi".into(),
            xs: vec![0.01, 0.02],
            series: vec![
                Series::from_means("NoPre", vec![0.1, 0.2]),
                Series::from_means("Algo", vec![0.001, f64::NAN]),
            ],
        }
    }

    #[test]
    fn table_contains_all_labels_and_rows() {
        let t = sample().to_table();
        assert!(t.contains("NoPre"));
        assert!(t.contains("Algo"));
        assert!(t.contains("0.01000"));
        assert!(t.lines().count() >= 5);
        assert!(t.contains(" -"), "NaN renders as a dash");
    }

    #[test]
    fn csv_is_rectangular() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert_eq!(l.matches(',').count(), 2, "line {l:?}");
        }
    }

    #[test]
    fn csv_quotes_awkward_labels() {
        let mut f = sample();
        f.series[0].label = "a,b".into();
        assert!(f.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert!(f.series("NoPre").is_some());
        assert!(f.series("nope").is_none());
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().trials < Scale::medium().trials);
        assert!(Scale::medium().trials < Scale::paper().trials);
        assert!(Scale::quick().otis_size < Scale::paper().otis_size);
    }
}
