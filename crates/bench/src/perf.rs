//! Throughput benchmark for the preprocessing engine (`repro perf`).
//!
//! Times the three stack drivers of the unified [`Preprocessor`] — the
//! naive per-coordinate reference loop (`.naive(true)`), the cache-aware
//! series-major tiled path and the data-parallel worker pool — over a
//! synthetic NGST-like cube, in Mpix/s (million samples preprocessed per
//! second of wall time). All drivers run with observability disabled (the
//! default), so these numbers double as the zero-overhead guard for the
//! instrumentation: they must stay within noise of the PR 2 free-function
//! baseline. The same workload feeds the `preprocess_throughput` Criterion
//! bench; this module is the scriptable variant that emits
//! `BENCH_preprocess.json`.
//!
//! Every timed run is also checked bit-identical against the naive driver,
//! so a perf regression hunt can never silently trade away correctness.

use preflight_core::{
    available_threads, AlgoNgst, BitPixel, ImageStack, Preprocessor, Sensitivity, Upsilon,
    DEFAULT_TILE,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Workload shape and repetition depth for one perf run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfConfig {
    /// Cube width in pixels.
    pub width: usize,
    /// Cube height in pixels.
    pub height: usize,
    /// Temporal frames per coordinate.
    pub frames: usize,
    /// Timed repetitions per driver; the best (minimum) time is reported.
    pub reps: usize,
    /// Thread counts to sweep for the parallel driver.
    pub threads: Vec<usize>,
}

impl PerfConfig {
    /// The standard workload: the 64×64×128 cube of the acceptance
    /// criterion, swept over 1/2/4/8 threads.
    pub fn standard() -> Self {
        PerfConfig {
            width: 64,
            height: 64,
            frames: 128,
            reps: 3,
            threads: vec![1, 2, 4, 8],
        }
    }

    /// A sub-second smoke workload for CI.
    pub fn quick() -> Self {
        PerfConfig {
            width: 16,
            height: 16,
            frames: 32,
            reps: 1,
            threads: vec![1, 2],
        }
    }

    /// Samples preprocessed per driver pass.
    pub fn samples(&self) -> usize {
        self.width * self.height * self.frames
    }
}

/// One timed driver × pixel-width × thread-count cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Driver name: `naive`, `tiled` or `parallel`.
    pub driver: &'static str,
    /// Pixel width in bits (16 or 32).
    pub pixel_bits: u32,
    /// Worker threads used (1 for the sequential drivers).
    pub threads: usize,
    /// Best wall time for one full pass, in seconds.
    pub seconds: f64,
    /// Million samples preprocessed per second of wall time.
    pub mpix_per_s: f64,
    /// Speedup over the naive sequential driver at the same pixel width.
    pub speedup: f64,
}

/// A complete perf run: the workload shape plus every timed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// The workload that was timed.
    pub config: PerfConfig,
    /// The machine's available parallelism when the run happened.
    pub available_threads: usize,
    /// All timed cells, grouped by pixel width then driver.
    pub rows: Vec<PerfRow>,
}

/// Synthetic calm-sky stack with sparse high-bit flips: the workload every
/// driver is timed on (deterministic in `seed`, identical across drivers).
pub fn synthetic_stack<T: BitPixel>(
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    sample: impl Fn(u64) -> T,
) -> ImageStack<T> {
    let mut stack = ImageStack::new(width, height, frames);
    let mut state = seed | 1;
    for v in stack.as_mut_slice() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        *v = sample(state);
    }
    stack
}

/// The `u16` workload sample: calm ~27k level, ~2 % large flips.
pub fn sample_u16(state: u64) -> u16 {
    let mut v = 27_000 + (state >> 60) as u16;
    if state >> 32 & 0xFF < 5 {
        v ^= 1 << (10 + (state >> 40 & 0x3) as u32);
    }
    v
}

/// The `u32` workload sample: same shape, shifted into the wider word.
pub fn sample_u32(state: u64) -> u32 {
    let mut v = 1_700_000_000 + (state >> 56) as u32;
    if state >> 32 & 0xFF < 5 {
        v ^= 1 << (20 + (state >> 40 & 0x3) as u32);
    }
    v
}

/// The algorithm every driver runs: the paper's defaults (Υ = 4, Λ = 80).
pub fn perf_algo() -> AlgoNgst {
    AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).expect("valid lambda"))
}

/// Best-of-`reps` wall time for `pass`, run on a fresh clone each rep.
fn best_secs<T: BitPixel>(
    reps: usize,
    input: &ImageStack<T>,
    mut pass: impl FnMut(&mut ImageStack<T>) -> usize,
) -> (f64, ImageStack<T>, usize) {
    let mut best = f64::INFINITY;
    let mut output = input.clone();
    let mut changed = 0;
    for _ in 0..reps.max(1) {
        let mut work = input.clone();
        let start = Instant::now();
        let n = pass(&mut work);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        output = work;
        changed = n;
    }
    (best, output, changed)
}

fn run_pixel_width<T: BitPixel>(
    config: &PerfConfig,
    pixel_bits: u32,
    sample: impl Fn(u64) -> T,
    rows: &mut Vec<PerfRow>,
) {
    let algo = perf_algo();
    let input = synthetic_stack(config.width, config.height, config.frames, 0xA5A5, sample);
    let mpix = |secs: f64| config.samples() as f64 / secs / 1e6;

    let naive = Preprocessor::new(&algo).naive(true);
    let (naive_secs, reference, want) = best_secs(config.reps, &input, |s| naive.run(s));
    rows.push(PerfRow {
        driver: "naive",
        pixel_bits,
        threads: 1,
        seconds: naive_secs,
        mpix_per_s: mpix(naive_secs),
        speedup: 1.0,
    });

    let tiled = Preprocessor::new(&algo).tile(DEFAULT_TILE);
    let (secs, out, got) = best_secs(config.reps, &input, |s| tiled.run(s));
    assert_eq!((got, &out), (want, &reference), "tiled driver diverged");
    rows.push(PerfRow {
        driver: "tiled",
        pixel_bits,
        threads: 1,
        seconds: secs,
        mpix_per_s: mpix(secs),
        speedup: naive_secs / secs,
    });

    for &threads in &config.threads {
        let parallel = Preprocessor::new(&algo).threads(threads);
        let (secs, out, got) = best_secs(config.reps, &input, |s| parallel.run(s));
        assert_eq!(
            (got, &out),
            (want, &reference),
            "parallel driver diverged at {threads} threads"
        );
        rows.push(PerfRow {
            driver: "parallel",
            pixel_bits,
            threads,
            seconds: secs,
            mpix_per_s: mpix(secs),
            speedup: naive_secs / secs,
        });
    }
}

/// Runs the full sweep: every driver, `u16` and `u32` pixels.
pub fn preprocess_perf(config: &PerfConfig) -> PerfReport {
    let mut rows = Vec::new();
    run_pixel_width::<u16>(config, 16, sample_u16, &mut rows);
    run_pixel_width::<u32>(config, 32, sample_u32, &mut rows);
    PerfReport {
        config: config.clone(),
        available_threads: available_threads(),
        rows,
    }
}

impl PerfReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "preprocess throughput, {}x{}x{} cube ({} samples/pass), \
             best of {} rep(s), {} hardware thread(s)",
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.samples(),
            self.config.reps,
            self.available_threads
        );
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>12} {:>10} {:>8}",
            "driver", "bits", "threads", "seconds", "Mpix/s", "speedup"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>8} {:>12.6} {:>10.2} {:>7.2}x",
                r.driver, r.pixel_bits, r.threads, r.seconds, r.mpix_per_s, r.speedup
            );
        }
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"preprocess_throughput\",");
        let _ = writeln!(
            out,
            "  \"cube\": {{\"width\": {}, \"height\": {}, \"frames\": {}}},",
            self.config.width, self.config.height, self.config.frames
        );
        let _ = writeln!(out, "  \"samples_per_pass\": {},", self.config.samples());
        let _ = writeln!(out, "  \"reps\": {},", self.config.reps);
        let _ = writeln!(out, "  \"available_threads\": {},", self.available_threads);
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"driver\": \"{}\", \"pixel_bits\": {}, \"threads\": {}, \
                 \"seconds\": {:.6}, \"mpix_per_s\": {:.3}, \"speedup\": {:.3}}}{comma}",
                r.driver, r.pixel_bits, r.threads, r.seconds, r.mpix_per_s, r.speedup
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_sane_rows() {
        let report = preprocess_perf(&PerfConfig::quick());
        // naive + tiled + 2 thread counts, for 2 pixel widths.
        assert_eq!(report.rows.len(), 8);
        assert!(report.rows.iter().all(|r| r.mpix_per_s > 0.0));
        assert!(report.rows.iter().all(|r| r.seconds > 0.0));
        assert!(report
            .rows
            .iter()
            .filter(|r| r.driver == "naive")
            .all(|r| r.speedup == 1.0));
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = preprocess_perf(&PerfConfig::quick());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"driver\"").count(), report.rows.len());
        assert!(json.contains("\"benchmark\": \"preprocess_throughput\""));
        // Balanced braces and brackets (flat document, no strings with
        // either character).
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn workload_actually_exercises_the_repair_path() {
        let algo = perf_algo();
        let mut stack = synthetic_stack(16, 16, 32, 0xA5A5, sample_u16);
        assert!(
            Preprocessor::new(&algo).naive(true).run(&mut stack) > 0,
            "perf workload must contain repairable flips"
        );
    }
}
