//! Throughput benchmark for the preprocessing engine (`repro perf`).
//!
//! Times the three stack drivers of the unified [`Preprocessor`] — the
//! naive per-coordinate reference loop (`.naive(true)`), the cache-aware
//! series-major tiled path and the data-parallel worker pool — over a
//! synthetic NGST-like cube, in Mpix/s (million samples preprocessed per
//! second of wall time). Each driver is timed under all three voter
//! kernels ([`Kernel::Scalar`], the plane-sweep [`Kernel::Sweep`] and the
//! bit-sliced [`Kernel::Bitsliced`]), and a multi-pass section times the
//! tiled driver at `passes = 3`, where the shared difference planes and
//! bit-plane transposes pay off most. All drivers run
//! with observability disabled (the default), so these numbers double as
//! the zero-overhead guard for the instrumentation. The same workload
//! feeds the `preprocess_throughput` Criterion bench; this module is the
//! scriptable variant that emits `BENCH_preprocess.json`.
//!
//! Honesty rules: thread counts beyond the machine's available
//! parallelism are skipped (they would re-measure the capped pool and
//! report it as a bigger sweep), and every row records the thread count
//! that actually ran. Every timed run is also checked bit-identical
//! against its section's reference, so a perf regression hunt can never
//! silently trade away correctness. The report header records the CPU
//! feature tiers detected at run time and each bit-sliced row records the
//! SIMD dispatch tier it actually executed under, so an artifact measured
//! on one machine is never mistaken for another's.

use preflight_core::{
    available_threads, detected_tiers, dispatch_tier, AlgoNgst, BitPixel, ImageStack, Kernel,
    NgstConfig, Preprocessor, Sensitivity, Upsilon, DEFAULT_TILE,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Workload shape and repetition depth for one perf run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfConfig {
    /// Cube width in pixels.
    pub width: usize,
    /// Cube height in pixels.
    pub height: usize,
    /// Temporal frames per coordinate.
    pub frames: usize,
    /// Timed repetitions per driver; the best (minimum) time is reported.
    pub reps: usize,
    /// Thread counts to sweep for the parallel driver. Counts above the
    /// machine's available parallelism are skipped, not capped.
    pub threads: Vec<usize>,
    /// Voter passes for the multi-pass section (`0` disables it).
    pub multipass: usize,
}

impl PerfConfig {
    /// The standard workload: the 64×64×128 cube of the acceptance
    /// criterion, swept over 1/2/4/8 threads, with a 3-pass section.
    pub fn standard() -> Self {
        PerfConfig {
            width: 64,
            height: 64,
            frames: 128,
            reps: 3,
            threads: vec![1, 2, 4, 8],
            multipass: 3,
        }
    }

    /// A sub-second smoke workload for CI.
    pub fn quick() -> Self {
        PerfConfig {
            width: 16,
            height: 16,
            frames: 32,
            reps: 1,
            threads: vec![1, 2],
            multipass: 3,
        }
    }

    /// Samples preprocessed per driver pass.
    pub fn samples(&self) -> usize {
        self.width * self.height * self.frames
    }

    /// The thread counts that will actually be timed on this machine.
    pub fn effective_thread_counts(&self) -> Vec<usize> {
        let cap = available_threads();
        self.threads.iter().copied().filter(|&t| t <= cap).collect()
    }
}

/// One timed driver × kernel × pixel-width × thread-count cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Driver name: `naive`, `tiled` or `parallel`.
    pub driver: &'static str,
    /// Voter kernel: `scalar`, `sweep` or `bitsliced`.
    pub kernel: &'static str,
    /// SIMD dispatch tier the row executed under: the resolved tier name
    /// (`portable`, `avx2`, `neon`) for bit-sliced rows, `-` for the
    /// value-domain kernels which have no SIMD dispatch.
    pub dispatch_tier: &'static str,
    /// Pixel width in bits (16 or 32).
    pub pixel_bits: u32,
    /// Voter passes per run (1 for the single-pass section).
    pub passes: usize,
    /// Worker threads that actually ran (1 for the sequential drivers;
    /// requested counts beyond the machine are skipped entirely).
    pub threads: usize,
    /// Best wall time for one full run, in seconds.
    pub seconds: f64,
    /// Million samples preprocessed per second of wall time.
    pub mpix_per_s: f64,
    /// Speedup over the section's scalar reference at the same pixel
    /// width (naive/scalar for the single-pass section, tiled/scalar for
    /// the multi-pass section).
    pub speedup: f64,
}

/// A complete perf run: the workload shape plus every timed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// The workload that was timed.
    pub config: PerfConfig,
    /// The machine's available parallelism when the run happened.
    pub available_threads: usize,
    /// CPU feature tiers usable on this machine (always starts with
    /// `portable`), as detected at run time.
    pub cpu_features: Vec<&'static str>,
    /// The SIMD tier the bit-sliced kernel resolved to for this run.
    pub resolved_tier: &'static str,
    /// Requested thread counts that were skipped as unavailable.
    pub skipped_threads: Vec<usize>,
    /// All timed cells, grouped by pixel width then driver.
    pub rows: Vec<PerfRow>,
}

/// Synthetic calm-sky stack with sparse high-bit flips: the workload every
/// driver is timed on (deterministic in `seed`, identical across drivers).
pub fn synthetic_stack<T: BitPixel>(
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    sample: impl Fn(u64) -> T,
) -> ImageStack<T> {
    let mut stack = ImageStack::new(width, height, frames);
    let mut state = seed | 1;
    for v in stack.as_mut_slice() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        *v = sample(state);
    }
    stack
}

/// The `u16` workload sample: calm ~27k level, ~2 % large flips.
pub fn sample_u16(state: u64) -> u16 {
    let mut v = 27_000 + (state >> 60) as u16;
    if state >> 32 & 0xFF < 5 {
        v ^= 1 << (10 + (state >> 40 & 0x3) as u32);
    }
    v
}

/// The `u32` workload sample: same shape, shifted into the wider word.
pub fn sample_u32(state: u64) -> u32 {
    let mut v = 1_700_000_000 + (state >> 56) as u32;
    if state >> 32 & 0xFF < 5 {
        v ^= 1 << (20 + (state >> 40 & 0x3) as u32);
    }
    v
}

/// The algorithm every driver runs: the paper's defaults (Υ = 4, Λ = 80).
pub fn perf_algo() -> AlgoNgst {
    AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).expect("valid lambda"))
}

/// The multi-pass variant of [`perf_algo`].
pub fn perf_algo_passes(passes: usize) -> AlgoNgst {
    AlgoNgst::with_config(
        Upsilon::FOUR,
        Sensitivity::new(80).expect("valid lambda"),
        NgstConfig {
            passes,
            ..NgstConfig::default()
        },
    )
}

/// The stable label used in rows, tables and JSON for a kernel.
pub fn kernel_label(kernel: Kernel) -> &'static str {
    match kernel {
        Kernel::Scalar => "scalar",
        Kernel::Sweep => "sweep",
        Kernel::Bitsliced => "bitsliced",
    }
}

/// The dispatch-tier cell for a row: the resolved SIMD tier for the
/// bit-sliced kernel, `-` for the value-domain kernels.
pub fn tier_label(kernel: Kernel) -> &'static str {
    match kernel {
        Kernel::Bitsliced => dispatch_tier().name(),
        _ => "-",
    }
}

/// Best-of-`reps` wall time for `pass`, run on a fresh clone each rep.
fn best_secs<T: BitPixel>(
    reps: usize,
    input: &ImageStack<T>,
    mut pass: impl FnMut(&mut ImageStack<T>) -> usize,
) -> (f64, ImageStack<T>, usize) {
    let mut best = f64::INFINITY;
    let mut output = input.clone();
    let mut changed = 0;
    for _ in 0..reps.max(1) {
        let mut work = input.clone();
        let start = Instant::now();
        let n = pass(&mut work);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        output = work;
        changed = n;
    }
    (best, output, changed)
}

fn run_pixel_width<T: BitPixel>(
    config: &PerfConfig,
    pixel_bits: u32,
    sample: impl Fn(u64) -> T,
    rows: &mut Vec<PerfRow>,
) {
    let algo = perf_algo();
    let input = synthetic_stack(config.width, config.height, config.frames, 0xA5A5, sample);
    let mpix = |secs: f64| config.samples() as f64 / secs / 1e6;
    let thread_counts = config.effective_thread_counts();

    // Single-pass section: every driver under both kernels, all checked
    // bit-identical against the naive/scalar reference.
    let reference = Preprocessor::new(&algo).naive(true).kernel(Kernel::Scalar);
    let (ref_secs, reference_out, want) = best_secs(config.reps, &input, |s| reference.run(s));
    rows.push(PerfRow {
        driver: "naive",
        kernel: kernel_label(Kernel::Scalar),
        dispatch_tier: tier_label(Kernel::Scalar),
        pixel_bits,
        passes: 1,
        threads: 1,
        seconds: ref_secs,
        mpix_per_s: mpix(ref_secs),
        speedup: 1.0,
    });

    for kernel in [Kernel::Scalar, Kernel::Sweep, Kernel::Bitsliced] {
        let label = kernel_label(kernel);
        if kernel != Kernel::Scalar {
            let naive = Preprocessor::new(&algo).naive(true).kernel(kernel);
            let (secs, out, got) = best_secs(config.reps, &input, |s| naive.run(s));
            assert_eq!(
                (got, &out),
                (want, &reference_out),
                "naive/{label} diverged"
            );
            rows.push(PerfRow {
                driver: "naive",
                kernel: label,
                dispatch_tier: tier_label(kernel),
                pixel_bits,
                passes: 1,
                threads: 1,
                seconds: secs,
                mpix_per_s: mpix(secs),
                speedup: ref_secs / secs,
            });
        }

        let tiled = Preprocessor::new(&algo).tile(DEFAULT_TILE).kernel(kernel);
        let (secs, out, got) = best_secs(config.reps, &input, |s| tiled.run(s));
        assert_eq!(
            (got, &out),
            (want, &reference_out),
            "tiled/{label} diverged"
        );
        rows.push(PerfRow {
            driver: "tiled",
            kernel: label,
            dispatch_tier: tier_label(kernel),
            pixel_bits,
            passes: 1,
            threads: 1,
            seconds: secs,
            mpix_per_s: mpix(secs),
            speedup: ref_secs / secs,
        });

        for &threads in &thread_counts {
            let parallel = Preprocessor::new(&algo).threads(threads).kernel(kernel);
            let (secs, out, got) = best_secs(config.reps, &input, |s| parallel.run(s));
            assert_eq!(
                (got, &out),
                (want, &reference_out),
                "parallel/{label} diverged at {threads} threads"
            );
            rows.push(PerfRow {
                driver: "parallel",
                kernel: label,
                dispatch_tier: tier_label(kernel),
                pixel_bits,
                passes: 1,
                threads,
                seconds: secs,
                mpix_per_s: mpix(secs),
                speedup: ref_secs / secs,
            });
        }
    }

    // Multi-pass section: the tiled driver at `passes` voter passes, its
    // own scalar reference. This is where the sweep kernel's shared
    // difference planes and the bit-sliced kernel's per-group transpose
    // amortize across repeated cutoff rebuilds.
    if config.multipass > 1 {
        let multi = perf_algo_passes(config.multipass);
        let scalar = Preprocessor::new(&multi)
            .tile(DEFAULT_TILE)
            .kernel(Kernel::Scalar);
        let (scalar_secs, scalar_out, scalar_n) = best_secs(config.reps, &input, |s| scalar.run(s));
        rows.push(PerfRow {
            driver: "tiled",
            kernel: kernel_label(Kernel::Scalar),
            dispatch_tier: tier_label(Kernel::Scalar),
            pixel_bits,
            passes: config.multipass,
            threads: 1,
            seconds: scalar_secs,
            mpix_per_s: mpix(scalar_secs),
            speedup: 1.0,
        });

        for kernel in [Kernel::Sweep, Kernel::Bitsliced] {
            let label = kernel_label(kernel);
            let timed = Preprocessor::new(&multi).tile(DEFAULT_TILE).kernel(kernel);
            let (secs, out, got) = best_secs(config.reps, &input, |s| timed.run(s));
            assert_eq!(
                (got, &out),
                (scalar_n, &scalar_out),
                "multi-pass {label} diverged"
            );
            rows.push(PerfRow {
                driver: "tiled",
                kernel: label,
                dispatch_tier: tier_label(kernel),
                pixel_bits,
                passes: config.multipass,
                threads: 1,
                seconds: secs,
                mpix_per_s: mpix(secs),
                speedup: scalar_secs / secs,
            });
        }
    }
}

/// Runs the full sweep: every driver × kernel, `u16` and `u32` pixels.
pub fn preprocess_perf(config: &PerfConfig) -> PerfReport {
    let cap = available_threads();
    let skipped_threads: Vec<usize> = config
        .threads
        .iter()
        .copied()
        .filter(|&t| t > cap)
        .collect();
    let mut rows = Vec::new();
    run_pixel_width::<u16>(config, 16, sample_u16, &mut rows);
    run_pixel_width::<u32>(config, 32, sample_u32, &mut rows);
    PerfReport {
        config: config.clone(),
        available_threads: cap,
        cpu_features: detected_tiers().into_iter().map(|t| t.name()).collect(),
        resolved_tier: dispatch_tier().name(),
        skipped_threads,
        rows,
    }
}

impl PerfReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "preprocess throughput, {}x{}x{} cube ({} samples/pass), \
             best of {} rep(s), {} hardware thread(s)",
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.samples(),
            self.config.reps,
            self.available_threads
        );
        let _ = writeln!(
            out,
            "cpu features: [{}], bit-sliced dispatch tier: {}",
            self.cpu_features.join(", "),
            self.resolved_tier
        );
        if !self.skipped_threads.is_empty() {
            let _ = writeln!(
                out,
                "skipped thread count(s) beyond this machine: {:?}",
                self.skipped_threads
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:<9} {:>6} {:>7} {:>8} {:>12} {:>10} {:>8}",
            "driver", "kernel", "tier", "bits", "passes", "threads", "seconds", "Mpix/s", "speedup"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:<9} {:>6} {:>7} {:>8} {:>12.6} {:>10.2} {:>7.2}x",
                r.driver,
                r.kernel,
                r.dispatch_tier,
                r.pixel_bits,
                r.passes,
                r.threads,
                r.seconds,
                r.mpix_per_s,
                r.speedup
            );
        }
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"preprocess_throughput\",");
        let _ = writeln!(
            out,
            "  \"cube\": {{\"width\": {}, \"height\": {}, \"frames\": {}}},",
            self.config.width, self.config.height, self.config.frames
        );
        let _ = writeln!(out, "  \"samples_per_pass\": {},", self.config.samples());
        let _ = writeln!(out, "  \"reps\": {},", self.config.reps);
        let _ = writeln!(out, "  \"available_threads\": {},", self.available_threads);
        let features: Vec<String> = self
            .cpu_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect();
        let _ = writeln!(out, "  \"cpu_features\": [{}],", features.join(", "));
        let _ = writeln!(out, "  \"dispatch_tier\": \"{}\",", self.resolved_tier);
        let skipped: Vec<String> = self.skipped_threads.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(out, "  \"skipped_threads\": [{}],", skipped.join(", "));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"driver\": \"{}\", \"kernel\": \"{}\", \"dispatch_tier\": \"{}\", \
                 \"pixel_bits\": {}, \
                 \"passes\": {}, \"threads\": {}, \"seconds\": {:.6}, \
                 \"mpix_per_s\": {:.3}, \"speedup\": {:.3}}}{comma}",
                r.driver,
                r.kernel,
                r.dispatch_tier,
                r.pixel_bits,
                r.passes,
                r.threads,
                r.seconds,
                r.mpix_per_s,
                r.speedup
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_sane_rows() {
        let config = PerfConfig::quick();
        let report = preprocess_perf(&config);
        // Per pixel width: naive (scalar ref + sweep + bitsliced) + tiled
        // × 3 kernels + parallel × 3 kernels × effective thread counts +
        // the 3 multi-pass tiled rows.
        let t = config.effective_thread_counts().len();
        assert_eq!(report.rows.len(), 2 * (3 + 3 + 3 * t + 3));
        assert!(report.rows.iter().all(|r| r.mpix_per_s > 0.0));
        assert!(report.rows.iter().all(|r| r.seconds > 0.0));
        // Bit-sliced rows carry the tier they executed under; the
        // value-domain kernels have no dispatch.
        assert_eq!(report.cpu_features.first(), Some(&"portable"));
        assert!(report.cpu_features.contains(&report.resolved_tier));
        assert!(report
            .rows
            .iter()
            .all(|r| (r.kernel == "bitsliced") == (r.dispatch_tier != "-")));
        assert!(report
            .rows
            .iter()
            .filter(|r| r.kernel == "bitsliced")
            .all(|r| r.dispatch_tier == report.resolved_tier));
        assert!(report
            .rows
            .iter()
            .all(|r| r.threads <= report.available_threads));
        assert!(report
            .rows
            .iter()
            .filter(|r| r.driver == "naive" && r.kernel == "scalar")
            .all(|r| r.speedup == 1.0));
        assert!(report.rows.iter().any(|r| r.kernel == "sweep"));
        assert!(report.rows.iter().any(|r| r.passes == config.multipass));
    }

    #[test]
    fn oversubscribed_thread_counts_are_skipped_not_capped() {
        let config = PerfConfig {
            threads: vec![1, available_threads() + 7],
            multipass: 0,
            ..PerfConfig::quick()
        };
        let report = preprocess_perf(&config);
        assert_eq!(report.skipped_threads, vec![available_threads() + 7]);
        assert!(report
            .rows
            .iter()
            .all(|r| r.threads <= report.available_threads));
        assert!(report.to_json().contains("\"skipped_threads\""));
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = preprocess_perf(&PerfConfig::quick());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"driver\"").count(), report.rows.len());
        assert!(json.contains("\"benchmark\": \"preprocess_throughput\""));
        assert!(json.contains("\"kernel\": \"sweep\""));
        assert!(json.contains("\"kernel\": \"bitsliced\""));
        assert!(json.contains("\"cpu_features\": [\"portable\""));
        assert!(json.contains("\"dispatch_tier\""));
        // Balanced braces and brackets (flat document, no strings with
        // either character).
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn workload_actually_exercises_the_repair_path() {
        let algo = perf_algo();
        let mut stack = synthetic_stack(16, 16, 32, 0xA5A5, sample_u16);
        assert!(
            Preprocessor::new(&algo).naive(true).run(&mut stack) > 0,
            "perf workload must contain repairable flips"
        );
    }
}
