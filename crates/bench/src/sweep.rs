//! The offline Λ/Υ sweep orchestrator (`repro sweep`).
//!
//! The online `StreamCalibrator` freezes window boundaries from a stream's
//! rolling Φ statistics; this module is its ground truth. It grids the
//! (Λ, Υ) parameter space and a static-window sub-grid against injected
//! fault rates on a *drifting* synthetic scene — the scenario auto-tuning
//! exists for — and reports Ψ for every cell, the offline-optimal window
//! pair, and what the online tuner converged to on the same data. The
//! convergence test in this module asserts the two agree within tolerance,
//! which is the validation the tentpole claims: the control plane's frozen
//! boundaries land where an exhaustive offline search would put them.
//!
//! Everything is seeded; `run_sweep` is bit-deterministic run-to-run, so
//! `BENCH_sweep.json` diffs cleanly across commits.

use preflight_core::{AlgoNgst, ImageStack, NgstConfig, Preprocessor, Sensitivity, Upsilon};
use preflight_datagen::Gaussian;
use preflight_faults::{seeded_rng, Uncorrelated};
use preflight_metrics::psi;
use preflight_obs::Obs;
use preflight_tune::{StreamCalibrator, TuneParams, Tuner};
use std::fmt::Write as _;
use std::sync::Arc;

/// Workload shape for one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Temporal frames (split evenly across the σ segments).
    pub frames: usize,
    /// Per-segment walk σ: the scene drifts from calm to turbulent as the
    /// temporal axis crosses segment boundaries.
    pub segment_sigmas: Vec<f64>,
    /// Sensitivity grid.
    pub lambdas: Vec<u32>,
    /// Voter-count grid.
    pub upsilons: Vec<usize>,
    /// Uncorrelated fault rates Γ₀ to inject.
    pub gamma0s: Vec<f64>,
    /// Master seed: scene and fault injection both derive from it.
    pub seed: u64,
}

impl SweepConfig {
    /// The standard sweep: a 32×24×64 drifting stack across three fault
    /// rates.
    pub fn standard() -> Self {
        SweepConfig {
            width: 32,
            height: 24,
            frames: 64,
            segment_sigmas: vec![40.0, 250.0, 1200.0],
            lambdas: vec![60, 80, 95],
            upsilons: vec![2, 4, 6],
            gamma0s: vec![0.005, 0.01, 0.025],
            seed: 0x5EED_CAFE,
        }
    }

    /// A sub-second smoke sweep for CI.
    pub fn quick() -> Self {
        SweepConfig {
            width: 16,
            height: 12,
            frames: 48,
            segment_sigmas: vec![40.0, 250.0, 1200.0],
            lambdas: vec![60, 80, 95],
            upsilons: vec![2, 4, 6],
            gamma0s: vec![0.01],
            seed: 0x5EED_CAFE,
        }
    }
}

/// One (Λ, Υ, Γ₀) cell of the parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Sensitivity Λ of this cell.
    pub lambda: u32,
    /// Voter count Υ of this cell.
    pub upsilon: usize,
    /// Injected fault rate Γ₀.
    pub gamma0: f64,
    /// Ψ of the corrupted stack against the clean one (no preprocessing).
    pub psi_before: f64,
    /// Ψ after preprocessing with this cell's parameters.
    pub psi_after: f64,
    /// `psi_before / psi_after` (∞-safe: 0 when `psi_after` is 0 too).
    pub improvement: f64,
    /// `true` when preprocessing made things worse — logged as an error.
    pub deteriorated: bool,
}

/// One (A, C) cell of the static-window sub-grid at the mid-grid (Λ, Υ).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCell {
    /// Width of bit window A (most significant bits).
    pub a_bits: u32,
    /// Width of bit window C (least significant bits).
    pub c_bits: u32,
    /// Ψ after preprocessing with these frozen windows.
    pub psi_after: f64,
}

/// What the online calibrator converged to on the same corrupted stack.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// Λ the calibrator chose.
    pub tuned_lambda: u32,
    /// Υ the calibrator chose.
    pub tuned_upsilon: usize,
    /// Frozen window A width.
    pub tuned_a: u32,
    /// Frozen window C width.
    pub tuned_c: u32,
    /// Boundary re-adoptions during the run.
    pub recalibrations: u64,
    /// Ψ of the auto-tuned run.
    pub psi_tuned: f64,
}

/// Results of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The workload that ran.
    pub config: SweepConfig,
    /// Every (Λ, Υ, Γ₀) cell.
    pub rows: Vec<SweepRow>,
    /// The static-window sub-grid (mid-grid Λ/Υ, first Γ₀).
    pub windows: Vec<WindowCell>,
    /// The argmin-Ψ cell of [`windows`](Self::windows): `(a_bits, c_bits)`.
    pub best_window: (u32, u32),
    /// Ψ of the static mid-grid cell (Λ=80, Υ=4, first Γ₀) — the baseline
    /// the online tuner must beat.
    pub psi_midgrid: f64,
    /// What the online calibrator converged to.
    pub online: OnlineOutcome,
    /// Human-readable log of every deteriorated cell.
    pub errors: Vec<String>,
}

/// The drifting synthetic scene: every coordinate runs a Gaussian walk
/// whose step σ switches between [`SweepConfig::segment_sigmas`] as the
/// temporal axis crosses segment boundaries — calm at first, turbulent by
/// the end, so one static window choice cannot be right everywhere and the
/// sweep has something real to optimise.
pub fn drifting_stack(config: &SweepConfig) -> ImageStack<u16> {
    let mut stack: ImageStack<u16> = ImageStack::new(config.width, config.height, config.frames);
    let mut rng = seeded_rng(config.seed);
    let segments = config.segment_sigmas.len().max(1);
    let gaussians: Vec<Gaussian> = config
        .segment_sigmas
        .iter()
        .map(|&s| Gaussian::new(0.0, s))
        .collect();
    let coords = config.width * config.height;
    let mut series: Vec<u16> = Vec::with_capacity(config.frames);
    for idx in 0..coords {
        series.clear();
        let mut level = 27_000.0_f64;
        for f in 0..config.frames {
            if f > 0 {
                let seg = (f * segments / config.frames).min(segments - 1);
                level += gaussians[seg].sample(&mut rng);
            }
            series.push(level.round().clamp(0.0, f64::from(u16::MAX)) as u16);
        }
        let (x, y) = (idx % config.width, idx / config.width);
        for (f, &v) in series.iter().enumerate() {
            stack.frame_mut(f)[y * config.width + x] = v;
        }
    }
    stack
}

/// Preprocesses a fresh copy of `corrupted` with `algo` and scores Ψ
/// against `clean`. Single-threaded for strict determinism (the kernels
/// are bit-identical across thread counts anyway).
fn psi_with(clean: &ImageStack<u16>, corrupted: &ImageStack<u16>, algo: &AlgoNgst) -> f64 {
    let mut work = corrupted.clone();
    Preprocessor::new(algo).threads(1).run(&mut work);
    psi(clean.as_slice(), work.as_slice())
}

/// Runs the full sweep: parameter grid × fault rates, the static-window
/// sub-grid, and the online calibrator on the same data.
///
/// # Panics
/// Panics if the static grids contain invalid Λ/Υ values — a harness bug,
/// not a measurement.
pub fn run_sweep(quick: bool) -> SweepReport {
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    };
    let clean = drifting_stack(&config);

    let mut rows = Vec::new();
    let mut errors = Vec::new();
    let mut psi_midgrid = f64::NAN;
    let mut first_corrupted: Option<(f64, ImageStack<u16>, f64)> = None;
    for (gi, &gamma0) in config.gamma0s.iter().enumerate() {
        let injector = Uncorrelated::new(gamma0).expect("grid fault rates are valid");
        let mut rng = seeded_rng(config.seed ^ 0xFA17 ^ (gi as u64) << 8);
        let mut corrupted = clean.clone();
        injector.inject_words(corrupted.as_mut_slice(), &mut rng);
        let psi_before = psi(clean.as_slice(), corrupted.as_slice());
        for &lambda in &config.lambdas {
            for &upsilon in &config.upsilons {
                let algo = AlgoNgst::new(
                    Upsilon::new(upsilon).expect("grid upsilons are valid"),
                    Sensitivity::new(lambda).expect("grid lambdas are valid"),
                );
                let psi_after = psi_with(&clean, &corrupted, &algo);
                let deteriorated = psi_after > psi_before;
                if deteriorated {
                    errors.push(format!(
                        "L={lambda} U={upsilon} gamma0={gamma0}: preprocessing deteriorated \
                         Psi {psi_before:.6} -> {psi_after:.6}"
                    ));
                }
                if lambda == 80 && upsilon == 4 && gi == 0 {
                    psi_midgrid = psi_after;
                }
                rows.push(SweepRow {
                    lambda,
                    upsilon,
                    gamma0,
                    psi_before,
                    psi_after,
                    improvement: if psi_after > 0.0 {
                        psi_before / psi_after
                    } else {
                        0.0
                    },
                    deteriorated,
                });
            }
        }
        if first_corrupted.is_none() {
            first_corrupted = Some((gamma0, corrupted, psi_before));
        }
    }
    let (_gamma0, corrupted, _psi_before) =
        first_corrupted.expect("at least one fault rate in the grid");

    // Static-window sub-grid at the mid-grid parameters: which frozen
    // (A, C) pair an offline search would pick for this stream.
    let mid_upsilon = Upsilon::FOUR;
    let mid_lambda = Sensitivity::new(80).expect("valid lambda");
    let mut windows = Vec::new();
    let mut best_window = (1, 0);
    let mut best_psi = f64::INFINITY;
    for a_bits in [1u32, 2, 3, 4, 5, 6, 8] {
        for c_bits in [0u32, 2, 4, 6, 8, 10] {
            if a_bits + c_bits > 14 {
                continue;
            }
            let algo = AlgoNgst::with_config(
                mid_upsilon,
                mid_lambda,
                NgstConfig {
                    static_windows: Some((a_bits, c_bits)),
                    ..NgstConfig::default()
                },
            );
            let psi_after = psi_with(&clean, &corrupted, &algo);
            if psi_after < best_psi {
                best_psi = psi_after;
                best_window = (a_bits, c_bits);
            }
            windows.push(WindowCell {
                a_bits,
                c_bits,
                psi_after,
            });
        }
    }

    // The online calibrator on the same corrupted stack: one warm-up run
    // to let it observe and freeze, then the tuned decision serves.
    let cal = Arc::new(StreamCalibrator::new(
        TuneParams::new(mid_lambda, mid_upsilon),
        &Obs::disabled(),
    ));
    let mut work = corrupted.clone();
    Preprocessor::new(AlgoNgst::new(mid_upsilon, mid_lambda))
        .threads(1)
        .tuner(cal.clone())
        .run(&mut work);
    let psi_tuned = psi(clean.as_slice(), work.as_slice());
    let decision = cal
        .decision(16)
        .expect("the calibrator must be warm after a full-stack run");
    let online = OnlineOutcome {
        tuned_lambda: decision.lambda.value(),
        tuned_upsilon: decision.upsilon.value(),
        tuned_a: decision.window_a_bits,
        tuned_c: decision.window_c_bits,
        recalibrations: decision.recalibrations,
        psi_tuned,
    };

    SweepReport {
        config,
        rows,
        windows,
        best_window,
        psi_midgrid,
        online,
        errors,
    }
}

impl SweepReport {
    /// Aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "parameter sweep, {}x{}x{} drifting stack (sigmas {:?})",
            self.config.width, self.config.height, self.config.frames, self.config.segment_sigmas,
        );
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>9} {:>12} {:>12} {:>8}",
            "lambda", "upsilon", "gamma0", "psi_before", "psi_after", "improve"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>9} {:>12.6} {:>12.6} {:>8.2}{}",
                r.lambda,
                r.upsilon,
                r.gamma0,
                r.psi_before,
                r.psi_after,
                r.improvement,
                if r.deteriorated { "  (worse!)" } else { "" },
            );
        }
        let _ = writeln!(out, "\nstatic-window sub-grid (L=80, U=4):");
        let _ = writeln!(out, "{:>8} {:>8} {:>12}", "a_bits", "c_bits", "psi_after");
        for w in &self.windows {
            let mark = if (w.a_bits, w.c_bits) == self.best_window {
                "  <- optimum"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>12.6}{mark}",
                w.a_bits, w.c_bits, w.psi_after
            );
        }
        let o = &self.online;
        let _ = writeln!(
            out,
            "\nonline tuner: chose L={} U={} windows A={}/C={} ({} recalibration(s)), \
             Psi {:.6} vs static mid-grid {:.6}",
            o.tuned_lambda,
            o.tuned_upsilon,
            o.tuned_a,
            o.tuned_c,
            o.recalibrations,
            o.psi_tuned,
            self.psi_midgrid,
        );
        for e in &self.errors {
            let _ = writeln!(out, "error: {e}");
        }
        out
    }

    /// Hand-formatted JSON document (the repo carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"tune_sweep\",");
        let _ = writeln!(
            out,
            "  \"workload\": {{\"width\": {}, \"height\": {}, \"frames\": {}, \
             \"segments\": {}, \"seed\": {}}},",
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.segment_sigmas.len(),
            self.config.seed
        );
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"lambda\": {}, \"upsilon\": {}, \"gamma0\": {}, \
                 \"psi_before\": {:.6}, \"psi_after\": {:.6}, \"improvement\": {:.3}, \
                 \"deteriorated\": {}}}",
                r.lambda,
                r.upsilon,
                r.gamma0,
                r.psi_before,
                r.psi_after,
                r.improvement,
                r.deteriorated
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"windows_grid\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"a_bits\": {}, \"c_bits\": {}, \"psi_after\": {:.6}}}",
                w.a_bits, w.c_bits, w.psi_after
            );
            out.push_str(if i + 1 < self.windows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"optimal_window\": {{\"a_bits\": {}, \"c_bits\": {}}},",
            self.best_window.0, self.best_window.1
        );
        let _ = writeln!(out, "  \"psi_midgrid\": {:.6},", self.psi_midgrid);
        let o = &self.online;
        let _ = writeln!(
            out,
            "  \"online\": {{\"tuned_lambda\": {}, \"tuned_upsilon\": {}, \
             \"tuned_window_a\": {}, \"tuned_window_c\": {}, \"recalibrations\": {}, \
             \"psi_tuned\": {:.6}}},",
            o.tuned_lambda, o.tuned_upsilon, o.tuned_a, o.tuned_c, o.recalibrations, o.psi_tuned
        );
        out.push_str("  \"errors\": [\n");
        for (i, e) in self.errors.iter().enumerate() {
            let _ = write!(out, "    \"{}\"", e.replace('"', "'"));
            out.push_str(if i + 1 < self.errors.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_tuner_converges_to_the_offline_optimum() {
        let report = run_sweep(true);
        let (best_a, best_c) = report.best_window;
        let o = &report.online;
        assert!(
            o.tuned_a.abs_diff(best_a) <= 2,
            "window A: tuner chose {} vs offline optimum {best_a}",
            o.tuned_a
        );
        assert!(
            o.tuned_c.abs_diff(best_c) <= 2,
            "window C: tuner chose {} vs offline optimum {best_c}",
            o.tuned_c
        );
        assert!(
            o.psi_tuned <= report.psi_midgrid * 1.02,
            "auto-tune must not lose to the static mid-grid: {} vs {}",
            o.psi_tuned,
            report.psi_midgrid
        );
    }

    #[test]
    fn every_cell_improves_on_no_preprocessing_at_practical_rates() {
        let report = run_sweep(true);
        assert!(!report.rows.is_empty());
        assert!(
            report.errors.is_empty(),
            "no cell may deteriorate at the quick fault rate: {:?}",
            report.errors
        );
        for r in &report.rows {
            assert!(r.psi_after.is_finite() && r.psi_after >= 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic_and_json_is_well_formed() {
        let a = run_sweep(true);
        let b = run_sweep(true);
        assert_eq!(a, b, "seeded sweep must be bit-deterministic");
        let json = a.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        for field in [
            "\"benchmark\": \"tune_sweep\"",
            "\"rows\"",
            "\"windows_grid\"",
            "\"optimal_window\"",
            "\"online\"",
            "\"psi_midgrid\"",
            "\"errors\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let count = |c| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn drifting_stack_actually_drifts() {
        let config = SweepConfig::quick();
        let stack = drifting_stack(&config);
        // Mean |frame-to-frame delta| in the first segment must be far
        // below the last segment's — the drift the tuner exists to track.
        let seg_delta = |range: std::ops::Range<usize>| -> f64 {
            let mut sum = 0.0;
            let mut n = 0u64;
            for f in range {
                for (a, b) in stack.frame(f).iter().zip(stack.frame(f + 1)) {
                    sum += f64::from(a.abs_diff(*b));
                    n += 1;
                }
            }
            sum / n as f64
        };
        let calm = seg_delta(0..4);
        let turbulent = seg_delta(config.frames - 5..config.frames - 1);
        assert!(
            turbulent > calm * 4.0,
            "expected strong drift, got calm {calm} vs turbulent {turbulent}"
        );
    }
}
