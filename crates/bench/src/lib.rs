//! # preflight-bench
//!
//! The figure-reproduction harness: one function per figure of the paper's
//! evaluation (Figures 2–9 plus the §2/§6/§8 claims), shared by the `repro`
//! binary, the Criterion benches and the smoke tests.
//!
//! Every experiment returns a [`report::Figure`] — the x grid plus one
//! labelled series per algorithm — which the binary renders as an aligned
//! table and optionally as CSV. Absolute values depend on the synthetic
//! substrate; what the harness is expected to reproduce (and what
//! `tests/figures_smoke.rs` asserts) is the paper's *shape*: who wins, by
//! roughly what factor, and where the crossovers and breakdown points fall.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod motivation;
pub mod ngst_exp;
pub mod otis_exp;
pub mod perf;
pub mod recovery;
pub mod report;
pub mod router;
pub mod serve;
pub mod svg;
pub mod sweep;

pub use motivation::motivation;
pub use ngst_exp::{
    ablation_passes, ablation_static, ablation_windows, compression_claim, fig2, fig3, fig4, fig5,
    fig6, improvement_factors, interleave_claim, mean_vs_median, scaling,
};
pub use otis_exp::{fig7, fig9, spatial_vs_spectral};
pub use recovery::fig_recovery;
pub use report::{Figure, Scale, Series};
