//! The §1 motivation experiment: why ABFT and NVP do not cover input-data
//! corruption — and why preprocessing does not cover *their* fault class.
//!
//! Workload: a detector-like 16-bit image is the input to a matrix-square
//! science computation. Two fault classes are injected:
//!
//! - **input bit-flips** (the paper's fault model) — flips in the input
//!   buffer *before* any scheme runs;
//! - **computation faults** — a perturbed element during the multiply
//!   (per-version for NVP, in the product for ABFT).
//!
//! Four schemes are measured by the mean relative error of the final
//! product: no protection, ABFT, 3-version NVP, and input preprocessing.
//! The paper's argument falls out as a matrix: each scheme zeros its own
//! column and leaves the other untouched — *"our approach can be a
//! versatile and scalable complement to other fault-tolerance schemes"*.

use crate::report::{Figure, Scale, Series};
use preflight_core::{preprocess_image, AlgoNgst, Image, Sensitivity, Upsilon};
use preflight_faults::{seeded_rng, Uncorrelated};
use preflight_redundancy::{run_nvp, ChecksumMatrix, NvpOutcome, VersionFault};

const SIZE: usize = 12;
const GAMMA0: f64 = 0.004;

/// Mean relative error of `got` against `truth` (both matrices).
fn rel_err(truth: &Image<f64>, got: &Image<f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, g) in truth.as_slice().iter().zip(got.as_slice()) {
        if *t != 0.0 {
            sum += ((g - t) / t).abs().min(10.0);
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

fn to_f64(img: &Image<u16>) -> Image<f64> {
    img.map(f64::from)
}

fn square(input: &Image<f64>) -> Image<f64> {
    let n = input.width();
    let mut out = Image::new(n, n);
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += input.get(k, y) * input.get(x, k);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// A smooth detector-like input the spatial preprocessor can vote over
/// (no point sources: a 12-pixel voting window cannot distinguish a sharp
/// PSF from a fault — the OTIS trend rule exists for that; here the point
/// is the fault-class coverage, so the scene is kept calm).
fn clean_input(seed: u64) -> Image<u16> {
    let mut rng = seeded_rng(seed);
    preflight_datagen::ngst::sky_image(SIZE, SIZE, 20_000, 0, &mut rng)
}

/// One trial of one fault class; returns per-scheme relative errors
/// `[unprotected, abft, nvp, preprocessing]`.
fn trial(fault_class: usize, seed: u64) -> [f64; 4] {
    let clean = clean_input(seed);
    let truth = square(&to_f64(&clean));

    match fault_class {
        // ---- input bit-flips: damage precedes every scheme ----
        1 => {
            let mut corrupted = clean.clone();
            Uncorrelated::new(GAMMA0)
                .expect("static probability")
                .inject_words(corrupted.as_mut_slice(), &mut seeded_rng(seed ^ 0xA5));

            let unprotected = rel_err(&truth, &square(&to_f64(&corrupted)));

            // ABFT: checksums generated over the already-corrupted input.
            let a = ChecksumMatrix::encode(&to_f64(&corrupted));
            let mut product = a.multiply(&ChecksumMatrix::encode(&to_f64(&corrupted)));
            product.correct();
            let abft = rel_err(&truth, &product.data());

            // NVP: all three versions read the same corrupted input.
            let (outcome, _) = run_nvp(&to_f64(&corrupted), &[VersionFault::None; 3], seed ^ 0x17);
            let nvp = match outcome {
                NvpOutcome::Agreed { output, .. } => rel_err(&truth, &output),
                NvpOutcome::NoMajority => unprotected,
            };

            // Input preprocessing: repair first, then compute.
            let mut repaired = corrupted.clone();
            let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).expect("valid Λ"));
            preprocess_image(&algo, &mut repaired);
            let pre = rel_err(&truth, &square(&to_f64(&repaired)));

            [unprotected, abft, nvp, pre]
        }
        // ---- computation faults: damage inside the multiply ----
        2 => {
            let mut rng = seeded_rng(seed ^ 0x33);
            use rand::RngExt;
            let (fx, fy) = (rng.random_range(0..SIZE), rng.random_range(0..SIZE));
            let bump = 1.0e9;

            let mut naive = square(&to_f64(&clean));
            naive.set(fx, fy, naive.get(fx, fy) + bump);
            let unprotected = rel_err(&truth, &naive);

            // ABFT: the same perturbation hits the checksummed product and
            // is located + corrected.
            let a = ChecksumMatrix::encode(&to_f64(&clean));
            let mut product = a.multiply(&ChecksumMatrix::encode(&to_f64(&clean)));
            product.corrupt(fx, fy, product.get(fx, fy) + bump);
            product.correct();
            let abft = rel_err(&truth, &product.data());

            // NVP: one of three versions suffers the fault and is outvoted.
            let faults = [
                VersionFault::Computation { seed },
                VersionFault::None,
                VersionFault::None,
            ];
            let (outcome, _) = run_nvp(&to_f64(&clean), &faults, seed ^ 0x71);
            let nvp = match outcome {
                NvpOutcome::Agreed { output, .. } => rel_err(&truth, &output),
                NvpOutcome::NoMajority => unprotected,
            };

            // Input preprocessing runs before the computation — it never
            // sees this fault class.
            [unprotected, abft, nvp, unprotected]
        }
        _ => unreachable!("two fault classes"),
    }
}

/// **§1 motivation** — per-scheme output error under the two fault
/// classes (`x = 1`: input bit-flips; `x = 2`: computation faults).
pub fn motivation(scale: Scale) -> Figure {
    let trials = scale.trials.max(4);
    let mut series = vec![
        Series::from_means("Unprotected", vec![]),
        Series::from_means("ABFT", vec![]),
        Series::from_means("NVP(3)", vec![]),
        Series::from_means("Preprocessing", vec![]),
    ];
    for class in [1usize, 2] {
        let mut sums = [0.0f64; 4];
        for t in 0..trials {
            let errs = trial(class, 0x40_7111 + t as u64 * 97);
            for (s, e) in sums.iter_mut().zip(errs) {
                *s += e;
            }
        }
        for (s, sum) in series.iter_mut().zip(sums) {
            s.ys.push(sum / trials as f64);
        }
    }
    Figure {
        id: "motivation".into(),
        title: "Section 1: which fault class each scheme covers \
                (x=1 input bit-flips, x=2 computation faults)"
            .into(),
        xlabel: "fault class".into(),
        ylabel: "mean relative output error".into(),
        xs: vec![1.0, 2.0],
        series,
    }
}
