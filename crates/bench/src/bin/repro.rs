//! `repro` — regenerates every figure of the paper as a text table (and
//! optionally CSV files).
//!
//! ```text
//! repro <target> [--paper] [--csv <dir>] [--svg <dir>]
//!
//! targets:
//!   fig2 fig3 fig4 fig5 fig6 fig7 fig9
//!   compression factors mean-vs-median scaling recovery
//!   interleave spatial-vs-spectral
//!   ablation-windows ablation-static
//!   perf serve route sweep
//!   all
//!
//! `perf`, `serve` and `route` are the odd ones out: instead of an
//! error-rate figure they time the system. `perf` sweeps the preprocessing
//! drivers (naive / tiled / parallel) into `BENCH_preprocess.json`;
//! `serve` load-tests an in-process `preflightd` daemon (concurrent
//! clients over loopback TCP) into `BENCH_serve.json`; `route` load-tests
//! an in-process `preflight-router` fleet (N `preflightd` backends behind
//! the front end) into `BENCH_router.json`.
//! flags:
//!   --paper     paper-depth averaging (slower; default is a medium scale)
//!   --quick     smoke-test scale
//!   --csv DIR   also write one CSV per figure into DIR
//!   --svg DIR   also render one SVG plot per figure into DIR
//! ```

use preflight_bench::{report::Scale, Figure};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = None;
    let mut scale = Scale::medium();
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut svg_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = Scale::paper(),
            "--quick" => {
                scale = Scale::quick();
                quick = true;
            }
            "--csv" => match it.next() {
                Some(d) => csv_dir = Some(d.clone()),
                None => {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--svg" => match it.next() {
                Some(d) => svg_dir = Some(d.clone()),
                None => {
                    eprintln!("--svg requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_owned()),
            other => {
                eprintln!("unknown argument {other:?}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(target) = target else {
        print_usage();
        std::process::exit(2);
    };

    if target == "perf" {
        run_perf(quick);
        return;
    }
    if target == "serve" {
        run_serve(quick);
        return;
    }
    if target == "route" {
        run_route(quick);
        return;
    }
    if target == "sweep" {
        run_sweep_target(quick);
        return;
    }
    let figures = run_target(&target, scale);
    if figures.is_empty() {
        eprintln!("unknown target {target:?}");
        print_usage();
        std::process::exit(2);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for fig in &figures {
        if let Some(dir) = &csv_dir {
            if let Err(e) = write_artifact(dir, fig, "csv", &fig.to_csv()) {
                eprintln!("failed to write CSV for {}: {e}", fig.id);
                std::process::exit(1);
            }
        }
        if let Some(dir) = &svg_dir {
            if let Err(e) = write_artifact(dir, fig, "svg", &preflight_bench::svg::render(fig)) {
                eprintln!("failed to write SVG for {}: {e}", fig.id);
                std::process::exit(1);
            }
        }
        // A closed pipe (e.g. `repro all | head`) is not an error; keep
        // writing the CSVs but stop printing.
        let _ = writeln!(out, "{}", fig.to_table());
    }
    if let Some(dir) = &csv_dir {
        eprintln!("CSV written to {dir}/");
    }
    if let Some(dir) = &svg_dir {
        eprintln!("SVG plots written to {dir}/");
    }
}

/// `perf`: time the preprocessing drivers and persist the sweep as JSON.
fn run_perf(quick: bool) {
    use preflight_bench::perf::{preprocess_perf, PerfConfig};
    let config = if quick {
        PerfConfig::quick()
    } else {
        PerfConfig::standard()
    };
    let report = preprocess_perf(&config);
    print!("{}", report.to_table());
    let path = "BENCH_preprocess.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("throughput sweep written to {path}");
}

/// `serve`: load-test a `preflightd` at the operating point, sweep the
/// active-throughput and open-connection axes, and persist everything
/// into one document.
fn run_serve(quick: bool) {
    use preflight_bench::serve::{
        active_sweep, bench_json, conn_sweep, serve_loadgen, ActiveSweepConfig, ConnSweepConfig,
        ServeConfig,
    };
    let (config, active_config, sweep_config) = if quick {
        (
            ServeConfig::quick(),
            ActiveSweepConfig::quick(),
            ConnSweepConfig::quick(),
        )
    } else {
        (
            ServeConfig::standard(),
            ActiveSweepConfig::standard(),
            ConnSweepConfig::standard(),
        )
    };
    let report = serve_loadgen(&config);
    print!("{}", report.to_table());
    let active = active_sweep(&active_config);
    print!("{}", active.to_table());
    let sweep = conn_sweep(&sweep_config);
    print!("{}", sweep.to_table());
    let path = "BENCH_serve.json";
    if let Err(e) = std::fs::write(path, bench_json(&report, &active, &sweep)) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("serving loadgen written to {path}");
}

/// `route`: load-test an in-process router-fronted fleet and persist the
/// numbers.
fn run_route(quick: bool) {
    use preflight_bench::router::{route_loadgen, RouteConfig};
    let config = if quick {
        RouteConfig::quick()
    } else {
        RouteConfig::standard()
    };
    let report = route_loadgen(&config);
    print!("{}", report.to_table());
    let path = "BENCH_router.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("router loadgen written to {path}");
}

/// `sweep`: grid (Λ, Υ, windows) × fault rates on a drifting scene and
/// validate the online tuner against the offline optimum.
fn run_sweep_target(quick: bool) {
    use preflight_bench::sweep::run_sweep;
    let report = run_sweep(quick);
    print!("{}", report.to_table());
    let path = "BENCH_sweep.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("parameter sweep written to {path}");
    if !report.errors.is_empty() {
        eprintln!(
            "{} cell(s) deteriorated; see the error log in the JSON",
            report.errors.len()
        );
        std::process::exit(1);
    }
}

fn run_target(target: &str, scale: Scale) -> Vec<Figure> {
    match target {
        "fig2" => vec![preflight_bench::fig2(scale)],
        "fig3" => vec![preflight_bench::fig3(scale)],
        "fig4" => vec![preflight_bench::fig4(scale)],
        "fig5" => vec![preflight_bench::fig5(scale)],
        "fig6" => preflight_bench::fig6(scale),
        "fig7" => preflight_bench::fig7(scale),
        "fig9" => preflight_bench::fig9(scale),
        "compression" => vec![preflight_bench::compression_claim(scale)],
        "factors" => vec![preflight_bench::improvement_factors(scale)],
        "mean-vs-median" => vec![preflight_bench::mean_vs_median(scale)],
        "scaling" => vec![preflight_bench::scaling(scale)],
        "recovery" => vec![preflight_bench::fig_recovery(scale)],
        "motivation" => vec![preflight_bench::motivation(scale)],
        "interleave" => vec![preflight_bench::interleave_claim(scale)],
        "spatial-vs-spectral" => vec![preflight_bench::spatial_vs_spectral(scale)],
        "ablation-windows" => vec![preflight_bench::ablation_windows(scale)],
        "ablation-passes" => vec![preflight_bench::ablation_passes(scale)],
        "ablation-static" => vec![preflight_bench::ablation_static(scale)],
        "all" => {
            let mut all = Vec::new();
            for t in [
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig9",
                "compression",
                "factors",
                "mean-vs-median",
                "scaling",
                "recovery",
                "motivation",
                "interleave",
                "spatial-vs-spectral",
                "ablation-windows",
                "ablation-static",
                "ablation-passes",
            ] {
                all.extend(run_target(t, scale));
            }
            all
        }
        _ => Vec::new(),
    }
}

fn write_artifact(dir: &str, fig: &Figure, ext: &str, body: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir).join(format!("{}.{ext}", fig.id));
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

fn print_usage() {
    eprintln!(
        "usage: repro <target> [--paper|--quick] [--csv DIR] [--svg DIR]\n\
         targets: fig2 fig3 fig4 fig5 fig6 fig7 fig9 compression factors scaling recovery\n\x20        motivation mean-vs-median interleave\n\
         \x20        spatial-vs-spectral ablation-windows ablation-static ablation-passes\n\
         \x20        perf serve route sweep all"
    );
}
