//! Figure 9 companion bench: cube-level `Algo_OTIS` throughput under the
//! correlated fault model across Γ_ini, including past the breakdown point
//! (heavier damage means more repairs and more work). (Error curves:
//! `repro fig9`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoOtis, Cube, PhysicalBounds, Sensitivity};
use preflight_datagen::planck::{max_radiance, DEFAULT_BANDS};
use preflight_datagen::{emissivity_scene, radiance_cube, temperature_scene, OtisScene};
use preflight_faults::{seeded_rng, Correlated};
use std::hint::black_box;

fn corrupted_cube(gamma_ini: f64) -> Cube<f32> {
    let mut rng = seeded_rng(0xF169);
    let temp = temperature_scene(OtisScene::Blob, 48, 48, &mut rng);
    let emis = emissivity_scene(48, 48, &mut rng);
    let mut cube = radiance_cube(&temp, &emis, &DEFAULT_BANDS);
    Correlated::new(gamma_ini)
        .expect("valid probability")
        .inject_cube(&mut cube, &mut rng);
    cube
}

fn bench(c: &mut Criterion) {
    let bounds = PhysicalBounds::radiance(max_radiance(400.0, &DEFAULT_BANDS) * 1.2);
    let algo = AlgoOtis::new(Sensitivity::new(80).unwrap(), bounds);
    let mut group = c.benchmark_group("fig9_otis_correlated");
    group.sample_size(20);
    group.throughput(Throughput::Elements(48 * 48 * DEFAULT_BANDS.len() as u64));

    for gamma in [0.05f64, 0.15, 0.25] {
        let cube = corrupted_cube(gamma);
        let id = format!("{gamma}");
        group.bench_with_input(BenchmarkId::new("gamma_ini", id), &cube, |b, cube| {
            b.iter(|| {
                let mut w = cube.clone();
                algo.preprocess_cube(black_box(&mut w));
                black_box(&w);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
