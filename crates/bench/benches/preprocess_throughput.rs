//! Throughput of the three stack-preprocessing drivers — naive
//! gather/scatter, cache-aware series-major tiling, and the data-parallel
//! worker pool — on the 64×64×128 acceptance cube, for `u16` and `u32`
//! pixels, under all three voter kernels (per-pixel `scalar`, the
//! plane-sweep `sweep` and the SIMD-dispatched bit-sliced `bitsliced`).
//! Thread counts beyond the machine's available
//! parallelism are skipped rather than silently capped. Reported in
//! samples/s (Criterion's element throughput); `repro perf` emits the
//! same sweep as `BENCH_preprocess.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_bench::perf::{
    kernel_label, perf_algo, perf_algo_passes, sample_u16, sample_u32, synthetic_stack,
};
use preflight_core::{available_threads, BitPixel, ImageStack, Kernel, Preprocessor, DEFAULT_TILE};
use std::hint::black_box;

const WIDTH: usize = 64;
const HEIGHT: usize = 64;
const FRAMES: usize = 128;
const THREADS: &[usize] = &[1, 2, 4, 8];
const KERNELS: &[Kernel] = &[Kernel::Scalar, Kernel::Sweep, Kernel::Bitsliced];

fn bench_pixel_width<T: BitPixel>(c: &mut Criterion, label: &str, sample: impl Fn(u64) -> T) {
    let algo = perf_algo();
    let input: ImageStack<T> = synthetic_stack(WIDTH, HEIGHT, FRAMES, 0xA5A5, sample);
    let mut group = c.benchmark_group(format!("preprocess_throughput/{label}"));
    group.throughput(Throughput::Elements((WIDTH * HEIGHT * FRAMES) as u64));
    group.sample_size(10);

    for &kernel in KERNELS {
        let k = kernel_label(kernel);
        let naive = Preprocessor::new(&algo).naive(true).kernel(kernel);
        group.bench_function(format!("naive/{k}").as_str(), |b| {
            b.iter(|| {
                let mut work = input.clone();
                black_box(naive.run(black_box(&mut work)));
            })
        });
        let tiled = Preprocessor::new(&algo).tile(DEFAULT_TILE).kernel(kernel);
        group.bench_function(format!("tiled/{k}").as_str(), |b| {
            b.iter(|| {
                let mut work = input.clone();
                black_box(tiled.run(black_box(&mut work)));
            })
        });
        for &threads in THREADS.iter().filter(|&&t| t <= available_threads()) {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel/{k}"), threads),
                &threads,
                |b, &threads| {
                    let parallel = Preprocessor::new(&algo).threads(threads).kernel(kernel);
                    b.iter(|| {
                        let mut work = input.clone();
                        black_box(parallel.run(black_box(&mut work)));
                    })
                },
            );
        }
        // The multi-pass regime, where the sweep kernel's shared
        // difference planes amortize across repeated cutoff rebuilds.
        let multi = perf_algo_passes(3);
        let multipass = Preprocessor::new(&multi).tile(DEFAULT_TILE).kernel(kernel);
        group.bench_function(format!("tiled-3pass/{k}").as_str(), |b| {
            b.iter(|| {
                let mut work = input.clone();
                black_box(multipass.run(black_box(&mut work)));
            })
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    bench_pixel_width::<u16>(c, "u16", sample_u16);
    bench_pixel_width::<u32>(c, "u32", sample_u32);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
