//! Ablation benches (DESIGN.md A1/A2 plus the interleaver): the cost side
//! of the design choices whose accuracy impact `repro ablation-*` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoNgst, NgstConfig, Sensitivity, SeriesPreprocessor, Upsilon};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Interleaver, Uncorrelated};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = NgstModel::default();
    let inj = Uncorrelated::new(0.01).expect("valid probability");
    let mut rng = seeded_rng(0xAB1A);
    let series: Vec<Vec<u16>> = (0..128)
        .map(|_| {
            let mut s = model.series(&mut rng);
            inj.inject_words(&mut s, &mut rng);
            s
        })
        .collect();

    let mut group = c.benchmark_group("ablations");
    group.throughput(Throughput::Elements(series.len() as u64 * 64));

    let lambda = Sensitivity::new(80).unwrap();
    let variants: Vec<(&str, AlgoNgst)> = vec![
        ("grt_on_dynamic", AlgoNgst::new(Upsilon::FOUR, lambda)),
        (
            "grt_off",
            AlgoNgst::with_config(
                Upsilon::FOUR,
                lambda,
                NgstConfig {
                    use_grt: false,
                    ..NgstConfig::default()
                },
            ),
        ),
        (
            "static_windows",
            AlgoNgst::with_config(
                Upsilon::FOUR,
                lambda,
                NgstConfig {
                    static_windows: Some((4, 8)),
                    ..NgstConfig::default()
                },
            ),
        ),
    ];
    for (name, algo) in &variants {
        group.bench_with_input(BenchmarkId::new("algo", *name), algo, |b, algo| {
            b.iter(|| {
                for s in &series {
                    let mut w = s.clone();
                    algo.preprocess(black_box(&mut w));
                    black_box(&w);
                }
            })
        });
    }

    // Iterative preprocessing (ablation A3): the cost of extra rounds.
    for passes in [1usize, 2, 3] {
        let algo = AlgoNgst::with_config(
            Upsilon::FOUR,
            lambda,
            NgstConfig {
                passes,
                ..NgstConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("passes", passes), &algo, |b, algo| {
            b.iter(|| {
                for s in &series {
                    let mut w = s.clone();
                    algo.preprocess(black_box(&mut w));
                    black_box(&w);
                }
            })
        });
    }

    // The classical redundancy baselines of the motivation experiment.
    {
        use preflight_redundancy::ChecksumMatrix;
        let mut m = preflight_core::Image::new(16, 16);
        for i in 0..256usize {
            m.set(i % 16, i / 16, (i * 37 % 997) as f64);
        }
        let a = ChecksumMatrix::encode(&m);
        let b = ChecksumMatrix::encode(&m);
        group.bench_function("abft_multiply_verify_16x16", |bch| {
            bch.iter(|| {
                let c = black_box(&a).multiply(black_box(&b));
                black_box(c.verify())
            })
        });
    }

    // The §8 interleaver's own overhead (a pure address permutation).
    let flat: Vec<u16> = (0..65_536u32).map(|v| v as u16).collect();
    let il = Interleaver::new(flat.len(), 64).expect("64 divides 65536");
    group.throughput(Throughput::Elements(flat.len() as u64));
    group.bench_function("interleave_roundtrip", |b| {
        b.iter(|| {
            let phys = il.interleave(black_box(&flat));
            black_box(il.deinterleave(&phys))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
