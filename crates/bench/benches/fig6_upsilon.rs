//! Figure 6 companion bench: cost of the Υ = 2/4/6 voter configurations on
//! quasi-NGST data of varying turbulence. (Error curves: `repro fig6`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoNgst, Sensitivity, SeriesPreprocessor, Upsilon};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Uncorrelated};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inj = Uncorrelated::new(0.02).expect("valid probability");
    let mut group = c.benchmark_group("fig6_upsilon");
    group.throughput(Throughput::Elements(128 * 64));

    for (sigma, upsilon) in [
        (0.0, Upsilon::TWO),
        (0.0, Upsilon::FOUR),
        (0.0, Upsilon::SIX),
        (250.0, Upsilon::TWO),
        (250.0, Upsilon::FOUR),
        (250.0, Upsilon::SIX),
    ] {
        let model = NgstModel::new(64, 27_000, sigma);
        let mut rng = seeded_rng(sigma as u64 + upsilon.value() as u64);
        let series: Vec<Vec<u16>> = (0..128)
            .map(|_| {
                let mut s = model.series(&mut rng);
                inj.inject_words(&mut s, &mut rng);
                s
            })
            .collect();
        let algo = AlgoNgst::new(upsilon, Sensitivity::new(80).unwrap());
        let id = format!("sigma{sigma}-upsilon{}", upsilon.value());
        group.bench_with_input(BenchmarkId::new("config", id), &series, |b, series| {
            b.iter(|| {
                for s in series {
                    let mut w = s.clone();
                    algo.preprocess(black_box(&mut w));
                    black_box(&w);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
