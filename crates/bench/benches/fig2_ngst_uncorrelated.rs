//! Figure 2 companion bench: per-series preprocessing throughput of every
//! algorithm compared in the figure, on NMS-like data corrupted at
//! Γ₀ = 1 %. (The error curves themselves come from `repro fig2`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoNgst, MedianSmoother, Sensitivity, SeriesPreprocessor, Upsilon};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Uncorrelated};
use std::hint::black_box;

fn workload(n_series: usize) -> Vec<Vec<u16>> {
    let model = NgstModel::default();
    let inj = Uncorrelated::new(0.01).expect("valid probability");
    let mut rng = seeded_rng(0xBE2C);
    (0..n_series)
        .map(|_| {
            let mut s = model.series(&mut rng);
            inj.inject_words(&mut s, &mut rng);
            s
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let series = workload(256);
    let mut group = c.benchmark_group("fig2");
    group.throughput(Throughput::Elements(series.len() as u64 * 64));

    for lambda in [20u32, 50, 80, 95] {
        let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(lambda).unwrap());
        group.bench_with_input(BenchmarkId::new("algo_ngst", lambda), &algo, |b, algo| {
            b.iter(|| {
                for s in &series {
                    let mut w = s.clone();
                    algo.preprocess(black_box(&mut w));
                    black_box(&w);
                }
            })
        });
    }
    let median = MedianSmoother::new();
    group.bench_function("median_smoothing", |b| {
        b.iter(|| {
            for s in &series {
                let mut w = s.clone();
                SeriesPreprocessor::<u16>::preprocess(&median, black_box(&mut w));
                black_box(&w);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
