//! Figure 5 companion bench: preprocessing cost across the intensity gamut
//! (the runtime must not depend on the data's mean level — only the error
//! curves of `repro fig5` do).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoNgst, Sensitivity, SeriesPreprocessor, Upsilon};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Uncorrelated};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inj = Uncorrelated::new(0.025).expect("valid probability");
    let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap());
    let mut group = c.benchmark_group("fig5_gamut");
    group.throughput(Throughput::Elements(128 * 64));

    for mean in [500u16, 5_000, 27_000, 60_000] {
        let model = NgstModel::new(64, mean, 250.0);
        let mut rng = seeded_rng(u64::from(mean));
        let series: Vec<Vec<u16>> = (0..128)
            .map(|_| {
                let mut s = model.series(&mut rng);
                inj.inject_words(&mut s, &mut rng);
                s
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("mean", mean), &series, |b, series| {
            b.iter(|| {
                for s in series {
                    let mut w = s.clone();
                    algo.preprocess(black_box(&mut w));
                    black_box(&w);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
