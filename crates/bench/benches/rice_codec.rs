//! Rice codec throughput: encode and decode rates on downlink-like data,
//! clean versus bit-flipped (corruption breaks residual smoothness and
//! slows the coder down along with the ratio — the §2 claim's cost side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Uncorrelated};
use preflight_rice::RiceCodec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = NgstModel {
        frames: 16_384,
        sigma: 40.0,
        ..NgstModel::default()
    };
    let clean = model.series(&mut seeded_rng(0xC0DE));
    let mut corrupted = clean.clone();
    Uncorrelated::new(0.01)
        .expect("valid probability")
        .inject_words(&mut corrupted, &mut seeded_rng(0xC0DE + 1));

    let codec = RiceCodec::new();
    let mut group = c.benchmark_group("rice_codec");
    group.throughput(Throughput::Bytes(clean.len() as u64 * 2));

    for (name, data) in [("clean", &clean), ("corrupted", &corrupted)] {
        group.bench_with_input(BenchmarkId::new("encode", name), data, |b, data| {
            b.iter(|| black_box(codec.encode(black_box(data))))
        });
        let encoded = codec.encode(data);
        group.bench_with_input(BenchmarkId::new("decode", name), &encoded, |b, encoded| {
            b.iter(|| black_box(codec.decode(black_box(encoded)).expect("valid stream")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
