//! Figure 7 companion bench: per-plane preprocessing throughput of the OTIS
//! algorithms on each scene archetype. (Error curves: `repro fig7`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_bench::otis_exp::bitvote_plane_f32;
use preflight_core::{
    AlgoOtis, Image, MedianSmoother, PhysicalBounds, PlanePreprocessor, Sensitivity,
};
use preflight_datagen::planck::{max_radiance, radiance, DEFAULT_BANDS};
use preflight_datagen::{temperature_scene, OtisScene};
use preflight_faults::{seeded_rng, Uncorrelated};
use std::hint::black_box;

fn corrupted_plane(scene: OtisScene) -> Image<f32> {
    let mut rng = seeded_rng(0xF167);
    let temp = temperature_scene(scene, 64, 64, &mut rng);
    let mut plane = temp.map(|t| (0.95 * radiance(f64::from(t), 10.2)) as f32);
    Uncorrelated::new(0.01)
        .expect("valid probability")
        .inject_f32(plane.as_mut_slice(), &mut rng);
    plane
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_otis");
    group.throughput(Throughput::Elements(64 * 64));
    group.sample_size(30);

    let bounds = PhysicalBounds::radiance(max_radiance(400.0, &DEFAULT_BANDS) * 1.2);
    let algo = AlgoOtis::new(Sensitivity::new(80).unwrap(), bounds);
    let median = MedianSmoother::new();
    for scene in OtisScene::ALL {
        let plane = corrupted_plane(scene);
        group.bench_with_input(
            BenchmarkId::new("algo_otis", scene.name()),
            &plane,
            |b, plane| {
                b.iter(|| {
                    let mut w = plane.clone();
                    algo.preprocess_plane(black_box(&mut w));
                    black_box(&w);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("median", scene.name()),
            &plane,
            |b, plane| {
                b.iter(|| {
                    let mut w = plane.clone();
                    PlanePreprocessor::<f32>::preprocess_plane(&median, black_box(&mut w));
                    black_box(&w);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bit_voting", scene.name()),
            &plane,
            |b, plane| {
                b.iter(|| {
                    let mut w = plane.clone();
                    bitvote_plane_f32(black_box(&mut w));
                    black_box(&w);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
