//! End-to-end master/slave pipeline benchmark: fragmentation → transit
//! faults → (preprocessing) → CR rejection → reassembly → Rice compression,
//! with and without the preprocessing stage (its marginal cost is the
//! paper's "slack CPU time in the slave nodes" argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{AlgoNgst, Image, Sensitivity, Upsilon};
use preflight_faults::seeded_rng;
use preflight_ngst::{DetectorConfig, NgstPipeline, PipelineConfig, TransitFault, UpTheRamp};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = DetectorConfig {
        width: 64,
        height: 64,
        frames: 16,
        ..DetectorConfig::default()
    };
    let det = UpTheRamp::new(cfg);
    let flux = Image::filled(64, 64, 30.0f32);
    let stack = det.clean_stack(&flux, &mut seeded_rng(0xE2E));

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stack.len() as u64));

    let base = PipelineConfig {
        workers: 4,
        tile_size: 32,
        transit_fault: Some(TransitFault::Uncorrelated(0.002)),
        seed: 11,
        ..PipelineConfig::default()
    };
    let without = NgstPipeline::new(base).expect("valid pipeline config");
    group.bench_function(BenchmarkId::new("run", "no_preprocessing"), |b| {
        b.iter(|| black_box(without.run(black_box(&stack))))
    });
    let with = NgstPipeline::new(PipelineConfig {
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        ..base
    })
    .expect("valid pipeline config");
    group.bench_function(BenchmarkId::new("run", "with_preprocessing"), |b| {
        b.iter(|| black_box(with.run(black_box(&stack))))
    });
    // The paper's closing recommendation: preprocessing fused into the
    // application pass instead of run as a separate layer.
    let fused = NgstPipeline::new(PipelineConfig {
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        integrated: true,
        ..base
    })
    .expect("valid pipeline config");
    group.bench_function(BenchmarkId::new("run", "integrated_preprocessing"), |b| {
        b.iter(|| black_box(fused.run(black_box(&stack))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
