//! Figure 4 companion bench: stack-level preprocessing throughput under the
//! correlated (burst) fault model. (Error curves come from `repro fig4`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{
    AlgoNgst, BitVoter, ImageStack, MedianSmoother, Preprocessor, Sensitivity, Upsilon,
};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Correlated};
use std::hint::black_box;

fn corrupted_stack() -> ImageStack<u16> {
    let model = NgstModel {
        frames: 32,
        ..NgstModel::default()
    };
    let mut rng = seeded_rng(0xF164);
    let mut stack = model.stack(32, 32, &mut rng);
    Correlated::new(0.05)
        .expect("valid probability")
        .inject_stack(&mut stack, &mut rng);
    stack
}

fn bench(c: &mut Criterion) {
    let stack = corrupted_stack();
    let samples = stack.len() as u64;
    let mut group = c.benchmark_group("fig4_correlated");
    group.throughput(Throughput::Elements(samples));
    group.sample_size(20);

    let ngst = Preprocessor::new(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap()));
    group.bench_with_input(BenchmarkId::new("stack", "algo_ngst"), &ngst, |b, pp| {
        b.iter(|| {
            let mut w = stack.clone();
            pp.run(black_box(&mut w));
            black_box(&w);
        })
    });
    let median = Preprocessor::new(MedianSmoother::new());
    group.bench_function(BenchmarkId::new("stack", "median"), |b| {
        b.iter(|| {
            let mut w = stack.clone();
            median.run(black_box(&mut w));
            black_box(&w);
        })
    });
    let voter = Preprocessor::new(BitVoter::new());
    group.bench_function(BenchmarkId::new("stack", "bit_voting"), |b| {
        b.iter(|| {
            let mut w = stack.clone();
            voter.run(black_box(&mut w));
            black_box(&w);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
