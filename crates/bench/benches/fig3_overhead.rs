//! **Figure 3** — preprocessing overhead as a function of the sensitivity Λ,
//! against the static baselines. This is the rigorous (Criterion) version of
//! `repro fig3`; the paper measured the same quantity on a Pentium III
//! 750 MHz, so only the relative shape is comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use preflight_core::{
    AlgoNgst, BitVoter, MedianSmoother, Sensitivity, SeriesPreprocessor, Upsilon,
};
use preflight_datagen::NgstModel;
use preflight_faults::{seeded_rng, Uncorrelated};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = NgstModel::default();
    let inj = Uncorrelated::new(0.01).expect("valid probability");
    let mut rng = seeded_rng(0xF163);
    let series: Vec<Vec<u16>> = (0..256)
        .map(|_| {
            let mut s = model.series(&mut rng);
            inj.inject_words(&mut s, &mut rng);
            s
        })
        .collect();

    let mut group = c.benchmark_group("fig3_overhead");
    group.throughput(Throughput::Elements(series.len() as u64));
    for lambda in [0u32, 20, 40, 60, 80, 100] {
        let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(lambda).unwrap());
        group.bench_with_input(
            BenchmarkId::new("algo_ngst_lambda", lambda),
            &algo,
            |b, algo| {
                b.iter(|| {
                    for s in &series {
                        let mut w = s.clone();
                        algo.preprocess(black_box(&mut w));
                        black_box(&w);
                    }
                })
            },
        );
    }
    let median = MedianSmoother::new();
    group.bench_function("median_smoothing", |b| {
        b.iter(|| {
            for s in &series {
                let mut w = s.clone();
                SeriesPreprocessor::<u16>::preprocess(&median, black_box(&mut w));
                black_box(&w);
            }
        })
    });
    let voter = BitVoter::new();
    group.bench_function("bit_voting", |b| {
        b.iter(|| {
            for s in &series {
                let mut w = s.clone();
                SeriesPreprocessor::<u16>::preprocess(&voter, black_box(&mut w));
                black_box(&w);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
