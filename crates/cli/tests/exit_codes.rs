//! Exit-code contract of the `preflight` binary: usage errors exit 2 with
//! a message on stderr (plus the usage text), runtime errors exit 1, and
//! successful runs exit 0. Scripts and the CI smoke job rely on this.

use std::process::{Command, Output};

fn preflight(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_preflight"))
        .args(args)
        .output()
        .expect("spawn preflight binary")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("preflight-exit-code-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn invalid_lambda_exits_2_with_a_message() {
    let out = preflight(&["preprocess", "--in", "x", "--out", "y", "--lambda", "101"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--lambda 101"), "stderr was: {stderr}");
    assert!(stderr.contains("0..=100"), "stderr was: {stderr}");
    assert!(stderr.contains("usage:"), "usage text expected: {stderr}");
}

#[test]
fn invalid_upsilon_exits_2_with_a_message() {
    for bad in ["3", "0", "18"] {
        let out = preflight(&["preprocess", "--in", "x", "--out", "y", "--upsilon", bad]);
        assert_eq!(out.status.code(), Some(2), "--upsilon {bad}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("--upsilon {bad}")),
            "stderr was: {stderr}"
        );
        assert!(stderr.contains("even number"), "stderr was: {stderr}");
    }
}

#[test]
fn invalid_kernel_exits_2_with_a_message() {
    let out = preflight(&[
        "preprocess",
        "--in",
        "x",
        "--out",
        "y",
        "--kernel",
        "vector",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown kernel 'vector'"),
        "stderr was: {stderr}"
    );
    assert!(stderr.contains("usage:"), "usage text expected: {stderr}");
}

#[test]
fn invalid_threads_exits_2_with_a_message() {
    let out = preflight(&["preprocess", "--in", "x", "--out", "y", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads 0"), "stderr was: {stderr}");

    let out = preflight(&[
        "preprocess",
        "--in",
        "x",
        "--out",
        "y",
        "--threads",
        "not-a-number",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads"), "stderr was: {stderr}");
}

#[test]
fn unknown_command_and_missing_flags_exit_2() {
    assert_eq!(preflight(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(preflight(&[]).status.code(), Some(2));
    assert_eq!(preflight(&["gen"]).status.code(), Some(2)); // --out missing
}

#[test]
fn runtime_errors_exit_1_without_usage_text() {
    // A well-formed invocation that fails at runtime (missing input file).
    let out = preflight(&["check", "--in", "/definitely/not/here.fits"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr was: {stderr}");
    assert!(
        !stderr.contains("usage:"),
        "runtime failures must not dump usage: {stderr}"
    );
}

#[test]
fn successful_runs_exit_0() {
    let out_file = tmp("ok.fits");
    let out = preflight(&[
        "gen", "--out", &out_file, "--width", "8", "--height", "8", "--frames", "4",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("8x8x4"));
}

#[test]
fn flag_validation_is_uniform_across_subcommands() {
    // --threads/--lambda/--upsilon are validated by the shared helpers in
    // `opts.rs`, so every subcommand that takes one must exit 2 on the
    // same bad values — before touching the filesystem or the network.
    let cases: &[&[&str]] = &[
        &["serve", "--tcp", "127.0.0.1:0", "--threads", "0"],
        &["serve", "--tcp", "127.0.0.1:0", "--kernel", "vector"],
        &[
            "submit",
            "--in",
            "x",
            "--out",
            "y",
            "--tcp",
            "127.0.0.1:1",
            "--lambda",
            "101",
        ],
        &[
            "submit",
            "--in",
            "x",
            "--out",
            "y",
            "--tcp",
            "127.0.0.1:1",
            "--upsilon",
            "5",
        ],
        &[
            "pipeline",
            "--in",
            "x",
            "--out",
            "y",
            "--preprocess",
            "--lambda",
            "999",
        ],
        &[
            "pipeline",
            "--in",
            "x",
            "--out",
            "y",
            "--preprocess",
            "--upsilon",
            "7",
        ],
        &[
            "retrieve",
            "--in",
            "x",
            "--out",
            "y",
            "--preprocess",
            "--lambda",
            "200",
        ],
    ];
    for args in cases {
        let out = preflight(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}
