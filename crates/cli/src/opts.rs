//! A tiny `--flag value` / `--switch` parser (no external dependencies).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed command-line options: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Opts {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "correlated",
    "preprocess",
    "degrade",
    "replicate",
    "auto-tune",
];

impl Opts {
    /// Parses the arguments after the subcommand.
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] for positional arguments, repeated keys,
    /// or a value-taking flag at the end of the line.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = Opts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {a:?}"
                )));
            };
            if SWITCHES.contains(&key) {
                opts.switches.push(key.to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} requires a value")))?;
            if opts.values.insert(key.to_owned(), value.clone()).is_some() {
                return Err(CliError::Usage(format!("--{key} given twice")));
            }
        }
        Ok(opts)
    }

    /// `true` if the bare switch was present.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// `true` if a value-taking flag was given explicitly (as opposed to
    /// falling back to its default).
    pub fn given(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.values.get(key)
    }

    /// A mandatory string flag.
    ///
    /// # Errors
    /// [`CliError::Usage`] if absent.
    pub fn require(&self, key: &str) -> Result<String, CliError> {
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    /// A mandatory `f64` flag.
    ///
    /// # Errors
    /// [`CliError::Usage`] if absent or unparsable.
    pub fn require_f64(&self, key: &str) -> Result<f64, CliError> {
        self.require(key)?
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} expects a number")))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} has a malformed value {v:?}"))),
        }
    }

    /// An optional `usize` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] on a malformed value.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        self.parse_or(key, default)
    }

    /// An optional `u32` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] on a malformed value.
    pub fn u32_or(&self, key: &str, default: u32) -> Result<u32, CliError> {
        self.parse_or(key, default)
    }

    /// An optional `u64` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] on a malformed value.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        self.parse_or(key, default)
    }

    /// An optional `f64` flag with a default.
    ///
    /// # Errors
    /// [`CliError::Usage`] on a malformed value.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, CliError> {
        self.parse_or(key, default)
    }

    /// Reads `--lambda` and validates the sensitivity percentage up
    /// front. Shared by every subcommand that takes Λ (`preprocess`,
    /// `retrieve`, `pipeline`, `submit`), so the range rule and its
    /// message cannot drift between them.
    ///
    /// # Errors
    /// [`CliError::Usage`] if the value is malformed or outside 0..=100.
    pub fn lambda(&self) -> Result<u32, CliError> {
        let lambda = self.u32_or("lambda", 80)?;
        if lambda > 100 {
            return Err(CliError::Usage(format!(
                "--lambda {lambda} is out of range: the sensitivity \u{39b} is a \
                 percentage and must lie in 0..=100"
            )));
        }
        Ok(lambda)
    }

    /// Reads `--upsilon` and validates the voter count up front.
    /// Shared by every subcommand that takes Υ.
    ///
    /// # Errors
    /// [`CliError::Usage`] if the value is malformed, odd, or outside
    /// 2..=16.
    pub fn upsilon(&self) -> Result<usize, CliError> {
        let upsilon = self.usize_or("upsilon", 4)?;
        if upsilon < 2 || upsilon % 2 != 0 || upsilon > 16 {
            return Err(CliError::Usage(format!(
                "--upsilon {upsilon} is invalid: the voter count \u{3a5} must be \
                 an even number between 2 and 16"
            )));
        }
        Ok(upsilon)
    }

    /// Reads `--threads` and validates the worker count up front: zero
    /// is rejected, and a request beyond the machine's available
    /// parallelism is capped (returning a warning line for the report).
    /// Shared by `preprocess` and `serve`.
    ///
    /// # Errors
    /// [`CliError::Usage`] if the value is malformed or zero.
    pub fn threads(&self) -> Result<(usize, Option<String>), CliError> {
        let requested = self.usize_or("threads", 1)?;
        if requested == 0 {
            return Err(CliError::Usage(
                "--threads 0 is invalid: at least one worker thread is required \
                 (omit the flag for a single-threaded run)"
                    .to_owned(),
            ));
        }
        let cap = preflight::core::available_threads();
        if requested > cap {
            return Ok((
                cap,
                Some(format!(
                    "warning: --threads {requested} exceeds the {cap} available \
                     hardware thread(s); capped to {cap}"
                )),
            ));
        }
        Ok((requested, None))
    }

    /// Reads `--kernel` and validates the voter-kernel name up front
    /// (`sweep` — the default — `scalar`, or the SIMD-dispatched
    /// `bitsliced`). Shared by `preprocess` and `serve`; all kernels are
    /// bit-identical, so the knob is purely a scheduling/benchmarking
    /// choice.
    ///
    /// # Errors
    /// [`CliError::Usage`] on an unknown kernel name.
    pub fn kernel(&self) -> Result<preflight::core::Kernel, CliError> {
        match self.values.get("kernel") {
            None => Ok(preflight::core::Kernel::default()),
            Some(v) => v
                .parse()
                .map_err(|e| CliError::Usage(format!("--kernel: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, CliError> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Opts::parse(&v)
    }

    #[test]
    fn pairs_and_switches() {
        let o = parse(&["--in", "a.fits", "--gamma0", "0.01", "--correlated"]).unwrap();
        assert_eq!(o.require("in").unwrap(), "a.fits");
        assert_eq!(o.require_f64("gamma0").unwrap(), 0.01);
        assert!(o.has("correlated"));
        assert!(!o.has("quiet"));
        assert!(o.given("gamma0"));
        assert!(!o.given("seed"));
    }

    #[test]
    fn degrade_is_a_switch() {
        let o = parse(&["--degrade", "--chaos", "0.1"]).unwrap();
        assert!(o.has("degrade"));
        assert_eq!(o.f64_or("chaos", 0.0).unwrap(), 0.1);
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.usize_or("width", 64).unwrap(), 64);
        assert_eq!(o.f64_or("sigma", 250.0).unwrap(), 250.0);
    }

    #[test]
    fn missing_and_malformed_values() {
        assert!(parse(&["--in"]).is_err(), "trailing flag");
        assert!(parse(&["stray"]).is_err(), "positional");
        assert!(parse(&["--w", "1", "--w", "2"]).is_err(), "repeated");
        let o = parse(&["--width", "abc"]).unwrap();
        assert!(o.usize_or("width", 1).is_err());
        let o = parse(&["--gamma0", "not-a-number"]).unwrap();
        assert!(o.require_f64("gamma0").is_err());
    }

    #[test]
    fn required_flags() {
        let o = parse(&[]).unwrap();
        assert!(matches!(o.require("out"), Err(CliError::Usage(_))));
        assert!(matches!(o.require_f64("gamma0"), Err(CliError::Usage(_))));
    }

    #[test]
    fn lambda_validation_is_shared() {
        assert_eq!(parse(&[]).unwrap().lambda().unwrap(), 80);
        assert_eq!(parse(&["--lambda", "0"]).unwrap().lambda().unwrap(), 0);
        assert_eq!(parse(&["--lambda", "100"]).unwrap().lambda().unwrap(), 100);
        assert!(matches!(
            parse(&["--lambda", "101"]).unwrap().lambda(),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["--lambda", "eighty"]).unwrap().lambda(),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn upsilon_validation_is_shared() {
        assert_eq!(parse(&[]).unwrap().upsilon().unwrap(), 4);
        assert_eq!(parse(&["--upsilon", "16"]).unwrap().upsilon().unwrap(), 16);
        for bad in ["0", "1", "3", "5", "18"] {
            assert!(
                matches!(
                    parse(&["--upsilon", bad]).unwrap().upsilon(),
                    Err(CliError::Usage(_))
                ),
                "--upsilon {bad} must be rejected"
            );
        }
    }

    #[test]
    fn kernel_validation_is_shared() {
        use preflight::core::Kernel;
        assert_eq!(parse(&[]).unwrap().kernel().unwrap(), Kernel::Sweep);
        assert_eq!(
            parse(&["--kernel", "scalar"]).unwrap().kernel().unwrap(),
            Kernel::Scalar
        );
        assert_eq!(
            parse(&["--kernel", "sweep"]).unwrap().kernel().unwrap(),
            Kernel::Sweep
        );
        assert_eq!(
            parse(&["--kernel", "bitsliced"]).unwrap().kernel().unwrap(),
            Kernel::Bitsliced
        );
        assert!(matches!(
            parse(&["--kernel", "vector"]).unwrap().kernel(),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn threads_validation_rejects_zero_and_caps_excess() {
        assert_eq!(parse(&[]).unwrap().threads().unwrap(), (1, None));
        assert!(matches!(
            parse(&["--threads", "0"]).unwrap().threads(),
            Err(CliError::Usage(_))
        ));
        let (capped, warning) = parse(&["--threads", "65535"]).unwrap().threads().unwrap();
        assert_eq!(capped, preflight::core::available_threads());
        assert!(warning.expect("warning line").contains("65535"));
    }
}
