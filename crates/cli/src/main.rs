//! `preflight` — the command-line face of the library.
//!
//! ```text
//! preflight gen        --out FILE [--width N] [--height N] [--frames N] [--sigma S] [--seed S]
//! preflight inject     --in FILE --out FILE --gamma0 P [--correlated] [--seed S]
//! preflight preprocess --in FILE --out FILE [--lambda L] [--upsilon U] [--trace-json FILE]
//! preflight check      --in FILE
//! preflight protect    --in FILE --out FILE
//! preflight tune       --in FILE --gamma0 P
//! preflight psi        --ideal FILE --observed FILE
//! preflight otis-gen   --out FILE --scene blob|stripe|spots [--size N]
//! preflight otis-inject --in FILE --out FILE --gamma0 P
//! preflight retrieve   --in FILE --out FILE [--preprocess] [--lambda L]
//! preflight pipeline   --in FILE --out FILE [--preprocess] [--workers N] [--gamma0 P]
//!                      [--chaos P] [--max-retries N] [--stage-timeout-ms MS] [--degrade]
//! preflight serve      [--tcp ADDR] [--unix PATH] [--capacity N] [--batch-frames N]
//!                      [--metrics-addr ADDR]
//! preflight route      --backends LIST [--tcp ADDR] [--unix PATH] [--replicate]
//!                      [--capacity N] [--health-ms MS] [--metrics-addr ADDR]
//! preflight submit     --in FILE --out FILE (--tcp ADDR | --unix PATH) [--lambda L]
//! preflight stats      (--tcp ADDR | --unix PATH)
//! preflight drain      (--tcp ADDR | --unix PATH)
//! ```
//!
//! Every subcommand reads and writes standard single-HDU FITS stacks, so
//! the tool interoperates with anything that speaks FITS.

#![forbid(unsafe_code)]

use preflight_cli::{dispatch, print_usage, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(report) => {
            print!("{report}");
        }
        // Bad invocations (unknown command, malformed or out-of-range
        // flags) exit 2 with the usage text; runtime failures (I/O,
        // unreadable FITS, daemon errors) exit 1 without it.
        Err(e @ CliError::Usage(_)) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
