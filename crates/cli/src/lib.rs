//! Implementation of the `preflight` command-line tool.
//!
//! All subcommands are plain functions from parsed options to a printable
//! report string, so the whole surface is unit-testable without spawning
//! processes. File format everywhere: single-HDU 3-axis 16-bit FITS (what
//! `preflight::fits` writes), optionally carrying checksum cards.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod opts;

use opts::Opts;
use preflight::prelude::*;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command, missing flag, malformed value).
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// The input was not a readable FITS stack.
    Fits(preflight::fits::FitsError),
    /// Invalid algorithm parameters.
    Core(preflight::core::CoreError),
    /// The distributed pipeline failed (bad configuration or a worker was
    /// lost with supervision disabled).
    Pipeline(PipelineError),
    /// Talking to (or running) a `preflightd` daemon failed.
    Serve(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "I/O: {e}"),
            CliError::Fits(e) => write!(f, "FITS: {e}"),
            CliError::Core(e) => write!(f, "parameters: {e}"),
            CliError::Pipeline(e) => write!(f, "pipeline: {e}"),
            CliError::Serve(m) => write!(f, "serve: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<preflight::fits::FitsError> for CliError {
    fn from(e: preflight::fits::FitsError) -> Self {
        CliError::Fits(e)
    }
}

impl From<preflight::core::CoreError> for CliError {
    fn from(e: preflight::core::CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<preflight_serve::ClientError> for CliError {
    fn from(e: preflight_serve::ClientError) -> Self {
        CliError::Serve(e.to_string())
    }
}

/// Prints the usage summary to stderr.
pub fn print_usage() {
    eprintln!(
        "usage: preflight <command> [flags]\n\
         commands:\n\
         \x20 gen        --out FILE [--width N] [--height N] [--frames N] [--sigma S] [--seed S]\n\
         \x20 inject     --in FILE --out FILE --gamma0 P [--correlated] [--seed S]\n\
         \x20 preprocess --in FILE --out FILE [--lambda L] [--upsilon U] [--threads N]\n\
         \x20            [--kernel sweep|scalar|bitsliced] [--trace-json FILE] [--auto-tune]\n\
         \x20 check      --in FILE\n\
         \x20 protect    --in FILE --out FILE\n\
         \x20 tune       --in FILE --gamma0 P\n\
         \x20 psi        --ideal FILE --observed FILE\n\
         \x20 otis-gen   --out FILE --scene blob|stripe|spots [--size N] [--seed S]\n\
         \x20 otis-inject --in FILE --out FILE --gamma0 P [--seed S]\n\
         \x20 retrieve   --in FILE --out FILE [--preprocess] [--lambda L]\n\
         \x20 pipeline   --in FILE --out FILE [--preprocess] [--lambda L] [--upsilon U]\n\
         \x20            [--workers N] [--tile N] [--gamma0 P] [--seed S]\n\
         \x20            [--chaos P] [--max-retries N] [--stage-timeout-ms MS] [--degrade]\n\
         \x20 serve      [--tcp ADDR] [--unix PATH] [--capacity N] [--max-conns N]\n\
         \x20            [--batch-frames N] [--batch-delay-ms MS] [--threads N] [--workers N]\n\
         \x20            [--kernel sweep|scalar|bitsliced] [--metrics-addr ADDR] [--auto-tune]\n\
         \x20 route      --backends LIST [--backend SPEC] [--tcp ADDR] [--unix PATH]\n\
         \x20            [--replicate] [--capacity N] [--max-conns N] [--vnodes N]\n\
         \x20            [--heavy-cost N] [--health-ms MS] [--metrics-addr ADDR]\n\
         \x20 submit     --in FILE --out FILE (--tcp ADDR | --unix PATH)\n\
         \x20            [--lambda L] [--upsilon U] [--stream N]\n\
         \x20 stats      (--tcp ADDR | --unix PATH)\n\
         \x20 drain      (--tcp ADDR | --unix PATH)"
    );
}

/// Parses and runs one invocation, returning the report to print.
///
/// # Errors
/// Returns [`CliError`] for bad invocations, I/O failures, unreadable FITS
/// input or invalid parameters.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".to_owned()))?;
    let opts = Opts::parse(rest)?;
    match command.as_str() {
        "gen" => cmd_gen(&opts),
        "inject" => cmd_inject(&opts),
        "preprocess" => cmd_preprocess(&opts),
        "check" => cmd_check(&opts),
        "protect" => cmd_protect(&opts),
        "tune" => cmd_tune(&opts),
        "psi" => cmd_psi(&opts),
        "otis-gen" => cmd_otis_gen(&opts),
        "otis-inject" => cmd_otis_inject(&opts),
        "retrieve" => cmd_retrieve(&opts),
        "pipeline" => cmd_pipeline(&opts),
        "serve" => cmd_serve(&opts),
        "route" => cmd_route(&opts),
        "submit" => cmd_submit(&opts),
        "stats" => cmd_stats(&opts),
        "drain" => cmd_drain(&opts),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn read_stack_file(path: &str) -> Result<ImageStack<u16>, CliError> {
    let bytes = std::fs::read(Path::new(path))?;
    Ok(read_stack(&bytes)?)
}

fn write_stack_file(path: &str, stack: &ImageStack<u16>) -> Result<(), CliError> {
    std::fs::write(Path::new(path), write_stack(stack))?;
    Ok(())
}

/// `gen`: synthesize a pristine stack from the paper's Gaussian model.
fn cmd_gen(opts: &Opts) -> Result<String, CliError> {
    let out = opts.require("out")?;
    let width = opts.usize_or("width", 64)?;
    let height = opts.usize_or("height", 64)?;
    let frames = opts.usize_or("frames", 64)?;
    let sigma = opts.f64_or("sigma", 250.0)?;
    let seed = opts.u64_or("seed", 1)?;
    if width == 0 || height == 0 || frames == 0 {
        return Err(CliError::Usage("dimensions must be positive".to_owned()));
    }
    let model = NgstModel {
        frames,
        sigma,
        ..NgstModel::default()
    };
    let stack = model.stack(width, height, &mut seeded_rng(seed));
    write_stack_file(&out, &stack)?;
    Ok(format!(
        "wrote {width}x{height}x{frames} stack (sigma {sigma}, seed {seed}) to {out}\n"
    ))
}

/// `inject`: corrupt a stack with one of the paper's fault models.
fn cmd_inject(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let gamma = opts.require_f64("gamma0")?;
    let seed = opts.u64_or("seed", 2)?;
    let mut stack = read_stack_file(&input)?;
    let mut rng = seeded_rng(seed);
    let map = if opts.has("correlated") {
        Correlated::new(gamma)
            .map_err(|e| CliError::Usage(e.to_string()))?
            .inject_stack(&mut stack, &mut rng)
    } else {
        Uncorrelated::new(gamma)
            .map_err(|e| CliError::Usage(e.to_string()))?
            .inject_stack(&mut stack, &mut rng)
    };
    write_stack_file(&out, &stack)?;
    let total_bits = stack.len() * 16;
    Ok(format!(
        "flipped {} bits of {} ({:.4} % empirical rate) -> {out}\n",
        map.len(),
        total_bits,
        map.empirical_rate(total_bits) * 100.0
    ))
}

/// `preprocess`: header sanity analysis + `Algo_NGST` over every series,
/// driven through the unified [`Preprocessor`] API. `--trace-json FILE`
/// attaches a span subscriber and dumps the stage timeline for offline
/// analysis; without it, observability stays disabled and the hot path
/// pays nothing. `--auto-tune` attaches a [`StreamCalibrator`]: the run is
/// served with whatever boundaries the calibrator freezes from the file's
/// own Φ statistics, and the chosen-vs-requested values land in the
/// report.
fn cmd_preprocess(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let lambda = opts.lambda()?;
    let upsilon = opts.upsilon()?;
    let (threads, thread_warning) = opts.threads()?;
    let kernel = opts.kernel()?;
    let trace_path = opts.get("trace-json").cloned();
    let algo = AlgoNgst::new(Upsilon::new(upsilon)?, Sensitivity::new(lambda)?);

    let bytes = std::fs::read(Path::new(&input))?;
    let sanity = analyze(&bytes);
    let mut report = String::new();
    if let Some(w) = thread_warning {
        let _ = writeln!(report, "{w}");
    }
    for f in &sanity.findings {
        let _ = writeln!(report, "header: {f:?}");
    }
    if !sanity.header_ok {
        return Err(CliError::Usage(format!(
            "{input}: header unrecoverable; findings above the repair budget"
        )));
    }
    let mut stack = read_stack(&sanity.repaired)?;
    let (obs, recorder) = if trace_path.is_some() {
        let obs = Obs::new();
        let recorder = TimelineRecorder::new();
        obs.set_subscriber(Some(recorder.clone()));
        (obs, Some(recorder))
    } else {
        (Obs::disabled(), None)
    };
    let calibrator = if opts.has("auto-tune") {
        Some(std::sync::Arc::new(StreamCalibrator::new(
            TuneParams::new(Sensitivity::new(lambda)?, Upsilon::new(upsilon)?),
            &obs,
        )))
    } else {
        None
    };
    let start = std::time::Instant::now();
    let mut driver = Preprocessor::new(&algo)
        .threads(threads)
        .kernel(kernel)
        .observer(&obs);
    if let Some(cal) = &calibrator {
        driver = driver.tuner(cal.clone());
    }
    let corrected = driver.run(&mut stack);
    let elapsed = start.elapsed();
    write_stack_file(&out, &stack)?;
    let _ = writeln!(
        report,
        "preprocessed {} series on {threads} thread(s) ({kernel} kernel, L={lambda}, \
         U={upsilon}): {corrected} samples repaired in {elapsed:?} -> {out}",
        stack.width() * stack.height(),
    );
    if let Some(cal) = &calibrator {
        match cal.decision(16) {
            Some(d) => {
                let _ = writeln!(
                    report,
                    "auto-tune: chosen L={} U={} windows A={}/C={} ({} recalibration(s))",
                    d.lambda.value(),
                    d.upsilon.value(),
                    d.window_a_bits,
                    d.window_c_bits,
                    d.recalibrations,
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "auto-tune: still warming up; served with the requested parameters"
                );
            }
        }
    }
    if let (Some(path), Some(recorder)) = (&trace_path, &recorder) {
        std::fs::write(Path::new(path), recorder.to_json())?;
        let _ = writeln!(
            report,
            "trace: {} span(s) -> {path}",
            recorder.records().len()
        );
    }
    Ok(report)
}

/// `check`: Λ = 0 sanity analysis plus checksum triage, report-only.
fn cmd_check(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let bytes = std::fs::read(Path::new(&input))?;
    let sanity = analyze(&bytes);
    let mut report = String::new();
    let _ = writeln!(report, "header ok: {}", sanity.header_ok);
    for f in &sanity.findings {
        let _ = writeln!(report, "finding: {f:?}");
    }
    match verify_checksums(&sanity.repaired) {
        Ok(status) => {
            let _ = writeln!(report, "checksums: {status:?}");
        }
        Err(e) => {
            let _ = writeln!(report, "checksums: unverifiable ({e})");
        }
    }
    if sanity.header_ok {
        let stack = read_stack(&sanity.repaired)?;
        let _ = writeln!(
            report,
            "geometry: {}x{}x{} (16-bit)",
            stack.width(),
            stack.height(),
            stack.frames()
        );
    }
    Ok(report)
}

/// `protect`: append the FITS checksum cards.
fn cmd_protect(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let bytes = std::fs::read(Path::new(&input))?;
    let protected = add_checksums(&bytes)?;
    std::fs::write(Path::new(&out), &protected)?;
    Ok(format!(
        "checksummed {} -> {out} ({} bytes)\n",
        input,
        protected.len()
    ))
}

/// `tune`: recommend (Υ, Λ) from the file's own series statistics.
fn cmd_tune(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let gamma = opts.require_f64("gamma0")?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!(
            "gamma0 {gamma} is not a probability"
        )));
    }
    let stack = read_stack_file(&input)?;
    // Sample up to 64 coordinate series spread across the frame.
    let mut samples = Vec::new();
    let step = ((stack.width() * stack.height()) / 64).max(1);
    let mut buf = Vec::new();
    for idx in (0..stack.width() * stack.height()).step_by(step) {
        let (x, y) = (idx % stack.width(), idx / stack.width());
        stack.gather_series(x, y, &mut buf);
        samples.push(buf.clone());
    }
    let rec =
        preflight::tuning::recommend(&samples, gamma, &preflight::tuning::TuningConfig::default())?;
    Ok(format!(
        "estimated sigma {:.1}; recommend {} {} (expected Psi {:.6}, {:.1}x better than raw)\n",
        rec.sigma_estimate,
        rec.upsilon,
        rec.sensitivity,
        rec.expected_psi,
        rec.improvement_factor()
    ))
}

/// `psi`: the paper's Eq. 3/4 metric between two stacks.
fn cmd_psi(opts: &Opts) -> Result<String, CliError> {
    let ideal = read_stack_file(&opts.require("ideal")?)?;
    let observed = read_stack_file(&opts.require("observed")?)?;
    if ideal.width() != observed.width()
        || ideal.height() != observed.height()
        || ideal.frames() != observed.frames()
    {
        return Err(CliError::Usage("stack geometries differ".to_owned()));
    }
    let value = psi(ideal.as_slice(), observed.as_slice());
    let confusion = BitConfusion::score(ideal.as_slice(), observed.as_slice(), observed.as_slice());
    Ok(format!(
        "Psi = {value:.8}\nbits differing from ideal: {}\n",
        confusion.total_flipped
    ))
}

/// `otis-gen`: synthesize an OTIS radiance cube from a scene archetype.
fn cmd_otis_gen(opts: &Opts) -> Result<String, CliError> {
    let out = opts.require("out")?;
    let size = opts.usize_or("size", 64)?;
    let seed = opts.u64_or("seed", 1)?;
    let scene = match opts.require("scene")?.to_lowercase().as_str() {
        "blob" => OtisScene::Blob,
        "stripe" => OtisScene::Stripe,
        "spots" => OtisScene::Spots,
        other => {
            return Err(CliError::Usage(format!(
                "unknown scene {other:?} (expected blob, stripe or spots)"
            )))
        }
    };
    if size < 4 {
        return Err(CliError::Usage("scene size must be at least 4".to_owned()));
    }
    let mut rng = seeded_rng(seed);
    let temp = temperature_scene(scene, size, size, &mut rng);
    let emis = emissivity_scene(size, size, &mut rng);
    let cube = radiance_cube(&temp, &emis, &DEFAULT_BANDS);
    std::fs::write(Path::new(&out), preflight::fits::write_cube_f32(&cube))?;
    Ok(format!(
        "wrote '{scene}' radiance cube {size}x{size}x{} (seed {seed}) to {out}\n",
        DEFAULT_BANDS.len()
    ))
}

/// `otis-inject`: corrupt a radiance cube with uncorrelated bit-flips.
fn cmd_otis_inject(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let gamma = opts.require_f64("gamma0")?;
    let seed = opts.u64_or("seed", 2)?;
    let bytes = std::fs::read(Path::new(&input))?;
    let mut cube = preflight::fits::read_cube_f32(&bytes)?;
    let map = Uncorrelated::new(gamma)
        .map_err(|e| CliError::Usage(e.to_string()))?
        .inject_cube(&mut cube, &mut seeded_rng(seed));
    std::fs::write(Path::new(&out), preflight::fits::write_cube_f32(&cube))?;
    Ok(format!(
        "flipped {} bits in the radiance cube -> {out}\n",
        map.len()
    ))
}

/// `retrieve`: OTIS temperature/emissivity retrieval, with optional
/// `Algo_OTIS` preprocessing in front.
fn cmd_retrieve(opts: &Opts) -> Result<String, CliError> {
    use preflight::datagen::planck::max_radiance;

    let input = opts.require("in")?;
    let out = opts.require("out")?;
    // Validate parameters before touching the filesystem.
    let lambda = if opts.has("preprocess") {
        Some(opts.lambda()?)
    } else {
        None
    };
    let bytes = std::fs::read(Path::new(&input))?;
    let mut cube = preflight::fits::read_cube_f32(&bytes)?;
    if cube.bands() != DEFAULT_BANDS.len() {
        return Err(CliError::Usage(format!(
            "cube has {} bands; this tool retrieves the standard {}-band set",
            cube.bands(),
            DEFAULT_BANDS.len()
        )));
    }
    let mut report = String::new();
    if let Some(lambda) = lambda {
        let algo = AlgoOtis::new(
            Sensitivity::new(lambda)?,
            PhysicalBounds::radiance(max_radiance(400.0, &DEFAULT_BANDS) * 1.2),
        );
        let fixed = algo.preprocess_cube(&mut cube);
        let _ = writeln!(report, "Algo_OTIS (L={lambda}) repaired {fixed} samples");
    }
    let product = Retrieval::default().run(&cube, &DEFAULT_BANDS);
    std::fs::write(
        Path::new(&out),
        preflight::fits::write_image_f32(&product.temperature),
    )?;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in product.temperature.as_slice() {
        let v = f64::from(v);
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let _ = writeln!(
        report,
        "temperature map {}x{} (range {lo:.1}..{hi:.1} K) -> {out}",
        product.temperature.width(),
        product.temperature.height()
    );
    Ok(report)
}

/// `pipeline`: the full Fig. 1 run — header sanity + checksum triage,
/// tiling to workers, optional preprocessing, CR rejection, reassembly and
/// multi-HDU product output (INTEGRATED / RATE / REPAIRS).
///
/// Supervision (`--max-retries`, `--stage-timeout-ms`, `--degrade`) wraps
/// every tile in the retry/degradation envelope; `--chaos P` additionally
/// injects process-level faults (worker stalls, crashes, corrupted result
/// messages) with probability `P` each, from the run's seed.
fn cmd_pipeline(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let workers = opts.usize_or("workers", 4)?;
    let tile = opts.usize_or("tile", 64)?;
    let gamma = opts.f64_or("gamma0", 0.0)?;
    let seed = opts.u64_or("seed", 1)?;
    if workers == 0 || tile == 0 {
        return Err(CliError::Usage(
            "workers and tile must be positive".to_owned(),
        ));
    }
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!(
            "gamma0 {gamma} is not a probability"
        )));
    }
    let preprocess = if opts.has("preprocess") {
        let lambda = opts.lambda()?;
        let upsilon = opts.upsilon()?;
        Some(AlgoNgst::new(
            Upsilon::new(upsilon)?,
            Sensitivity::new(lambda)?,
        ))
    } else {
        None
    };

    // Supervision: enabled by any of the runtime-robustness flags.
    let chaos_prob = opts.f64_or("chaos", 0.0)?;
    let max_retries = opts.u32_or("max-retries", 2)?;
    let timeout_ms = opts.u64_or("stage-timeout-ms", 30_000)?;
    if timeout_ms == 0 {
        return Err(CliError::Usage(
            "--stage-timeout-ms must be positive".to_owned(),
        ));
    }
    let supervised = chaos_prob > 0.0
        || opts.has("degrade")
        || opts.given("max-retries")
        || opts.given("stage-timeout-ms");
    let supervision = Supervision {
        policy: RetryPolicy {
            max_retries,
            stage_timeout: std::time::Duration::from_millis(timeout_ms),
            seed,
            ..RetryPolicy::default()
        },
        degrade: opts.has("degrade"),
        ..Supervision::default()
    };
    let injector = if chaos_prob != 0.0 {
        let config = ChaosConfig::uniform(chaos_prob).map_err(|e| {
            CliError::Usage(format!(
                "--chaos {chaos_prob} is invalid: {e} (stall, crash and \
                 corruption each get this probability, so it must not \
                 exceed 1/3)"
            ))
        })?;
        Some(ChaosInjector::new(config, seed).map_err(|e| CliError::Usage(e.to_string()))?)
    } else {
        None
    };
    let chaos: Option<&dyn ChaosModel> = injector.as_ref().map(|i| i as &dyn ChaosModel);

    let cfg = PipelineConfig {
        workers,
        tile_size: tile,
        preprocess,
        transit_fault: (gamma > 0.0).then_some(TransitFault::Uncorrelated(gamma)),
        seed,
        ..PipelineConfig::default()
    };
    let bytes = std::fs::read(Path::new(&input))?;
    let pipeline = NgstPipeline::new(cfg)?;
    let ingest = if supervised {
        pipeline.run_fits_with(&bytes, Some(&supervision), chaos)?
    } else {
        pipeline.run_fits(&bytes)?
    };
    std::fs::write(Path::new(&out), ingest.report.to_fits_products())?;
    let mut report = String::new();
    for f in &ingest.sanity.findings {
        let _ = writeln!(report, "header: {f:?}");
    }
    let _ = writeln!(report, "checksums: {:?}", ingest.checksum);
    let _ = writeln!(
        report,
        "{} tiles on {} workers in {:?}; {} samples repaired, {} CR jumps rejected",
        ingest.report.tiles,
        workers,
        ingest.report.elapsed,
        ingest.report.corrected_samples,
        ingest.report.cr_jumps_rejected
    );
    if let Some(sup) = &ingest.supervision {
        let _ = writeln!(
            report,
            "supervision: FT level {} achieved; {} recovery event(s); \
             {} tile(s) abandoned",
            sup.achieved.name(),
            sup.recovery.len(),
            sup.abandoned_tiles
        );
        if !sup.recovery.is_empty() {
            let _ = writeln!(report, "recovery: {}", sup.recovery.summary());
        }
    }
    let _ = writeln!(
        report,
        "products (INTEGRATED + RATE + REPAIRS) -> {out} \
         (downlink ratio {:.2})",
        ingest.report.compression_ratio
    );
    Ok(report)
}

/// Connects to a daemon named by `--tcp` or `--unix` (exactly one way).
fn connect_daemon(opts: &Opts) -> Result<preflight_serve::Client, CliError> {
    if let Some(addr) = opts.get("tcp") {
        return Ok(preflight_serve::ClientBuilder::new().tcp(addr).connect()?);
    }
    #[cfg(unix)]
    if let Some(path) = opts.get("unix") {
        return Ok(preflight_serve::ClientBuilder::new().unix(path).connect()?);
    }
    Err(CliError::Usage(
        "--tcp ADDR or --unix PATH is required to reach a daemon".to_owned(),
    ))
}

/// `serve`: run a `preflightd` daemon in the foreground until a wire-level
/// drain (or SIGTERM/SIGINT) stops it.
fn cmd_serve(opts: &Opts) -> Result<String, CliError> {
    use preflight_serve::server::ServerConfig;
    use preflight_serve::ServerBuilder;

    let mut config = ServerConfig {
        tcp: opts.get("tcp").cloned(),
        unix: opts.get("unix").map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    if config.tcp.is_none() && config.unix.is_none() {
        return Err(CliError::Usage(
            "serve needs at least one of --tcp ADDR or --unix PATH".to_owned(),
        ));
    }
    config.capacity = opts.usize_or("capacity", config.capacity)?;
    if config.capacity == 0 {
        return Err(CliError::Usage(
            "--capacity 0 is invalid: the daemon must admit at least one request".to_owned(),
        ));
    }
    config.max_connections = opts.usize_or("max-conns", config.max_connections)?;
    if config.max_connections == 0 {
        return Err(CliError::Usage(
            "--max-conns 0 is invalid: the daemon must accept at least one connection".to_owned(),
        ));
    }
    config.batch.target_frames = opts.usize_or("batch-frames", config.batch.target_frames)?;
    let delay_ms = opts.u64_or("batch-delay-ms", 5)?;
    config.batch.max_delay = std::time::Duration::from_millis(delay_ms);
    let (threads, thread_warning) = opts.threads()?;
    if opts.given("threads") {
        config.engine.threads = threads;
    }
    config.engine.kernel = opts.kernel()?;
    config.engine_workers = opts.usize_or("workers", config.engine_workers)?;
    config.metrics_addr = opts.get("metrics-addr").cloned();
    config.auto_tune = opts.has("auto-tune");

    preflight_serve::signal::install();
    let handle = ServerBuilder::from(config)
        .serve()
        .map_err(|e| CliError::Serve(e.to_string()))?;
    let mut report = String::new();
    if let Some(w) = thread_warning {
        let _ = writeln!(report, "{w}");
    }
    // Announce the endpoints on stdout immediately, so wrappers (and the CI
    // smoke job) can wait for readiness instead of sleeping.
    if let Some(addr) = handle.tcp_addr() {
        println!("serving tcp://{addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("serving unix://{}", path.display());
    }
    if let Some(addr) = handle.metrics_addr() {
        println!("serving metrics on http://{addr}/metrics");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !preflight_serve::signal::triggered() && !handle.drain_acked() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let summary = handle.drain();
    let _ = writeln!(
        report,
        "drained: {} completed, {} rejected busy",
        summary.completed, summary.rejected
    );
    let _ = writeln!(report, "{}", handle.stats().summary());
    Ok(report)
}

/// `route`: run a `preflight-router` fleet front end in the foreground,
/// sharding client streams across the named `preflightd` backends.
/// `--replicate` turns on dual-write with the bit-identity cross-check.
/// Like `serve`, the process runs until a wire-level drain (or
/// SIGTERM/SIGINT) stops it; the backends themselves are never drained —
/// they may be shared with other front ends.
fn cmd_route(opts: &Opts) -> Result<String, CliError> {
    use preflight_router::pool::BackendAddr;
    use preflight_router::server::{start, RouterConfig};

    let mut config = RouterConfig {
        tcp: opts.get("tcp").cloned(),
        unix: opts.get("unix").map(std::path::PathBuf::from),
        replicate: opts.has("replicate"),
        ..RouterConfig::default()
    };
    if config.tcp.is_none() && config.unix.is_none() {
        return Err(CliError::Usage(
            "route needs at least one of --tcp ADDR or --unix PATH".to_owned(),
        ));
    }
    if let Some(list) = opts.get("backends") {
        for spec in list.split(',') {
            let spec = spec.trim();
            if !spec.is_empty() {
                config
                    .backends
                    .push(BackendAddr::parse(spec).map_err(CliError::Usage)?);
            }
        }
    }
    if let Some(spec) = opts.get("backend") {
        config
            .backends
            .push(BackendAddr::parse(spec).map_err(CliError::Usage)?);
    }
    if config.backends.is_empty() {
        return Err(CliError::Usage(
            "route needs at least one backend (--backends tcp://H:P,unix:///path \
             or --backend SPEC)"
                .to_owned(),
        ));
    }
    if config.backends.len() > preflight_router::MAX_BACKENDS {
        return Err(CliError::Usage(format!(
            "route supports at most {} backends, got {}",
            preflight_router::MAX_BACKENDS,
            config.backends.len()
        )));
    }
    if config.replicate && config.backends.len() < 2 {
        return Err(CliError::Usage(
            "--replicate needs at least two backends to cross-check".to_owned(),
        ));
    }
    config.capacity = opts.usize_or("capacity", config.capacity)?;
    if config.capacity == 0 {
        return Err(CliError::Usage(
            "--capacity 0 is invalid: the router must admit at least one request".to_owned(),
        ));
    }
    config.max_connections = opts.usize_or("max-conns", config.max_connections)?;
    if config.max_connections == 0 {
        return Err(CliError::Usage(
            "--max-conns 0 is invalid: the router must accept at least one connection".to_owned(),
        ));
    }
    config.vnodes = opts.usize_or("vnodes", config.vnodes)?;
    if config.vnodes == 0 {
        return Err(CliError::Usage(
            "--vnodes 0 is invalid: each backend needs at least one ring point".to_owned(),
        ));
    }
    config.heavy_cost = opts.u64_or("heavy-cost", config.heavy_cost)?;
    let health_ms = opts.u64_or(
        "health-ms",
        u64::try_from(config.health_period.as_millis()).unwrap_or(500),
    )?;
    if health_ms == 0 {
        return Err(CliError::Usage(
            "--health-ms 0 is invalid: the prober needs a positive period".to_owned(),
        ));
    }
    config.health_period = std::time::Duration::from_millis(health_ms);
    config.metrics_addr = opts.get("metrics-addr").cloned();

    let fleet_size = config.backends.len();
    let replicate = config.replicate;
    preflight_serve::signal::install();
    let handle = start(config).map_err(|e| CliError::Serve(e.to_string()))?;
    if let Some(addr) = handle.tcp_addr() {
        println!("routing tcp://{addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("routing unix://{}", path.display());
    }
    if let Some(addr) = handle.metrics_addr() {
        println!("serving metrics on http://{addr}/metrics");
    }
    println!(
        "fronting {fleet_size} backend(s){}",
        if replicate {
            ", replicated with bit-identity cross-check"
        } else {
            ""
        }
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !preflight_serve::signal::triggered() && !handle.drain_acked() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let summary = handle.drain();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "drained: {} completed, {} rejected busy",
        summary.completed, summary.rejected
    );
    let _ = writeln!(report, "fleet {}", handle.fleet_status());
    let _ = writeln!(report, "{}", handle.stats().summary());
    Ok(report)
}

/// `submit`: send one FITS stack to a daemon and write the repaired stack
/// it returns.
fn cmd_submit(opts: &Opts) -> Result<String, CliError> {
    use preflight_serve::wire::FramePayload;
    use preflight_serve::SubmitOptions;

    let input = opts.require("in")?;
    let out = opts.require("out")?;
    let lambda = opts.lambda()?;
    let upsilon = opts.upsilon()?;
    let stream_id = opts.u64_or("stream", 0)?;
    let stack = read_stack_file(&input)?;
    let mut client = connect_daemon(opts)?;
    let response = client.submit(
        FramePayload::U16(stack),
        &SubmitOptions {
            stream_id,
            lambda: lambda as u8,
            upsilon: upsilon as u8,
            eos: true,
        },
    )?;
    let FramePayload::U16(repaired) = response.payload else {
        return Err(CliError::Serve(
            "daemon answered with a different pixel type".to_owned(),
        ));
    };
    write_stack_file(&out, &repaired)?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "repaired {}x{}x{} -> {out}",
        repaired.width(),
        repaired.height(),
        repaired.frames()
    );
    let _ = writeln!(report, "{}", response.stats);
    Ok(report)
}

/// `stats`: fetch a daemon's metrics registry over the wire and render
/// the same numbers the `/metrics` scrape exposes as a human report.
///
/// Routers answer `StatsRequest` with their own registry (routing
/// counters, not batching ones), so the snapshot's counter families tell
/// us which summary to render.
fn cmd_stats(opts: &Opts) -> Result<String, CliError> {
    let mut client = connect_daemon(opts)?;
    let snap = client.stats()?;
    let mut report = String::new();
    if snap
        .counter(preflight_router::telemetry::ROUTED_TOTAL, None)
        .is_some()
    {
        let _ = writeln!(
            report,
            "{}",
            preflight_router::telemetry::format_router_summary(&snap)
        );
        for stage in preflight_router::telemetry::ROUTER_STAGES {
            if let Some(h) = snap.histogram("stage_seconds", Some(("stage", stage))) {
                let _ = writeln!(
                    report,
                    "stage {stage:<10} count {:>8}  p50 {:>8} us  p90 {:>8} us  p99 {:>8} us",
                    h.count,
                    h.p50_us(),
                    h.p90_us(),
                    h.p99_us()
                );
            }
        }
        return Ok(report);
    }
    let _ = writeln!(report, "{}", preflight_serve::format_summary(&snap));
    let counter = |name: &str| snap.counter(name, None).unwrap_or(0);
    let _ = writeln!(
        report,
        "repairs: {} samples, {} bits; engine retries: {}",
        counter("serve_samples_repaired_total"),
        counter("serve_bits_repaired_total"),
        counter("serve_retries_total"),
    );
    for stage in ["admission", "queue", "batch", "engine", "write"] {
        if let Some(h) = snap.histogram("stage_seconds", Some(("stage", stage))) {
            let _ = writeln!(
                report,
                "stage {stage:<9} count {:>8}  p50 {:>8} us  p90 {:>8} us  p99 {:>8} us",
                h.count,
                h.p50_us(),
                h.p90_us(),
                h.p99_us()
            );
        }
    }
    Ok(report)
}

/// `drain`: ask a daemon to finish in-flight work and shut down.
fn cmd_drain(opts: &Opts) -> Result<String, CliError> {
    let mut client = connect_daemon(opts)?;
    let summary = client.drain()?;
    Ok(format!(
        "daemon drained: {} completed, {} rejected busy\n",
        summary.completed, summary.rejected
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("preflight-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        dispatch(&v)
    }

    #[test]
    fn gen_inject_preprocess_psi_roundtrip() {
        let clean = tmp("clean.fits");
        let bad = tmp("bad.fits");
        let fixed = tmp("fixed.fits");

        let r = run(&[
            "gen", "--out", &clean, "--width", "16", "--height", "12", "--frames", "32", "--seed",
            "5",
        ])
        .unwrap();
        assert!(r.contains("16x12x32"));

        let r = run(&[
            "inject", "--in", &clean, "--out", &bad, "--gamma0", "0.01", "--seed", "9",
        ])
        .unwrap();
        assert!(r.contains("flipped"));

        let r = run(&[
            "preprocess",
            "--in",
            &bad,
            "--out",
            &fixed,
            "--lambda",
            "80",
        ])
        .unwrap();
        assert!(r.contains("samples repaired"));

        let before = run(&["psi", "--ideal", &clean, "--observed", &bad]).unwrap();
        let after = run(&["psi", "--ideal", &clean, "--observed", &fixed]).unwrap();
        let parse = |s: &str| -> f64 {
            s.lines()
                .find_map(|l| l.strip_prefix("Psi = "))
                .expect("psi line")
                .parse()
                .expect("number")
        };
        assert!(parse(&after) < parse(&before), "{after} !< {before}");
    }

    #[test]
    fn auto_tune_preprocess_reports_choice_and_is_deterministic() {
        let clean = tmp("at-clean.fits");
        let bad = tmp("at-bad.fits");
        let out_a = tmp("at-a.fits");
        let out_b = tmp("at-b.fits");
        run(&[
            "gen", "--out", &clean, "--width", "16", "--height", "12", "--frames", "32", "--seed",
            "11",
        ])
        .unwrap();
        run(&[
            "inject", "--in", &clean, "--out", &bad, "--gamma0", "0.01", "--seed", "3",
        ])
        .unwrap();
        let r = run(&["preprocess", "--in", &bad, "--out", &out_a, "--auto-tune"]).unwrap();
        assert!(r.contains("auto-tune: chosen L="), "{r}");
        run(&["preprocess", "--in", &bad, "--out", &out_b, "--auto-tune"]).unwrap();
        let a = std::fs::read(&out_a).unwrap();
        let b = std::fs::read(&out_b).unwrap();
        assert_eq!(a, b, "stationary input must preprocess bit-identically");
    }

    #[test]
    fn check_and_protect_report_checksums() {
        let clean = tmp("c2.fits");
        let safe = tmp("c2-safe.fits");
        run(&[
            "gen", "--out", &clean, "--width", "8", "--height", "8", "--frames", "4",
        ])
        .unwrap();
        let r = run(&["check", "--in", &clean]).unwrap();
        assert!(r.contains("header ok: true"));
        assert!(r.contains("Absent"));

        run(&["protect", "--in", &clean, "--out", &safe]).unwrap();
        let r = run(&["check", "--in", &safe]).unwrap();
        assert!(r.contains("Valid"), "{r}");

        // Damage the protected file's data: triage must say DataCorrupted.
        let mut bytes = std::fs::read(&safe).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x40;
        std::fs::write(&safe, bytes).unwrap();
        let r = run(&["check", "--in", &safe]).unwrap();
        assert!(r.contains("DataCorrupted"), "{r}");
    }

    #[test]
    fn tune_recommends_sane_parameters() {
        let clean = tmp("c3.fits");
        run(&[
            "gen", "--out", &clean, "--width", "12", "--height", "8", "--frames", "64", "--sigma",
            "250",
        ])
        .unwrap();
        let r = run(&["tune", "--in", &clean, "--gamma0", "0.01"]).unwrap();
        assert!(r.contains("recommend"), "{r}");
        assert!(r.contains("sigma"), "{r}");
    }

    #[test]
    fn otis_generate_corrupt_retrieve_chain() {
        let cube = tmp("cube.fits");
        let bad = tmp("cube-bad.fits");
        let t_clean = tmp("t-clean.fits");
        let t_bad = tmp("t-bad.fits");
        let t_fixed = tmp("t-fixed.fits");

        let r = run(&[
            "otis-gen", "--out", &cube, "--scene", "blob", "--size", "32",
        ])
        .unwrap();
        assert!(r.contains("Blob"));

        run(&["retrieve", "--in", &cube, "--out", &t_clean]).unwrap();
        run(&[
            "otis-inject",
            "--in",
            &cube,
            "--out",
            &bad,
            "--gamma0",
            "0.01",
        ])
        .unwrap();
        run(&["retrieve", "--in", &bad, "--out", &t_bad]).unwrap();
        let r = run(&[
            "retrieve",
            "--in",
            &bad,
            "--out",
            &t_fixed,
            "--preprocess",
            "--lambda",
            "80",
        ])
        .unwrap();
        assert!(r.contains("repaired"));

        // The preprocessed retrieval must sit closer to the clean one.
        let load = |p: &str| preflight::fits::read_image_f32(&std::fs::read(p).unwrap()).unwrap();
        let (clean, bad_t, fixed_t) = (load(&t_clean), load(&t_bad), load(&t_fixed));
        let err = |a: &preflight::core::Image<f32>, b: &preflight::core::Image<f32>| -> f64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| {
                    if y.is_finite() {
                        f64::from((x - y).abs()).min(200.0)
                    } else {
                        200.0
                    }
                })
                .sum::<f64>()
        };
        assert!(
            err(&clean, &fixed_t) < err(&clean, &bad_t) / 2.0,
            "preprocessing must pay off end to end"
        );
    }

    #[test]
    fn pipeline_command_produces_multi_hdu_products() {
        let stack = tmp("pipe-in.fits");
        let out = tmp("pipe-out.fits");
        run(&[
            "gen", "--out", &stack, "--width", "32", "--height", "32", "--frames", "16",
        ])
        .unwrap();
        let r = run(&[
            "pipeline",
            "--in",
            &stack,
            "--out",
            &out,
            "--preprocess",
            "--gamma0",
            "0.005",
            "--workers",
            "2",
            "--tile",
            "16",
        ])
        .unwrap();
        assert!(r.contains("samples repaired"), "{r}");
        let hdus =
            preflight::fits::read_hdus(&std::fs::read(&out).unwrap()).expect("products parse");
        assert_eq!(hdus.len(), 3);
        assert_eq!(hdus[2].name.as_deref(), Some("REPAIRS"));
    }

    #[test]
    fn pipeline_supervised_chaos_run_reports_recovery() {
        let stack = tmp("chaos-in.fits");
        let out = tmp("chaos-out.fits");
        run(&[
            "gen", "--out", &stack, "--width", "32", "--height", "32", "--frames", "16",
        ])
        .unwrap();
        let r = run(&[
            "pipeline",
            "--in",
            &stack,
            "--out",
            &out,
            "--chaos",
            "0.2",
            "--max-retries",
            "3",
            "--degrade",
            "--workers",
            "2",
            "--tile",
            "16",
            "--seed",
            "11",
        ])
        .unwrap();
        assert!(r.contains("supervision: FT level"), "{r}");
        let hdus =
            preflight::fits::read_hdus(&std::fs::read(&out).unwrap()).expect("products parse");
        assert_eq!(hdus.len(), 3, "chaos must not cost the products");
    }

    #[test]
    fn pipeline_rejects_bad_robustness_flags() {
        assert!(matches!(
            run(&["pipeline", "--in", "x", "--out", "y", "--chaos", "0.5"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["pipeline", "--in", "x", "--out", "y", "--chaos", "-0.1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "pipeline",
                "--in",
                "x",
                "--out",
                "y",
                "--stage-timeout-ms",
                "0"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lambda_and_upsilon_are_validated_up_front() {
        // No input file is ever touched: validation must fire first.
        for args in [
            ["preprocess", "--in", "x", "--out", "y", "--lambda", "101"],
            ["preprocess", "--in", "x", "--out", "y", "--upsilon", "3"],
            ["preprocess", "--in", "x", "--out", "y", "--upsilon", "0"],
            ["preprocess", "--in", "x", "--out", "y", "--upsilon", "18"],
        ] {
            let err = run(&args).unwrap_err();
            match err {
                CliError::Usage(m) => {
                    assert!(m.contains("must"), "friendly message expected, got: {m}");
                }
                other => panic!("expected usage error, got {other:?}"),
            }
        }
        assert!(matches!(
            run(&[
                "retrieve",
                "--in",
                "x",
                "--out",
                "y",
                "--preprocess",
                "--lambda",
                "999"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "pipeline",
                "--in",
                "x",
                "--out",
                "y",
                "--preprocess",
                "--upsilon",
                "5"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn threads_flag_is_validated_capped_and_bit_identical() {
        // Zero threads is a usage error before any I/O happens.
        assert!(matches!(
            run(&["preprocess", "--in", "x", "--out", "y", "--threads", "0"]),
            Err(CliError::Usage(_))
        ));
        // An absurd request is capped at the machine's parallelism (with a
        // warning in the report) and still yields bit-identical output.
        let clean = tmp("thr-clean.fits");
        let bad = tmp("thr-bad.fits");
        let seq_out = tmp("thr-seq.fits");
        let par_out = tmp("thr-par.fits");
        run(&[
            "gen", "--out", &clean, "--width", "16", "--height", "12", "--frames", "16",
        ])
        .unwrap();
        run(&[
            "inject", "--in", &clean, "--out", &bad, "--gamma0", "0.01", "--seed", "3",
        ])
        .unwrap();
        let seq = run(&["preprocess", "--in", &bad, "--out", &seq_out]).unwrap();
        assert!(seq.contains("on 1 thread(s)"), "{seq}");
        let par = run(&[
            "preprocess",
            "--in",
            &bad,
            "--out",
            &par_out,
            "--threads",
            "65535",
        ])
        .unwrap();
        assert!(par.contains("warning: --threads 65535"), "{par}");
        let a = read_stack_file(&seq_out).unwrap();
        let b = read_stack_file(&par_out).unwrap();
        assert_eq!(a, b, "thread count must not change the output");
    }

    #[test]
    fn preprocess_trace_json_dumps_a_span_timeline() {
        let clean = tmp("trace-clean.fits");
        let bad = tmp("trace-bad.fits");
        let fixed = tmp("trace-fixed.fits");
        let trace = tmp("trace.json");
        run(&[
            "gen", "--out", &clean, "--width", "16", "--height", "12", "--frames", "16",
        ])
        .unwrap();
        run(&[
            "inject", "--in", &clean, "--out", &bad, "--gamma0", "0.01", "--seed", "7",
        ])
        .unwrap();
        let r = run(&[
            "preprocess",
            "--in",
            &bad,
            "--out",
            &fixed,
            "--trace-json",
            &trace,
        ])
        .unwrap();
        assert!(r.contains("trace:"), "{r}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"stage\":\"preprocess\""), "{json}");
        assert!(json.contains("\"stage\":\"tile\""), "{json}");
    }

    #[test]
    fn otis_gen_rejects_unknown_scene() {
        let out = tmp("never.fits");
        assert!(matches!(
            run(&["otis-gen", "--out", &out, "--scene", "nebula"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_errors_are_clear() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["frobnicate"]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["gen"]), Err(CliError::Usage(_)))); // --out missing
        assert!(matches!(
            run(&["inject", "--in", "x", "--out", "y"]),
            Err(CliError::Usage(_)) // --gamma0 missing
        ));
        let clean = tmp("c4.fits");
        run(&[
            "gen", "--out", &clean, "--width", "4", "--height", "4", "--frames", "4",
        ])
        .unwrap();
        assert!(matches!(
            run(&["tune", "--in", &clean, "--gamma0", "7"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn route_rejects_bad_invocations_up_front() {
        // No listen endpoint.
        assert!(matches!(
            run(&["route", "--backends", "127.0.0.1:7700"]),
            Err(CliError::Usage(_))
        ));
        // No backends.
        assert!(matches!(
            run(&["route", "--tcp", "127.0.0.1:0"]),
            Err(CliError::Usage(_))
        ));
        // Replication needs a second replica.
        assert!(matches!(
            run(&[
                "route",
                "--tcp",
                "127.0.0.1:0",
                "--backends",
                "127.0.0.1:7700",
                "--replicate"
            ]),
            Err(CliError::Usage(_))
        ));
        // Malformed backend spec (empty TCP address).
        assert!(matches!(
            run(&["route", "--tcp", "127.0.0.1:0", "--backends", "tcp://"]),
            Err(CliError::Usage(_))
        ));
        // Zero knobs are rejected before any socket is bound.
        for flag in ["--capacity", "--max-conns", "--vnodes", "--health-ms"] {
            assert!(
                matches!(
                    run(&[
                        "route",
                        "--tcp",
                        "127.0.0.1:0",
                        "--backends",
                        "127.0.0.1:7700",
                        flag,
                        "0"
                    ]),
                    Err(CliError::Usage(_))
                ),
                "{flag} 0 must be a usage error"
            );
        }
    }

    #[test]
    fn io_and_fits_errors_are_distinguished() {
        assert!(matches!(
            run(&["check", "--in", "/definitely/not/here.fits"]),
            Err(CliError::Io(_))
        ));
        let junk = tmp("junk.fits");
        std::fs::write(&junk, b"this is not FITS at all").unwrap();
        assert!(run(&["psi", "--ideal", &junk, "--observed", &junk]).is_err());
    }

    #[test]
    fn psi_rejects_mismatched_geometry() {
        let a = tmp("a.fits");
        let b = tmp("b.fits");
        run(&[
            "gen", "--out", &a, "--width", "8", "--height", "8", "--frames", "4",
        ])
        .unwrap();
        run(&[
            "gen", "--out", &b, "--width", "8", "--height", "8", "--frames", "6",
        ])
        .unwrap();
        assert!(matches!(
            run(&["psi", "--ideal", &a, "--observed", &b]),
            Err(CliError::Usage(_))
        ));
    }
}
