//! Retry/backoff policy and top-level supervision configuration.

use std::fmt;
use std::time::Duration;

/// Errors raised by the supervision layer itself (as opposed to the
/// pipeline errors it wraps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// A policy field is out of its documented range.
    InvalidPolicy(&'static str),
    /// A unit of work failed on every permitted attempt and degradation was
    /// either disabled or already exhausted.
    RetriesExhausted {
        /// Pipeline stage that gave up (e.g. `"ngst-tile"`).
        stage: &'static str,
        /// Unit of work within the stage (tile index, plane index, ...).
        unit: u64,
        /// Number of attempts consumed, including the first.
        attempts: u32,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::InvalidPolicy(why) => {
                write!(f, "invalid retry policy: {why}")
            }
            SupervisorError::RetriesExhausted {
                stage,
                unit,
                attempts,
            } => write!(
                f,
                "stage `{stage}` unit {unit} failed after {attempts} attempt(s) \
                 with no degradation rung left"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Per-stage execution policy: how long an attempt may run, how often it is
/// retried, and how retries are spaced.
///
/// Backoff for attempt `k` (the k-th *retry*, so `k >= 1`) is
/// `min(backoff_base * backoff_factor^(k-1), backoff_cap)`, stretched by a
/// jitter fraction drawn deterministically from `(seed, unit, attempt)` so a
/// run is reproducible regardless of worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of retries per unit *per ladder rung* (0 = fail on
    /// first error). A unit therefore runs at most `max_retries + 1` times
    /// before quarantine kicks in.
    pub max_retries: u32,
    /// Deadline for a single attempt; exceeding it cancels the attempt and
    /// requeues the unit.
    pub stage_timeout: Duration,
    /// Delay before the first retry.
    pub backoff_base: Duration,
    /// Multiplier applied to the delay on each further retry (`>= 1.0`).
    pub backoff_factor: f64,
    /// Upper bound on the computed delay.
    pub backoff_cap: Duration,
    /// Fraction of the delay randomised away (`0.0..=1.0`); the actual
    /// delay lies in `[d * (1 - jitter), d]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            stage_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_factor: 2.0,
            backoff_cap: Duration::from_millis(500),
            jitter: 0.5,
            seed: 0,
        }
    }
}

/// SplitMix64: a tiny, well-distributed mixer. Used only for jitter so the
/// policy needs no external RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Checks the policy's fields are within range.
    pub fn validate(&self) -> Result<(), SupervisorError> {
        if self.stage_timeout.is_zero() {
            return Err(SupervisorError::InvalidPolicy("stage_timeout must be > 0"));
        }
        if self.backoff_factor < 1.0 || self.backoff_factor.is_nan() {
            return Err(SupervisorError::InvalidPolicy(
                "backoff_factor must be >= 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(SupervisorError::InvalidPolicy("jitter must be in [0, 1]"));
        }
        Ok(())
    }

    /// Delay to wait before re-dispatching `unit` for retry `attempt`
    /// (`attempt >= 1`; attempt 0 is the initial dispatch and never waits).
    ///
    /// Deterministic in `(seed, unit, attempt)`: two runs of the same
    /// configuration produce identical schedules even if workers race.
    pub fn backoff(&self, unit: u64, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let raw = self.backoff_base.as_secs_f64() * exp;
        let capped = raw.min(self.backoff_cap.as_secs_f64());
        let h = splitmix64(
            self.seed ^ unit.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ (u64::from(attempt) << 48),
        );
        // Map the hash to [0, 1) and shave off up to `jitter` of the delay.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(capped * (1.0 - self.jitter * u))
    }
}

/// Full supervision configuration handed to a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supervision {
    /// Retry/deadline policy applied to each unit of work.
    pub policy: RetryPolicy,
    /// Whether a quarantined unit falls down the degradation ladder
    /// (`true`) or aborts the run (`false`).
    pub degrade: bool,
    /// Number of failed attempts at one ladder rung after which the unit is
    /// quarantined and re-dispatched one rung down. Capped at
    /// `policy.max_retries + 1` in effect, since a rung cannot consume more
    /// attempts than the policy allows.
    pub quarantine_after: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            policy: RetryPolicy::default(),
            degrade: true,
            quarantine_after: 2,
        }
    }
}

impl Supervision {
    /// Checks the configuration (policy ranges, quarantine threshold).
    pub fn validate(&self) -> Result<(), SupervisorError> {
        self.policy.validate()?;
        if self.quarantine_after == 0 {
            return Err(SupervisorError::InvalidPolicy(
                "quarantine_after must be >= 1",
            ));
        }
        Ok(())
    }

    /// Attempts a unit may consume at one ladder rung before moving down:
    /// the quarantine threshold, but never more than the retry budget.
    pub fn attempts_per_level(&self) -> u32 {
        self.quarantine_after.min(self.policy.max_retries + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        RetryPolicy::default().validate().unwrap();
        Supervision::default().validate().unwrap();
    }

    #[test]
    fn zero_timeout_rejected() {
        let p = RetryPolicy {
            stage_timeout: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            p.validate(),
            Err(SupervisorError::InvalidPolicy(_))
        ));
    }

    #[test]
    fn shrinking_factor_rejected() {
        let p = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RetryPolicy {
            backoff_factor: f64::NAN,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn jitter_out_of_range_rejected() {
        let p = RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0, 0), Duration::ZERO);
        assert_eq!(p.backoff(0, 1), Duration::from_millis(10));
        assert_eq!(p.backoff(0, 2), Duration::from_millis(20));
        assert_eq!(p.backoff(0, 3), Duration::from_millis(40));
        // Far past the cap.
        assert_eq!(p.backoff(0, 20), Duration::from_millis(500));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for unit in 0..8u64 {
            for attempt in 1..4u32 {
                let a = p.backoff(unit, attempt);
                let b = p.backoff(unit, attempt);
                assert_eq!(a, b, "same inputs must give the same delay");
                let nominal = Duration::from_millis(10 * (1 << (attempt - 1)));
                assert!(a <= nominal);
                assert!(a.as_secs_f64() >= nominal.as_secs_f64() * (1.0 - p.jitter) - 1e-9);
            }
        }
    }

    #[test]
    fn jitter_varies_across_units() {
        let p = RetryPolicy::default();
        let delays: Vec<_> = (0..16u64).map(|u| p.backoff(u, 1)).collect();
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(distinct.len() > 1, "jitter should separate units");
    }

    #[test]
    fn attempts_per_level_respects_budget() {
        let s = Supervision {
            quarantine_after: 5,
            policy: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..Supervision::default()
        };
        assert_eq!(s.attempts_per_level(), 2);
        let s = Supervision::default();
        assert_eq!(s.attempts_per_level(), 2);
    }
}
