//! The graceful-degradation ladder.
//!
//! A unit of work that keeps failing its preprocessing stage is not retried
//! forever: it is quarantined and reprocessed one rung down a ladder of
//! progressively simpler (and progressively less effective, but also less
//! demanding) algorithms, ending in a passthrough that at least delivers
//! the raw data flagged as unprotected. A run therefore always terminates
//! with output, annotated with the fault-tolerance level actually achieved.

use preflight_core::{
    AlgoNgst, BatchLayout, BitPixel, BitVoter, Kernel, MedianSmoother, Obs, SeriesPreprocessor,
    TuneDecision, ValuePixel, VoterScratch,
};
use serde::Serialize;
use std::fmt;

/// Fault-tolerance level achieved for a unit of work, ordered from the full
/// dynamic algorithm (best) down to unprotected passthrough (worst).
///
/// The derived `Ord` follows declaration order, so the level achieved by a
/// whole run is simply the `max` over its units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum FtLevel {
    /// Full dynamic preprocessing (`Algo_NGST`).
    AlgoNgst,
    /// Majority vote over the bit planes of the series.
    BitVoter,
    /// Median smoothing of the series.
    MedianSmoother,
    /// No preprocessing; raw data passed through and flagged.
    Passthrough,
}

impl FtLevel {
    /// Short stable name (used in reports and logs).
    pub fn name(&self) -> &'static str {
        match self {
            FtLevel::AlgoNgst => "algo-ngst",
            FtLevel::BitVoter => "bit-voter",
            FtLevel::MedianSmoother => "median-smoother",
            FtLevel::Passthrough => "passthrough",
        }
    }

    /// The next rung down, or `None` at the bottom.
    pub fn next(&self) -> Option<FtLevel> {
        match self {
            FtLevel::AlgoNgst => Some(FtLevel::BitVoter),
            FtLevel::BitVoter => Some(FtLevel::MedianSmoother),
            FtLevel::MedianSmoother => Some(FtLevel::Passthrough),
            FtLevel::Passthrough => None,
        }
    }
}

impl fmt::Display for FtLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete preprocessor for one ladder rung, usable wherever a
/// [`SeriesPreprocessor`] is expected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LadderStage {
    /// Full dynamic preprocessing with its configured parameters.
    Algo(AlgoNgst),
    /// Bit-plane majority voting.
    Voter(BitVoter),
    /// Median smoothing.
    Median(MedianSmoother),
    /// Identity: leaves the series untouched.
    Passthrough,
}

impl LadderStage {
    /// The fault-tolerance level this stage represents.
    pub fn level(&self) -> FtLevel {
        match self {
            LadderStage::Algo(_) => FtLevel::AlgoNgst,
            LadderStage::Voter(_) => FtLevel::BitVoter,
            LadderStage::Median(_) => FtLevel::MedianSmoother,
            LadderStage::Passthrough => FtLevel::Passthrough,
        }
    }
}

impl<T: BitPixel + ValuePixel> SeriesPreprocessor<T> for LadderStage {
    fn name(&self) -> &'static str {
        self.level().name()
    }

    fn preprocess(&self, series: &mut [T]) -> usize {
        match self {
            LadderStage::Algo(algo) => algo.preprocess(series),
            LadderStage::Voter(voter) => voter.preprocess(series),
            LadderStage::Median(median) => median.preprocess(series),
            LadderStage::Passthrough => 0,
        }
    }

    fn preprocess_with(&self, series: &mut [T], scratch: &mut VoterScratch<T>) -> usize {
        match self {
            // Only the dynamic algorithm has per-series buffers to recycle;
            // the simpler rungs fall back to their plain paths.
            LadderStage::Algo(algo) => algo.preprocess_with(series, scratch),
            other => other.preprocess(series),
        }
    }

    // The kernel-dispatching and batched entry points must forward to the
    // dynamic algorithm, not inherit the trait defaults: the defaults
    // ignore the kernel and loop per series, which silently downgraded
    // every ladder-driven run (the daemon, the pipeline) to the per-series
    // sweep path no matter which `--kernel` was asked for. The simpler
    // rungs have a single code path each, so for them the default
    // behaviour is reproduced explicitly.

    fn preprocess_exec(
        &self,
        series: &mut [T],
        scratch: &mut VoterScratch<T>,
        kernel: Kernel,
        obs: &Obs,
    ) -> usize {
        match self {
            LadderStage::Algo(algo) => algo.preprocess_exec(series, scratch, kernel, obs),
            other => other.preprocess_with(series, scratch),
        }
    }

    fn batch_layout(&self, kernel: Kernel) -> BatchLayout {
        match self {
            LadderStage::Algo(algo) => {
                <AlgoNgst as SeriesPreprocessor<T>>::batch_layout(algo, kernel)
            }
            _ => BatchLayout::SeriesMajor,
        }
    }

    fn preprocess_batch_exec(
        &self,
        buf: &mut [T],
        frames: usize,
        scratch: &mut VoterScratch<T>,
        kernel: Kernel,
        obs: &Obs,
    ) -> usize {
        match self {
            LadderStage::Algo(algo) => {
                algo.preprocess_batch_exec(buf, frames, scratch, kernel, obs)
            }
            other => {
                if frames == 0 {
                    return 0;
                }
                buf.chunks_exact_mut(frames)
                    .map(|series| other.preprocess_exec(series, scratch, kernel, obs))
                    .sum()
            }
        }
    }

    fn preprocess_batch_tuned(
        &self,
        buf: &mut [T],
        frames: usize,
        scratch: &mut VoterScratch<T>,
        kernel: Kernel,
        obs: &Obs,
        decision: Option<&TuneDecision>,
    ) -> usize {
        match self {
            LadderStage::Algo(algo) => {
                algo.preprocess_batch_tuned(buf, frames, scratch, kernel, obs, decision)
            }
            other => other.preprocess_batch_exec(buf, frames, scratch, kernel, obs),
        }
    }
}

/// The full degradation chain for one run, anchored at the configured
/// top-level algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationLadder {
    top: Option<AlgoNgst>,
}

impl DegradationLadder {
    /// Builds a ladder whose top rung is `algo` (or, when `None`, a ladder
    /// that starts directly at passthrough — matching a pipeline configured
    /// without preprocessing, which has nothing to degrade through).
    pub fn new(algo: Option<AlgoNgst>) -> Self {
        DegradationLadder { top: algo }
    }

    /// The level work starts at.
    pub fn entry_level(&self) -> FtLevel {
        if self.top.is_some() {
            FtLevel::AlgoNgst
        } else {
            FtLevel::Passthrough
        }
    }

    /// The preprocessor for `level`, or `None` if this ladder cannot
    /// provide it (an `AlgoNgst` rung with no configured algorithm).
    pub fn stage(&self, level: FtLevel) -> Option<LadderStage> {
        match level {
            FtLevel::AlgoNgst => self.top.map(LadderStage::Algo),
            FtLevel::BitVoter => Some(LadderStage::Voter(BitVoter::new())),
            FtLevel::MedianSmoother => Some(LadderStage::Median(MedianSmoother::new())),
            FtLevel::Passthrough => Some(LadderStage::Passthrough),
        }
    }

    /// The rung below `level`, or `None` at the bottom.
    pub fn step_down(&self, level: FtLevel) -> Option<(FtLevel, LadderStage)> {
        let next = level.next()?;
        let stage = self.stage(next)?;
        Some((next, stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preflight_core::{Sensitivity, Upsilon};

    fn algo() -> AlgoNgst {
        AlgoNgst::new(Upsilon::new(8).unwrap(), Sensitivity::new(50).unwrap())
    }

    #[test]
    fn level_order_matches_ladder() {
        assert!(FtLevel::AlgoNgst < FtLevel::BitVoter);
        assert!(FtLevel::BitVoter < FtLevel::MedianSmoother);
        assert!(FtLevel::MedianSmoother < FtLevel::Passthrough);
        // "Worst rung reached" is therefore a plain max.
        let worst = [
            FtLevel::AlgoNgst,
            FtLevel::MedianSmoother,
            FtLevel::BitVoter,
        ]
        .into_iter()
        .max()
        .unwrap();
        assert_eq!(worst, FtLevel::MedianSmoother);
    }

    #[test]
    fn walk_down_the_whole_ladder() {
        let ladder = DegradationLadder::new(Some(algo()));
        assert_eq!(ladder.entry_level(), FtLevel::AlgoNgst);
        let mut level = ladder.entry_level();
        let mut seen = vec![level];
        while let Some((next, stage)) = ladder.step_down(level) {
            assert_eq!(stage.level(), next);
            seen.push(next);
            level = next;
        }
        assert_eq!(
            seen,
            vec![
                FtLevel::AlgoNgst,
                FtLevel::BitVoter,
                FtLevel::MedianSmoother,
                FtLevel::Passthrough
            ]
        );
        assert!(ladder.step_down(FtLevel::Passthrough).is_none());
    }

    #[test]
    fn no_algorithm_means_passthrough_entry() {
        let ladder = DegradationLadder::new(None);
        assert_eq!(ladder.entry_level(), FtLevel::Passthrough);
        assert!(ladder.stage(FtLevel::AlgoNgst).is_none());
        assert!(ladder.stage(FtLevel::Passthrough).is_some());
    }

    #[test]
    fn passthrough_stage_is_identity() {
        let stage = LadderStage::Passthrough;
        let mut series: Vec<u16> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let orig = series.clone();
        assert_eq!(
            SeriesPreprocessor::<u16>::preprocess(&stage, &mut series),
            0
        );
        assert_eq!(series, orig);
    }

    #[test]
    fn degraded_stages_repair_a_spike() {
        // A flat series with one large outlier: every real rung should
        // touch it, passthrough should not.
        let make = || {
            let mut s: Vec<u16> = vec![100; 16];
            s[7] = 100 | 0x4000;
            s
        };
        for level in [FtLevel::BitVoter, FtLevel::MedianSmoother] {
            let ladder = DegradationLadder::new(None);
            let stage = ladder.stage(level).unwrap();
            let mut series = make();
            let changed = SeriesPreprocessor::<u16>::preprocess(&stage, &mut series);
            assert!(changed > 0, "{level} should repair the spike");
        }
    }
}
