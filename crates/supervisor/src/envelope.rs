//! Generic supervised execution envelope for single-unit stages.
//!
//! The NGST master/slave pipeline embeds the retry policy directly in its
//! master loop (deadlines and requeues interleave across many in-flight
//! tiles); stages that process one unit at a time — the OTIS ALFT harness,
//! one-shot preprocessing calls — use [`supervise`] instead.

use crate::events::{FailureKind, RecoveryKind, RecoveryLog};
use crate::policy::{RetryPolicy, SupervisorError};

/// Result of one attempt at a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome<T> {
    /// The attempt produced a result.
    Done(T),
    /// The attempt failed; the supervisor decides whether to retry.
    Failed(FailureKind),
}

/// Runs `attempt_fn` under `policy`: up to `max_retries + 1` attempts with
/// exponential backoff between them, every failure and retry recorded in
/// `log`.
///
/// `attempt_fn` receives the attempt number (0 = initial dispatch) so it can
/// vary behaviour per attempt (reseeding, switching replicas, ...). On
/// eventual success after at least one failure a `Recovered` event is
/// recorded. When every attempt fails the error carries the total attempt
/// count; no ladder logic is applied here — degradation is the caller's
/// decision (see [`crate::DegradationLadder`]).
pub fn supervise<T>(
    policy: &RetryPolicy,
    stage: &'static str,
    unit: u64,
    log: &mut RecoveryLog,
    mut attempt_fn: impl FnMut(u32) -> StageOutcome<T>,
) -> Result<T, SupervisorError> {
    policy.validate()?;
    let mut attempt = 0u32;
    loop {
        match attempt_fn(attempt) {
            StageOutcome::Done(value) => {
                if attempt > 0 {
                    log.record(stage, unit, attempt, RecoveryKind::Recovered);
                }
                return Ok(value);
            }
            StageOutcome::Failed(kind) => {
                log.record_failure(stage, unit, attempt, kind);
                if attempt >= policy.max_retries {
                    return Err(SupervisorError::RetriesExhausted {
                        stage,
                        unit,
                        attempts: attempt + 1,
                    });
                }
                log.record(stage, unit, attempt, RecoveryKind::Retry);
                let delay = policy.backoff(unit, attempt + 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(200),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn immediate_success_logs_nothing() {
        let mut log = RecoveryLog::new();
        let out = supervise(&fast_policy(2), "s", 7, &mut log, |_| StageOutcome::Done(1)).unwrap();
        assert_eq!(out, 1);
        assert!(log.is_empty());
    }

    #[test]
    fn recovers_after_failures() {
        let mut log = RecoveryLog::new();
        let out = supervise(&fast_policy(3), "s", 0, &mut log, |attempt| {
            if attempt < 2 {
                StageOutcome::Failed(FailureKind::Timeout)
            } else {
                StageOutcome::Done("ok")
            }
        })
        .unwrap();
        assert_eq!(out, "ok");
        assert_eq!(log.timeouts(), 2);
        assert_eq!(log.retries(), 2);
        assert_eq!(log.recoveries(), 1);
    }

    #[test]
    fn exhaustion_reports_attempt_count() {
        let mut log = RecoveryLog::new();
        let err = supervise::<()>(&fast_policy(1), "s", 5, &mut log, |_| {
            StageOutcome::Failed(FailureKind::Crash)
        })
        .unwrap_err();
        assert_eq!(
            err,
            SupervisorError::RetriesExhausted {
                stage: "s",
                unit: 5,
                attempts: 2
            }
        );
        assert_eq!(log.crashes(), 2);
        assert_eq!(log.retries(), 1);
        assert_eq!(log.recoveries(), 0);
    }

    #[test]
    fn zero_retries_fails_fast() {
        let mut log = RecoveryLog::new();
        let mut calls = 0;
        let err = supervise::<()>(&fast_policy(0), "s", 0, &mut log, |_| {
            calls += 1;
            StageOutcome::Failed(FailureKind::InvalidOutput)
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(
            err,
            SupervisorError::RetriesExhausted { attempts: 1, .. }
        ));
    }

    #[test]
    fn invalid_policy_rejected_before_first_attempt() {
        let mut log = RecoveryLog::new();
        let bad = RetryPolicy {
            jitter: 2.0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let err = supervise::<()>(&bad, "s", 0, &mut log, |_| {
            calls += 1;
            StageOutcome::Done(())
        })
        .unwrap_err();
        assert_eq!(calls, 0);
        assert!(matches!(err, SupervisorError::InvalidPolicy(_)));
    }
}
