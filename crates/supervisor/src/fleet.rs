//! Fleet-scoped fault tolerance: the PR 1 quarantine ladder generalized
//! from *units of work* to *members of a serving fleet*.
//!
//! The per-run supervisor quarantines a failing tile and reprocesses it one
//! rung down the [`crate::FtLevel`] ladder. A router in front of N daemons
//! faces the same shape one level up: a *backend* that keeps failing (or
//! diverging from its replica) must be quarantined, and when the fleet as a
//! whole is overloaded, service must degrade gracefully instead of
//! collapsing. Two pieces model that:
//!
//! - [`UnitHealth`] — a per-backend state machine (`Up → Suspect →
//!   Quarantined`, back to `Up` on a successful probe) whose quarantine
//!   windows reuse [`RetryPolicy`]'s deterministic exponential backoff, so
//!   a flapping backend is probed less and less often;
//! - [`FleetLevel`] — the fleet-wide service ladder `FullService →
//!   ShedHeavy → EssentialOnly → Refuse`, the analogue of [`crate::FtLevel`]
//!   for admission: as utilization climbs, progressively cheaper work is
//!   still admitted while Λ-expensive work is shed first.

use crate::policy::RetryPolicy;
use std::fmt;
use std::time::{Duration, Instant};

/// Fleet-wide service level, ordered from full service (best) down to
/// refusing all work (worst). The analogue of [`crate::FtLevel`] for the
/// admission plane: derived `Ord` follows declaration order, so the level
/// reached over a reporting window is a plain `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FleetLevel {
    /// All work admitted.
    FullService,
    /// Work costing more than the heavy threshold is shed.
    ShedHeavy,
    /// Only work at or below a quarter of the heavy threshold is admitted.
    EssentialOnly,
    /// No work admitted; every submit is bounced.
    Refuse,
}

impl FleetLevel {
    /// Short stable name (used in metric labels and logs).
    pub fn name(&self) -> &'static str {
        match self {
            FleetLevel::FullService => "full-service",
            FleetLevel::ShedHeavy => "shed-heavy",
            FleetLevel::EssentialOnly => "essential-only",
            FleetLevel::Refuse => "refuse",
        }
    }

    /// The next rung down, or `None` at the bottom.
    pub fn next(&self) -> Option<FleetLevel> {
        match self {
            FleetLevel::FullService => Some(FleetLevel::ShedHeavy),
            FleetLevel::ShedHeavy => Some(FleetLevel::EssentialOnly),
            FleetLevel::EssentialOnly => Some(FleetLevel::Refuse),
            FleetLevel::Refuse => None,
        }
    }

    /// The service level for a front end with `in_flight` of `capacity`
    /// admission slots occupied: full service below half load, shedding
    /// heavy work from half load, essential-only from three quarters, and
    /// refusal only when the gate is entirely full.
    pub fn for_load(in_flight: usize, capacity: usize) -> FleetLevel {
        if capacity == 0 || in_flight >= capacity {
            FleetLevel::Refuse
        } else if in_flight * 4 >= capacity * 3 {
            FleetLevel::EssentialOnly
        } else if in_flight * 2 >= capacity {
            FleetLevel::ShedHeavy
        } else {
            FleetLevel::FullService
        }
    }

    /// Whether work of `cost` (see [`work_cost`]) is admitted at this
    /// level, given the configured `heavy` cost threshold.
    pub fn admits(&self, cost: u64, heavy: u64) -> bool {
        match self {
            FleetLevel::FullService => true,
            FleetLevel::ShedHeavy => cost <= heavy,
            FleetLevel::EssentialOnly => cost <= heavy / 4,
            FleetLevel::Refuse => false,
        }
    }
}

impl fmt::Display for FleetLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission cost of a request: samples to process, scaled by the window
/// depth Υ (each sample is voted over Υ frames) and the sensitivity Λ
/// (higher Λ means more windows qualify for repair). The absolute value is
/// unitless; only its order against the configured heavy threshold matters.
pub fn work_cost(samples: u64, lambda: u8, upsilon: u8) -> u64 {
    let cost = u128::from(samples) * u128::from(upsilon.max(1)) * (100 + u128::from(lambda)) / 100;
    u64::try_from(cost).unwrap_or(u64::MAX)
}

/// Fleet-level supervision policy: when a member is quarantined and how its
/// quarantine windows grow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Consecutive failures after which a member is quarantined.
    pub quarantine_after: u32,
    /// Backoff schedule for quarantine windows: the n-th quarantine of a
    /// member lasts `backoff(member, n)`. Reuses [`RetryPolicy`] so the
    /// fleet and the engine share one backoff implementation.
    pub backoff: RetryPolicy,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            quarantine_after: 3,
            backoff: RetryPolicy {
                max_retries: u32::MAX,
                backoff_base: Duration::from_millis(250),
                backoff_factor: 2.0,
                backoff_cap: Duration::from_secs(15),
                jitter: 0.25,
                ..RetryPolicy::default()
            },
        }
    }
}

/// Why a fleet member's health changed (carried in the router's logs and
/// mapped onto metric labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetFault {
    /// The member's transport failed or it answered with garbage.
    Transport,
    /// A health probe timed out or was refused.
    Probe,
    /// The member's reply diverged bit-for-bit from its replica's.
    Divergence,
}

impl FleetFault {
    /// Short stable name (used in metric labels and logs).
    pub fn name(&self) -> &'static str {
        match self {
            FleetFault::Transport => "transport",
            FleetFault::Probe => "probe",
            FleetFault::Divergence => "divergence",
        }
    }
}

/// Health status of one fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStatus {
    /// Serving normally.
    Up,
    /// Failing but not yet over the quarantine threshold.
    Suspect,
    /// Quarantined until the stored deadline; probed again afterwards.
    Quarantined,
}

/// Per-member health state machine.
///
/// Routers hold one `UnitHealth` per backend: record every forward or
/// probe outcome, and consult [`UnitHealth::is_available`] when sharding.
/// Consecutive failures past [`FleetPolicy::quarantine_after`] quarantine
/// the member for a backoff window that doubles on every re-quarantine; a
/// bit-identity divergence quarantines immediately — disagreeing with a
/// replica is the strongest evidence of corruption the fleet can observe.
#[derive(Debug, Clone)]
pub struct UnitHealth {
    status: UnitStatus,
    consecutive_failures: u32,
    quarantines: u32,
    until: Option<Instant>,
}

impl Default for UnitHealth {
    fn default() -> Self {
        UnitHealth {
            status: UnitStatus::Up,
            consecutive_failures: 0,
            quarantines: 0,
            until: None,
        }
    }
}

impl UnitHealth {
    /// A fresh, healthy member.
    pub fn new() -> Self {
        UnitHealth::default()
    }

    /// Current status.
    pub fn status(&self) -> UnitStatus {
        self.status
    }

    /// Total quarantines entered over the member's lifetime.
    pub fn quarantines(&self) -> u32 {
        self.quarantines
    }

    /// Whether the member may be routed to at `now`: up, merely suspect,
    /// or quarantined with an expired window (probation — the next outcome
    /// decides whether it returns to service or goes back in).
    pub fn is_available(&self, now: Instant) -> bool {
        match self.status {
            UnitStatus::Up | UnitStatus::Suspect => true,
            UnitStatus::Quarantined => self.until.is_none_or(|t| now >= t),
        }
    }

    /// Records a successful forward or probe: the member returns to `Up`
    /// and its failure streak resets (quarantine *count* is remembered so
    /// a flapping member's windows keep growing).
    pub fn record_success(&mut self) {
        self.status = UnitStatus::Up;
        self.consecutive_failures = 0;
        self.until = None;
    }

    /// Records a failed forward or probe of member `unit`. Returns the
    /// quarantine window if this failure tipped the member over the
    /// threshold (or re-quarantined it from probation), `None` while it is
    /// merely suspect.
    pub fn record_failure(
        &mut self,
        unit: u64,
        policy: &FleetPolicy,
        now: Instant,
    ) -> Option<Duration> {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.status == UnitStatus::Quarantined
            || self.consecutive_failures >= policy.quarantine_after
        {
            Some(self.enter_quarantine(unit, policy, now))
        } else {
            self.status = UnitStatus::Suspect;
            None
        }
    }

    /// Quarantines the member immediately, bypassing the failure threshold.
    /// Used when a reply diverges bit-for-bit from its replica's. Returns
    /// the quarantine window.
    pub fn quarantine_now(&mut self, unit: u64, policy: &FleetPolicy, now: Instant) -> Duration {
        self.consecutive_failures = self.consecutive_failures.max(policy.quarantine_after);
        self.enter_quarantine(unit, policy, now)
    }

    fn enter_quarantine(&mut self, unit: u64, policy: &FleetPolicy, now: Instant) -> Duration {
        self.quarantines = self.quarantines.saturating_add(1);
        let window = policy.backoff.backoff(unit, self.quarantines);
        self.status = UnitStatus::Quarantined;
        self.until = Some(now + window);
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_walk() {
        assert!(FleetLevel::FullService < FleetLevel::ShedHeavy);
        assert!(FleetLevel::ShedHeavy < FleetLevel::EssentialOnly);
        assert!(FleetLevel::EssentialOnly < FleetLevel::Refuse);
        let mut level = FleetLevel::FullService;
        let mut seen = vec![level];
        while let Some(next) = level.next() {
            seen.push(next);
            level = next;
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(level, FleetLevel::Refuse);
        assert!(level.next().is_none());
    }

    #[test]
    fn load_maps_to_levels() {
        assert_eq!(FleetLevel::for_load(0, 8), FleetLevel::FullService);
        assert_eq!(FleetLevel::for_load(3, 8), FleetLevel::FullService);
        assert_eq!(FleetLevel::for_load(4, 8), FleetLevel::ShedHeavy);
        assert_eq!(FleetLevel::for_load(6, 8), FleetLevel::EssentialOnly);
        assert_eq!(FleetLevel::for_load(8, 8), FleetLevel::Refuse);
        assert_eq!(FleetLevel::for_load(0, 0), FleetLevel::Refuse);
    }

    #[test]
    fn shedding_prefers_cheap_work() {
        let heavy = 1000;
        assert!(FleetLevel::FullService.admits(u64::MAX, heavy));
        assert!(FleetLevel::ShedHeavy.admits(1000, heavy));
        assert!(!FleetLevel::ShedHeavy.admits(1001, heavy));
        assert!(FleetLevel::EssentialOnly.admits(250, heavy));
        assert!(!FleetLevel::EssentialOnly.admits(251, heavy));
        assert!(!FleetLevel::Refuse.admits(0, heavy));
    }

    #[test]
    fn cost_scales_with_lambda_and_upsilon() {
        // More samples, deeper windows, higher sensitivity: all cost more.
        assert!(work_cost(2048, 80, 4) > work_cost(1024, 80, 4));
        assert!(work_cost(1024, 80, 8) > work_cost(1024, 80, 4));
        assert!(work_cost(1024, 100, 4) > work_cost(1024, 0, 4));
        // Λ scales by at most 2x, never overflows.
        assert_eq!(work_cost(100, 100, 1), 200);
        assert_eq!(work_cost(u64::MAX, 100, 16), u64::MAX);
    }

    #[test]
    fn failures_walk_up_to_quarantine() {
        let policy = FleetPolicy::default();
        let mut h = UnitHealth::new();
        let t0 = Instant::now();
        assert!(h.is_available(t0));
        assert!(h.record_failure(0, &policy, t0).is_none());
        assert_eq!(h.status(), UnitStatus::Suspect);
        assert!(h.is_available(t0), "suspect members still serve");
        assert!(h.record_failure(0, &policy, t0).is_none());
        let window = h
            .record_failure(0, &policy, t0)
            .expect("third failure quarantines");
        assert!(window > Duration::ZERO);
        assert_eq!(h.status(), UnitStatus::Quarantined);
        assert!(!h.is_available(t0));
        // The window expires: the member is probed again (probation).
        assert!(h.is_available(t0 + window + Duration::from_millis(1)));
    }

    #[test]
    fn success_resets_but_windows_keep_growing() {
        let policy = FleetPolicy {
            backoff: RetryPolicy {
                jitter: 0.0,
                ..FleetPolicy::default().backoff
            },
            ..FleetPolicy::default()
        };
        let mut h = UnitHealth::new();
        let t0 = Instant::now();
        let w1 = h.quarantine_now(7, &policy, t0);
        h.record_success();
        assert_eq!(h.status(), UnitStatus::Up);
        assert!(h.is_available(t0));
        let w2 = h.quarantine_now(7, &policy, t0);
        assert!(w2 > w1, "re-quarantine windows grow: {w1:?} then {w2:?}");
    }

    #[test]
    fn probation_failure_requarantines_immediately() {
        let policy = FleetPolicy::default();
        let mut h = UnitHealth::new();
        let t0 = Instant::now();
        h.quarantine_now(3, &policy, t0);
        let later = t0 + Duration::from_secs(3600);
        assert!(h.is_available(later), "window long past: on probation");
        // One failed probe is enough to go straight back in.
        assert!(h.record_failure(3, &policy, later).is_some());
        assert!(!h.is_available(later));
    }

    #[test]
    fn divergence_quarantines_without_threshold() {
        let policy = FleetPolicy::default();
        let mut h = UnitHealth::new();
        let t0 = Instant::now();
        assert_eq!(h.status(), UnitStatus::Up);
        h.quarantine_now(1, &policy, t0);
        assert_eq!(h.status(), UnitStatus::Quarantined);
        assert_eq!(h.quarantines(), 1);
    }
}
