//! Structured recovery events and the per-run recovery log.

use serde::Serialize;
use std::fmt;

use crate::ladder::FtLevel;

/// How a single attempt failed. The supervision layer maps each failure to
/// the matching [`RecoveryKind`] when recording it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FailureKind {
    /// The attempt exceeded its stage deadline.
    Timeout,
    /// The worker executing the attempt died.
    Crash,
    /// The result message arrived but failed its integrity check.
    CorruptMessage,
    /// The result was well-formed but semantically invalid (e.g. failed an
    /// acceptance filter).
    InvalidOutput,
}

/// One recovery action taken (or failure observed) by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RecoveryKind {
    /// An attempt missed its deadline and was cancelled.
    Timeout,
    /// A worker died mid-attempt.
    WorkerCrash,
    /// An inter-stage message failed its integrity check and was dropped.
    CorruptMessage,
    /// A result failed semantic acceptance checks and was rejected.
    InvalidOutput,
    /// The unit was requeued for another attempt (after backoff).
    Retry,
    /// The unit exhausted its attempts at one ladder rung and was moved to
    /// the quarantine queue.
    Quarantined,
    /// A quarantined unit was re-dispatched one rung down the ladder.
    Degraded {
        /// Rung the unit failed at.
        from: FtLevel,
        /// Rung it will be retried at.
        to: FtLevel,
    },
    /// The unit failed at the bottom of the ladder; its output is a flagged
    /// placeholder rather than real data.
    Abandoned,
    /// The unit eventually succeeded after at least one failure.
    Recovered,
}

impl RecoveryKind {
    /// Short machine-friendly label (stable across formatting changes).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryKind::Timeout => "timeout",
            RecoveryKind::WorkerCrash => "worker-crash",
            RecoveryKind::CorruptMessage => "corrupt-message",
            RecoveryKind::InvalidOutput => "invalid-output",
            RecoveryKind::Retry => "retry",
            RecoveryKind::Quarantined => "quarantined",
            RecoveryKind::Degraded { .. } => "degraded",
            RecoveryKind::Abandoned => "abandoned",
            RecoveryKind::Recovered => "recovered",
        }
    }
}

impl From<FailureKind> for RecoveryKind {
    fn from(f: FailureKind) -> Self {
        match f {
            FailureKind::Timeout => RecoveryKind::Timeout,
            FailureKind::Crash => RecoveryKind::WorkerCrash,
            FailureKind::CorruptMessage => RecoveryKind::CorruptMessage,
            FailureKind::InvalidOutput => RecoveryKind::InvalidOutput,
        }
    }
}

/// A single structured recovery event, as surfaced in end-of-run reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecoveryEvent {
    /// Pipeline stage the event belongs to (e.g. `"ngst-tile"`, `"alft"`).
    pub stage: &'static str,
    /// Unit of work within the stage (tile index, plane index, ...).
    pub unit: u64,
    /// Attempt number the event refers to (0 = initial dispatch).
    pub attempt: u32,
    /// What happened.
    pub kind: RecoveryKind,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] unit {} attempt {}: ",
            self.stage, self.unit, self.attempt
        )?;
        match self.kind {
            RecoveryKind::Degraded { from, to } => {
                write!(f, "degraded {from} -> {to}")
            }
            kind => write!(f, "{}", kind.label()),
        }
    }
}

/// Ordered log of every recovery event in a run.
///
/// Events are appended in the order the supervisor observes them; with a
/// deterministic chaos plan the log itself is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, stage: &'static str, unit: u64, attempt: u32, kind: RecoveryKind) {
        self.events.push(RecoveryEvent {
            stage,
            unit,
            attempt,
            kind,
        });
    }

    /// Appends a failure observation, mapped to its recovery kind.
    pub fn record_failure(
        &mut self,
        stage: &'static str,
        unit: u64,
        attempt: u32,
        failure: FailureKind,
    ) {
        self.record(stage, unit, attempt, failure.into());
    }

    /// Moves all events of `other` to the end of this log.
    pub fn merge(&mut self, mut other: RecoveryLog) {
        self.events.append(&mut other.events);
    }

    /// All events, in observation order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no recovery action was needed — a clean run.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events whose kind matches `label` (see
    /// [`RecoveryKind::label`]).
    pub fn count(&self, label: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    }

    /// Attempts cancelled on deadline.
    pub fn timeouts(&self) -> usize {
        self.count("timeout")
    }

    /// Worker deaths observed.
    pub fn crashes(&self) -> usize {
        self.count("worker-crash")
    }

    /// Inter-stage messages dropped for failing integrity checks.
    pub fn corruptions(&self) -> usize {
        self.count("corrupt-message")
    }

    /// Results rejected by semantic acceptance checks.
    pub fn invalid_outputs(&self) -> usize {
        self.count("invalid-output")
    }

    /// Units requeued for another attempt.
    pub fn retries(&self) -> usize {
        self.count("retry")
    }

    /// Units quarantined after exhausting a ladder rung.
    pub fn quarantines(&self) -> usize {
        self.count("quarantined")
    }

    /// Ladder steps taken.
    pub fn degradations(&self) -> usize {
        self.count("degraded")
    }

    /// Units abandoned at the bottom of the ladder.
    pub fn abandonments(&self) -> usize {
        self.count("abandoned")
    }

    /// Units that succeeded after at least one failure.
    pub fn recoveries(&self) -> usize {
        self.count("recovered")
    }

    /// One-line summary for end-of-run reports.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "no recovery events".to_string();
        }
        format!(
            "{} event(s): {} timeout(s), {} crash(es), {} corrupt, {} invalid, \
             {} retried, {} quarantined, {} degraded, {} abandoned, {} recovered",
            self.len(),
            self.timeouts(),
            self.crashes(),
            self.corruptions(),
            self.invalid_outputs(),
            self.retries(),
            self.quarantines(),
            self.degradations(),
            self.abandonments(),
            self.recoveries(),
        )
    }
}

impl fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for event in &self.events {
            writeln!(f, "  {event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_summary() {
        let log = RecoveryLog::new();
        assert!(log.is_empty());
        assert_eq!(log.summary(), "no recovery events");
    }

    #[test]
    fn counts_by_kind() {
        let mut log = RecoveryLog::new();
        log.record_failure("s", 0, 0, FailureKind::Timeout);
        log.record("s", 0, 0, RecoveryKind::Retry);
        log.record_failure("s", 1, 0, FailureKind::Crash);
        log.record("s", 1, 0, RecoveryKind::Retry);
        log.record("s", 0, 1, RecoveryKind::Recovered);
        log.record(
            "s",
            2,
            1,
            RecoveryKind::Degraded {
                from: FtLevel::AlgoNgst,
                to: FtLevel::BitVoter,
            },
        );
        assert_eq!(log.len(), 6);
        assert_eq!(log.timeouts(), 1);
        assert_eq!(log.crashes(), 1);
        assert_eq!(log.retries(), 2);
        assert_eq!(log.recoveries(), 1);
        assert_eq!(log.degradations(), 1);
        assert_eq!(log.abandonments(), 0);
    }

    #[test]
    fn merge_preserves_order() {
        let mut a = RecoveryLog::new();
        a.record("s", 0, 0, RecoveryKind::Retry);
        let mut b = RecoveryLog::new();
        b.record("s", 1, 0, RecoveryKind::Abandoned);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].unit, 1);
    }

    #[test]
    fn display_mentions_ladder_step() {
        let mut log = RecoveryLog::new();
        log.record(
            "ngst-tile",
            3,
            2,
            RecoveryKind::Degraded {
                from: FtLevel::AlgoNgst,
                to: FtLevel::BitVoter,
            },
        );
        let text = log.to_string();
        assert!(text.contains("unit 3"));
        assert!(text.contains("degraded"));
    }
}
