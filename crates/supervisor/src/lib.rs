//! # preflight-supervisor
//!
//! The compute-plane counterpart of the data-plane fault tolerance this
//! workspace reproduces. The paper's preprocessing repairs bit-flips in the
//! *input*; this crate keeps the *pipeline itself* alive when its stages
//! hang, crash, or emit garbage — the software-implemented fault tolerance
//! layer that satellite literature (Fuchs et al., Leon et al.) identifies as
//! the other half of surviving on COTS hardware in orbit.
//!
//! Three pieces compose into a policy-driven execution envelope:
//!
//! - [`RetryPolicy`] — per-stage deadlines, bounded retries, exponential
//!   backoff with deterministic (seeded) jitter;
//! - [`RecoveryLog`] — every timeout, crash, retry, quarantine and
//!   degradation as a structured [`RecoveryEvent`] surfaced in end-of-run
//!   reports;
//! - [`DegradationLadder`] — the graceful-degradation chain
//!   `Algo_NGST → BitVoter → MedianSmoother → passthrough`: a unit that
//!   keeps failing its preprocessing stage is quarantined and reprocessed
//!   one rung down, so a run always produces output annotated with the
//!   fault-tolerance level actually achieved ([`FtLevel`]).
//!
//! The [`supervise`] envelope wraps single-unit stages (the OTIS ALFT
//! harness uses it); the NGST master/slave pipeline embeds the same policy
//! in its master loop where per-tile deadlines and requeues interleave.
//!
//! # Example
//!
//! ```
//! use preflight_supervisor::{supervise, FailureKind, RecoveryLog, RetryPolicy, StageOutcome};
//!
//! let policy = RetryPolicy::default();
//! let mut log = RecoveryLog::new();
//! let mut tries = 0;
//! let out = supervise(&policy, "flaky-stage", 0, &mut log, |attempt| {
//!     tries += 1;
//!     if attempt == 0 {
//!         StageOutcome::Failed(FailureKind::Crash)
//!     } else {
//!         StageOutcome::Done(42)
//!     }
//! })
//! .unwrap();
//! assert_eq!(out, 42);
//! assert_eq!(tries, 2);
//! assert!(log.retries() == 1 && log.recoveries() == 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod envelope;
pub mod events;
pub mod fleet;
pub mod ladder;
pub mod policy;

pub use envelope::{supervise, StageOutcome};
pub use events::{FailureKind, RecoveryEvent, RecoveryKind, RecoveryLog};
pub use fleet::{work_cost, FleetFault, FleetLevel, FleetPolicy, UnitHealth, UnitStatus};
pub use ladder::{DegradationLadder, FtLevel, LadderStage};
pub use policy::{RetryPolicy, Supervision, SupervisorError};
