//! Shape checks for every reproduced figure, at a tiny scale.
//!
//! Absolute Ψ values depend on the synthetic substrate; what must hold —
//! and what the paper's conclusions rest on — are the *orderings*: who
//! wins, where the margins are large, and where behavior degrades. These
//! assertions are deliberately aggregate (averaged over grid prefixes) so
//! they are stable at smoke-test sample counts.

use preflight_bench::report::Scale;
use preflight_bench::{self as bench, Figure};

fn tiny() -> Scale {
    Scale {
        trials: 8,
        series_len: 64,
        otis_size: 24,
        stack_edge: 8,
    }
}

/// Mean of the first `k` points of a labelled series.
fn head_mean(fig: &Figure, label: &str, k: usize) -> f64 {
    let s = fig
        .series(label)
        .unwrap_or_else(|| panic!("series {label} in {}", fig.id));
    let k = k.min(s.ys.len());
    s.ys[..k].iter().sum::<f64>() / k as f64
}

#[test]
fn fig2_algo_beats_baselines_in_practical_range() {
    let fig = bench::fig2(tiny());
    // Over the practical range (first 4 grid points, Γ₀ ≤ 1 %), the best
    // sensitivity beats median smoothing, which beats raw data.
    let nopre = head_mean(&fig, "NoPreprocessing", 4);
    let median = head_mean(&fig, "MedianSmoothing", 4);
    let best_algo = [20u32, 50, 80, 95]
        .iter()
        .map(|l| head_mean(&fig, &format!("Algo_NGST(L={l})"), 4))
        .fold(f64::INFINITY, f64::min);
    assert!(
        median < nopre,
        "median {median} !< no-preprocessing {nopre}"
    );
    assert!(
        best_algo < median / 2.0,
        "Algo_NGST {best_algo} !≪ median {median}"
    );
    // The paper's headline factor: an order of magnitude or more.
    assert!(
        nopre / best_algo > 10.0,
        "improvement factor {}",
        nopre / best_algo
    );
}

#[test]
fn fig3_lambda_zero_is_nearly_free() {
    let fig = bench::fig3(tiny());
    let algo = fig.series("Algo_NGST").unwrap();
    let at_zero = algo.ys[0];
    let at_eighty = algo.ys[8];
    assert!(
        at_zero < at_eighty / 5.0,
        "Λ=0 must be almost free ({at_zero} vs {at_eighty} µs)"
    );
}

#[test]
fn fig4_correlated_faults_algo_wins_and_smoothers_tie() {
    let fig = bench::fig4(tiny());
    let nopre = head_mean(&fig, "NoPreprocessing", 3);
    let median = head_mean(&fig, "MedianSmoothing", 3);
    let bitvote = head_mean(&fig, "BitVoting", 3);
    let algo = head_mean(&fig, "Algo_NGST(opt L)", 3);
    assert!(
        algo < median && algo < bitvote,
        "algo {algo} vs median {median}, bitvote {bitvote}"
    );
    assert!(algo < nopre / 5.0);
    // "both of which show quite similar performance"
    let ratio = median.max(bitvote) / median.min(bitvote);
    assert!(
        ratio < 3.0,
        "smoothers should be comparable (ratio {ratio})"
    );
}

#[test]
fn fig5_gamut_algo_dominates_and_relative_error_falls_with_intensity() {
    let fig = bench::fig5(tiny());
    let nopre = fig.series("NoPreprocessing").unwrap();
    assert!(
        nopre.ys.first().unwrap() > nopre.ys.last().unwrap(),
        "relative error must fall as mean intensity rises"
    );
    let algo = head_mean(&fig, "Algo_NGST(opt L)", 9);
    let median = head_mean(&fig, "MedianSmoothing", 9);
    assert!(
        algo < median,
        "algo {algo} !< median {median} across the gamut"
    );
}

#[test]
fn fig6_upsilon_crossovers() {
    let figs = bench::fig6(tiny());
    // σ = 0 (first figure): more voters help — Υ=4/6 must beat Υ=2 on the
    // low-Γ half of the grid.
    let calm = &figs[0];
    let u2 = head_mean(calm, "Upsilon=2", 4);
    let u4 = head_mean(calm, "Upsilon=4", 4);
    let u6 = head_mean(calm, "Upsilon=6", 4);
    assert!(
        u4 <= u2 && u6 <= u2,
        "σ=0: Υ=4 ({u4}) / Υ=6 ({u6}) must beat Υ=2 ({u2})"
    );
    // Every σ: preprocessing beats raw data on the practical half.
    for fig in &figs[..3] {
        let nopre = head_mean(fig, "NoPreprocessing", 4);
        let best = ["Upsilon=2", "Upsilon=4", "Upsilon=6"]
            .iter()
            .map(|l| head_mean(fig, l, 4))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < nopre,
            "{}: best Υ {best} !< no-preprocessing {nopre}",
            fig.id
        );
    }
}

#[test]
fn fig7_otis_ordering_matches_paper() {
    for fig in bench::fig7(tiny()) {
        let n = fig.xs.len();
        let nopre = head_mean(&fig, "NoPreprocessing", n);
        let median = head_mean(&fig, "MedianSmoothing", n);
        let bitvote = head_mean(&fig, "BitVoting", n);
        let algo = head_mean(&fig, "Algo_OTIS", n);
        assert!(
            algo < nopre / 2.0,
            "{}: algo {algo} vs nopre {nopre}",
            fig.id
        );
        assert!(algo < median, "{}: algo {algo} !< median {median}", fig.id);
        assert!(
            algo < bitvote,
            "{}: algo {algo} !< bitvote {bitvote}",
            fig.id
        );
        // "The Majority Bit Voting Algorithm … appears to be overall better
        // than … Median Smoothing" — on the upper half of the Γ grid.
        let med_hi: f64 = fig.series("MedianSmoothing").unwrap().ys[n / 2..]
            .iter()
            .sum::<f64>();
        let bit_hi: f64 = fig.series("BitVoting").unwrap().ys[n / 2..]
            .iter()
            .sum::<f64>();
        assert!(
            bit_hi < med_hi,
            "{}: bit-voting must win at high Γ₀",
            fig.id
        );
    }
}

#[test]
fn fig9_preprocessing_saturates_at_high_gamma_ini() {
    for fig in bench::fig9(tiny()) {
        let nopre = fig.series("NoPreprocessing").unwrap();
        let algo = fig.series("Algo_OTIS").unwrap();
        // Strong win at the practical end…
        assert!(
            algo.ys[0] < nopre.ys[0] / 2.0,
            "{}: algo must win at Γ_ini = 0.05",
            fig.id
        );
        // …but past the breakdown region the benefit collapses (the paper's
        // deterioration regime): improvement factor below 1.15 at the top.
        let last = algo.ys.last().unwrap();
        let last_nopre = nopre.ys.last().unwrap();
        assert!(
            last_nopre / last < 1.15,
            "{}: breakdown missing (factor {})",
            fig.id,
            last_nopre / last
        );
    }
}

#[test]
fn improvement_factors_match_the_practical_range_claim() {
    let fig = bench::improvement_factors(tiny());
    let algo = fig.series("Algo_NGST (best L)").unwrap();
    // Order-of-magnitude improvement in the practical low-Γ₀ range.
    let head = algo.ys[..3].iter().sum::<f64>() / 3.0;
    assert!(head > 10.0, "mean low-Γ₀ factor {head}");
    // And the factor decays toward 1 at the extreme end.
    assert!(*algo.ys.last().unwrap() < head);
}

#[test]
fn median_beats_mean_smoothing() {
    let fig = bench::mean_vs_median(tiny());
    let n = fig.xs.len();
    let median = head_mean(&fig, "MedianSmoothing", n);
    let mean = head_mean(&fig, "MeanSmoothing", n);
    assert!(
        median < mean / 1.5,
        "§4.1: median ({median}) must clearly beat mean ({mean})"
    );
}

#[test]
fn motivation_table_reproduces_the_section1_argument() {
    let fig = bench::motivation(tiny());
    let at = |label: &str, class: usize| fig.series(label).unwrap().ys[class - 1];

    // Input bit-flips: ABFT and NVP are *exactly* as bad as no protection —
    // the checksums certify the garbage and every version agrees on it.
    let unprotected = at("Unprotected", 1);
    assert!(unprotected > 0.0);
    assert_eq!(
        at("ABFT", 1),
        unprotected,
        "ABFT must be blind to input faults"
    );
    assert_eq!(
        at("NVP(3)", 1),
        unprotected,
        "NVP must be blind to input faults"
    );
    assert!(
        at("Preprocessing", 1) < unprotected / 3.0,
        "preprocessing must cover the input-fault class"
    );

    // Computation faults: the classical schemes win, preprocessing cannot.
    assert!(at("Unprotected", 2) > 0.0);
    assert!(at("ABFT", 2) < at("Unprotected", 2) / 100.0);
    assert!(at("NVP(3)", 2) < at("Unprotected", 2) / 100.0);
    assert_eq!(
        at("Preprocessing", 2),
        at("Unprotected", 2),
        "preprocessing runs before the computation and never sees this class"
    );
}

#[test]
fn scaling_experiment_is_sane() {
    // Speedup itself is host-dependent (a single-core CI box shows ~1.0
    // across the board), so assert only the invariants: positive times,
    // speedup normalized to 1 at one worker, and no pathological collapse
    // from threading overhead.
    let fig = bench::scaling(tiny());
    let time = fig.series("wall time (ms)").unwrap();
    let speedup = fig.series("speedup").unwrap();
    assert!(time.ys.iter().all(|&t| t > 0.0));
    assert!((speedup.ys[0] - 1.0).abs() < 1e-12);
    assert!(
        speedup.ys.iter().all(|&s| s > 0.5),
        "worker threading must not halve throughput: {:?}",
        speedup.ys
    );
}

#[test]
fn recovery_supervision_preserves_the_product_under_process_faults() {
    let fig = bench::fig_recovery(tiny());
    let supervised = fig.series("supervised (retry + degrade)").unwrap();
    let unsupervised = fig.series("unsupervised").unwrap();
    // No injected faults → both runtimes reproduce the reference exactly.
    assert!(supervised.ys[0].abs() < 1e-9, "{:?}", supervised.ys);
    assert!(unsupervised.ys[0].abs() < 1e-9, "{:?}", unsupervised.ys);
    // Through p = 0.2 the supervisor retries (and, rarely, degrades) its
    // way to a usable product.
    assert!(
        supervised.ys[..5].iter().all(|&y| y < 0.5),
        "supervised error must stay usable through p=0.2: {:?}",
        supervised.ys
    );
    // Without supervision the product is lost (scored as the all-zero
    // estimate, Ψ = 1) or silently corrupted (flipped f32 exponent bits
    // make Ψ astronomical) at the heavy end.
    let raw_last = *unsupervised.ys.last().unwrap();
    assert!(
        raw_last >= 0.5,
        "unsupervised runs must mostly lose the product at the heavy end: {raw_last}"
    );
    // At a brutal 40 % per-attempt fault rate the ladder may settle whole
    // tiles on the median-smoother rung, whose Ψ against the pristine
    // preprocessed reference can exceed the all-zero score of a *lost*
    // product — so compare envelopes, not point values: the supervised
    // error stays within the degradation ladder's bounded envelope, never
    // the unbounded corruption of an unsupervised run.
    let sup_last = *supervised.ys.last().unwrap();
    assert!(
        sup_last.is_finite() && sup_last < 10.0,
        "supervised error must stay within the ladder envelope: {sup_last}"
    );
    let sup_total: f64 = supervised.ys.iter().sum();
    let raw_total: f64 = unsupervised.ys.iter().sum();
    assert!(
        sup_total < raw_total,
        "supervision must win on aggregate: {sup_total} vs {raw_total}"
    );
}

#[test]
fn compression_claim_clean_beats_damaged() {
    let fig = bench::compression_claim(tiny());
    let clean = fig.series("clean").unwrap().ys[0];
    let cr = fig.series("with CR hits").unwrap().ys[0];
    let flipped = fig.series("bit-flipped").unwrap();
    assert!(cr < clean, "CR hits must cost compression ratio");
    assert!(
        flipped.ys.last().unwrap() < &clean,
        "bit-flips must cost compression ratio"
    );
    // Degradation grows with Γ₀.
    assert!(flipped.ys.last().unwrap() < &flipped.ys[0]);
}

#[test]
fn interleave_dispersal_defeats_bursts() {
    let fig = bench::interleave_claim(tiny());
    let contiguous = fig.series("Algo_NGST series-contiguous").unwrap();
    let dispersed = fig.series("Algo_NGST dispersed").unwrap();
    // At single-word bursts the layouts are equivalent…
    assert!(contiguous.ys[0] < dispersed.ys[0] * 3.0 + 1e-9);
    // …at long bursts the dispersed placement wins decisively.
    let c_last = contiguous.ys.last().unwrap();
    let d_last = dispersed.ys.last().unwrap();
    assert!(
        *d_last < c_last / 3.0,
        "dispersed {d_last} must beat contiguous {c_last} under long bursts"
    );
}

#[test]
fn spatial_beats_spectral_locality() {
    let fig = bench::spatial_vs_spectral(tiny());
    let n = fig.xs.len();
    let spatial = head_mean(&fig, "Algo_OTIS spatial", n);
    let spectral = head_mean(&fig, "Algo_OTIS spectral", n);
    assert!(
        spatial < spectral,
        "spatial {spatial} !< spectral {spectral}"
    );
}

#[test]
fn ablation_grt_never_hurts_much_and_usually_helps() {
    let fig = bench::ablation_windows(tiny());
    let n = fig.xs.len();
    let on = head_mean(&fig, "GRT on", n);
    let off = head_mean(&fig, "GRT off", n);
    assert!(on <= off * 1.05, "GRT on {on} should not lose to off {off}");
}

#[test]
fn ablation_second_pass_helps_at_high_gamma() {
    let fig = bench::ablation_passes(tiny());
    let one = fig.series("1 pass").unwrap();
    let two = fig.series("2 passes").unwrap();
    let n = fig.xs.len();
    // Across the heavy-corruption tail, the second pass must win on
    // aggregate (threshold re-estimation from partially cleaned data).
    let tail_one: f64 = one.ys[n - 3..].iter().sum();
    let tail_two: f64 = two.ys[n - 3..].iter().sum();
    assert!(
        tail_two < tail_one,
        "2 passes ({tail_two}) must beat 1 pass ({tail_one}) at high Γ₀"
    );
    // And never meaningfully hurt at low Γ₀. Both errors are ~1e-3 here,
    // so the relative guard needs an absolute floor to not flag noise.
    let head_one: f64 = one.ys[..3].iter().sum();
    let head_two: f64 = two.ys[..3].iter().sum();
    assert!(
        head_two <= head_one * 1.2 + 2e-3,
        "{head_two} vs {head_one}"
    );
}

#[test]
fn ablation_dynamic_windows_win_on_calm_data() {
    let fig = bench::ablation_static(tiny());
    let dynamic = fig.series("dynamic windows").unwrap();
    let narrow = fig.series("static A=2,C=10").unwrap();
    // At σ = 0 the dynamic delimiters adapt and must beat the frozen ones.
    assert!(
        dynamic.ys[0] < narrow.ys[0],
        "dynamic {} !< static {} at σ=0",
        dynamic.ys[0],
        narrow.ys[0]
    );
}

#[test]
fn tables_and_csv_render_for_every_figure() {
    let scale = Scale {
        trials: 2,
        series_len: 32,
        otis_size: 16,
        stack_edge: 8,
    };
    let mut figs = vec![
        bench::fig2(scale),
        bench::fig4(scale),
        bench::fig5(scale),
        bench::compression_claim(scale),
        bench::interleave_claim(scale),
    ];
    figs.extend(bench::fig6(scale));
    figs.extend(bench::fig7(scale));
    for fig in figs {
        let table = fig.to_table();
        assert!(table.contains(&fig.id));
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), fig.xs.len() + 1, "{} CSV rows", fig.id);
    }
}
