//! Multi-shard daemon tests: whatever the event-loop shard count, served
//! pixels must stay byte-identical to running the [`Preprocessor`]
//! directly — sharding may move accepts and reads across threads, but
//! never change the science product. Covers the `SO_REUSEPORT` TCP path
//! (kernel-balanced accepts) and the Unix round-robin handoff path
//! (shard 0 accepts, peers serve).

use preflight_core::{AlgoNgst, ImageStack, Preprocessor, Sensitivity, Upsilon};
use preflight_serve::wire::FramePayload;
use preflight_serve::{ClientBuilder, ServerBuilder, SubmitOptions};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

fn noisy_stack(width: usize, height: usize, frames: usize, seed: u64) -> ImageStack<u16> {
    let mut state = seed;
    let data: Vec<u16> = (0..width * height * frames)
        .map(|i| {
            let base = 2000 + ((i % (width * height)) as u16 % 700);
            let r = lcg(&mut state);
            if r.is_multiple_of(97) {
                base | (1 << (8 + (r % 7) as u16))
            } else {
                base + (r % 9) as u16
            }
        })
        .collect();
    ImageStack::from_vec(width, height, frames, data).expect("stack dims")
}

fn direct_repair(stack: &ImageStack<u16>, lambda: u32, upsilon: usize) -> ImageStack<u16> {
    let algo = AlgoNgst::new(
        Upsilon::new(upsilon).expect("valid upsilon"),
        Sensitivity::new(lambda).expect("valid lambda"),
    );
    let mut direct = stack.clone();
    Preprocessor::new(&algo).threads(2).run(&mut direct);
    direct
}

const CLIENTS: u64 = 4;
const REQUESTS: u64 = 3;

/// Drives `CLIENTS` concurrent connections (enough that a multi-shard
/// daemon spreads them across loops) and checks every response against
/// the direct library oracle.
fn assert_shard_count_serves_identically(shards: usize, addr: std::net::SocketAddr) {
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        workers.push(std::thread::spawn(move || {
            let mut client = ClientBuilder::new().tcp(addr).connect().expect("connect");
            for r in 0..REQUESTS {
                let seed = ((shards as u64) << 48) | (c << 16) | r;
                let stack = noisy_stack(16, 12, 8, seed);
                let want = direct_repair(&stack, 80, 4);
                let response = client
                    .submit(
                        FramePayload::U16(stack),
                        &SubmitOptions {
                            stream_id: c,
                            lambda: 80,
                            upsilon: 4,
                            eos: true,
                        },
                    )
                    .expect("submit round trip");
                let FramePayload::U16(served) = response.payload else {
                    panic!("response changed pixel type");
                };
                assert_eq!(
                    served.as_slice(),
                    want.as_slice(),
                    "{shards}-shard daemon must serve byte-identical repairs"
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread");
    }
}

fn tcp_round_trip_with_shards(shards: usize) {
    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .shards(shards)
        .serve()
        .expect("daemon start");
    let addr = handle.tcp_addr().expect("bound tcp address");
    assert_shard_count_serves_identically(shards, addr);
    let summary = handle.drain();
    assert_eq!(summary.completed, CLIENTS * REQUESTS);
    assert_eq!(handle.open_connections(), 0);
}

#[test]
fn one_shard_serves_byte_identical_repairs() {
    tcp_round_trip_with_shards(1);
}

#[test]
fn two_shards_serve_byte_identical_repairs() {
    tcp_round_trip_with_shards(2);
}

#[test]
fn four_shards_serve_byte_identical_repairs() {
    tcp_round_trip_with_shards(4);
}

#[cfg(unix)]
#[test]
fn unix_handoff_spreads_connections_and_stays_identical() {
    let sock = std::env::temp_dir().join(format!("preflightd-shards-{}.sock", std::process::id()));
    let handle = ServerBuilder::new()
        .unix(&sock)
        .shards(4)
        .serve()
        .expect("daemon start");

    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let sock = sock.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ClientBuilder::new().unix(&sock).connect().expect("connect");
            for r in 0..REQUESTS {
                let seed = 0xD15C ^ (c << 16) ^ r;
                let stack = noisy_stack(16, 12, 8, seed);
                let want = direct_repair(&stack, 80, 4);
                let response = client
                    .submit(
                        FramePayload::U16(stack),
                        &SubmitOptions {
                            stream_id: c,
                            lambda: 80,
                            upsilon: 4,
                            eos: true,
                        },
                    )
                    .expect("submit round trip");
                let FramePayload::U16(served) = response.payload else {
                    panic!("response changed pixel type");
                };
                assert_eq!(served.as_slice(), want.as_slice());
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread");
    }

    let summary = handle.drain();
    assert_eq!(summary.completed, CLIENTS * REQUESTS);
    assert!(!sock.exists(), "drain must remove the socket file");
}

#[test]
fn wire_drain_acks_with_multiple_shards() {
    // The drain latch is shared across shards: a wire-level Drain sent to
    // whichever shard owns this connection must still be acknowledged once
    // every shard's in-flight work is done.
    let handle = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .shards(4)
        .serve()
        .expect("daemon start");
    let addr = handle.tcp_addr().expect("bound tcp address");

    let mut client = ClientBuilder::new().tcp(addr).connect().expect("connect");
    let stack = noisy_stack(16, 12, 8, 0xD12A_1215);
    let response = client
        .submit(
            FramePayload::U16(stack),
            &SubmitOptions {
                stream_id: 1,
                lambda: 80,
                upsilon: 4,
                eos: true,
            },
        )
        .expect("submit");
    assert_eq!(response.payload.frames(), 8);

    let summary = client.drain().expect("drain ack");
    assert_eq!(summary.completed, 1);
    assert!(handle.drain_acked());
    handle.drain();
}
