//! Backpressure acceptance test: the daemon's bounded queue must reject
//! overload with an explicit `Busy` — never buffer without bound, never
//! deadlock, and never drop work it already admitted.

use preflight_core::ImageStack;
use preflight_serve::batcher::BatchConfig;
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::ServerBuilder;
use preflight_serve::{ClientBuilder, ClientError, SubmitOptions};
use std::time::Duration;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

fn small_stack(seed: u64) -> ImageStack<u16> {
    let mut state = seed;
    let data: Vec<u16> = (0..8 * 8 * 4)
        .map(|_| 1000 + (lcg(&mut state) % 50) as u16)
        .collect();
    ImageStack::from_vec(8, 8, 4, data).unwrap()
}

#[test]
fn full_queue_rejects_with_busy_and_recovers_after_drain() {
    const CAPACITY: usize = 2;
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        capacity: CAPACITY,
        // A deep target and a far-off deadline park non-eos submissions in
        // the batcher, so admitted requests keep their queue slots.
        batch: BatchConfig {
            target_frames: 64,
            max_delay: Duration::from_secs(60),
            ..BatchConfig::default()
        },
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    let addr = handle.tcp_addr().expect("bound tcp address");

    // Fill every slot with open-ended (eos=false) submissions. One
    // connection guarantees the server sees them in order.
    let mut client = ClientBuilder::new().tcp(addr).connect().expect("connect");
    let opts = SubmitOptions {
        stream_id: 7,
        eos: false,
        ..SubmitOptions::default()
    };
    let mut admitted_ids = Vec::new();
    for seed in 0..CAPACITY as u64 {
        admitted_ids.push(
            client
                .send_submit(FramePayload::U16(small_stack(seed)), &opts)
                .expect("send while slots free"),
        );
    }

    // Slot CAPACITY+1 must be rejected with Busy carrying the queue shape
    // — not buffered, not blocked on.
    let over_id = client
        .send_submit(FramePayload::U16(small_stack(99)), &opts)
        .expect("send over capacity");
    match client.recv_response() {
        Err(ClientError::Busy(busy)) => {
            assert_eq!(busy.request_id, over_id);
            assert_eq!(busy.capacity as usize, CAPACITY);
            assert_eq!(busy.in_flight as usize, CAPACITY);
        }
        other => panic!("expected Busy for the over-capacity submit, got {other:?}"),
    }
    assert_eq!(handle.in_flight(), CAPACITY);

    // Drain from a second connection: parked batches must flush, and every
    // admitted request must still produce its response on the first
    // connection — drain finishes work, it never discards it.
    let mut drainer = ClientBuilder::new()
        .tcp(addr)
        .connect()
        .expect("connect drainer");
    let summary = drainer.drain().expect("drain ack");
    assert_eq!(summary.completed as usize, CAPACITY);
    assert_eq!(summary.rejected, 1);

    let mut seen: Vec<u64> = Vec::new();
    for _ in 0..CAPACITY {
        let response = client.recv_response().expect("flushed response");
        let FramePayload::U16(stack) = &response.payload else {
            panic!("response changed pixel type");
        };
        assert_eq!(stack.frames(), 4);
        seen.push(response.request_id);
    }
    seen.sort_unstable();
    assert_eq!(
        seen, admitted_ids,
        "every admitted request must be answered"
    );

    // All slots freed: the queue recovered.
    assert_eq!(handle.in_flight(), 0);

    let stats = handle.stats();
    assert_eq!(stats.rejected_busy.get(), 1, "exactly one Busy rejection");
    handle.drain();
}

#[test]
fn connection_cap_rejects_with_busy_and_recovers() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        max_connections: 1,
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    let addr = handle.tcp_addr().expect("bound tcp address");

    let mut first = ClientBuilder::new()
        .tcp(addr)
        .connect()
        .expect("connect under cap");
    assert_eq!(first.ping(1).expect("served connection answers"), 1);

    // The cap is hit: the next connection must be told Busy and closed,
    // not left occupying a reader thread and body buffer.
    let mut second = ClientBuilder::new()
        .tcp(addr)
        .connect()
        .expect("tcp connect itself succeeds");
    match second.recv_response() {
        Err(ClientError::Busy(busy)) => assert_eq!(busy.capacity, 1),
        other => panic!("expected Busy on the over-cap connection, got {other:?}"),
    }
    assert_eq!(
        handle.stats().rejected_connections.get(),
        1,
        "the rejected connection must be counted"
    );

    // Closing the served connection frees the slot (the reader sees EOF at
    // its next poll), so a fresh connection is served again.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = ClientBuilder::new().tcp(addr).connect().expect("reconnect");
        match retry.ping(2) {
            Ok(2) => break,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("slot never freed after disconnect: {other:?}"),
        }
    }
    handle.drain();
}
