//! End-to-end daemon test: frames submitted over a real socket must come
//! back byte-identical to running the [`Preprocessor`] directly on the
//! same stack — the serving layer may add batching, queueing, and
//! telemetry, but never change the science product.

use preflight_core::{AlgoNgst, ImageStack, Preprocessor, Sensitivity, Upsilon};
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::ServerBuilder;
use preflight_serve::{Client, ClientBuilder, SubmitOptions};
use preflight_supervisor::FtLevel;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state
}

fn noisy_stack(width: usize, height: usize, frames: usize, seed: u64) -> ImageStack<u16> {
    let mut state = seed;
    // A slowly-varying scene with occasional upset-like outlier samples,
    // so the preprocessor has real repairs to make.
    let data: Vec<u16> = (0..width * height * frames)
        .map(|i| {
            let base = 2000 + ((i % (width * height)) as u16 % 700);
            let r = lcg(&mut state);
            if r.is_multiple_of(97) {
                base | (1 << (8 + (r % 7) as u16))
            } else {
                base + (r % 9) as u16
            }
        })
        .collect();
    ImageStack::from_vec(width, height, frames, data).expect("stack dims")
}

fn expected_repair(stack: &ImageStack<u16>, lambda: u32, upsilon: usize) -> ImageStack<u16> {
    let algo = AlgoNgst::new(
        Upsilon::new(upsilon).expect("valid upsilon"),
        Sensitivity::new(lambda).expect("valid lambda"),
    );
    let mut direct = stack.clone();
    Preprocessor::new(&algo).threads(2).run(&mut direct);
    direct
}

fn assert_served_matches_direct(client: &mut Client, seed: u64) {
    let (width, height, frames) = (16, 12, 8);
    let stack = noisy_stack(width, height, frames, seed);
    let direct = expected_repair(&stack, 80, 4);

    let response = client
        .submit(
            FramePayload::U16(stack.clone()),
            &SubmitOptions {
                stream_id: seed,
                lambda: 80,
                upsilon: 4,
                eos: true,
            },
        )
        .expect("submit round trip");

    let FramePayload::U16(served) = response.payload else {
        panic!("response changed pixel type");
    };
    assert_eq!(
        served.as_slice(),
        direct.as_slice(),
        "served repair must be byte-identical to the direct library path"
    );
    assert_eq!(response.stats.rung, FtLevel::AlgoNgst);
    assert_eq!(response.stats.batch_requests, 1);
    assert_eq!(response.stats.batch_frames, frames as u32);
    let changed: u64 = stack
        .as_slice()
        .iter()
        .zip(direct.as_slice())
        .filter(|(a, b)| a != b)
        .count() as u64;
    assert_eq!(response.stats.samples_changed, changed);
    assert!(
        changed > 0,
        "test scene should contain at least one repairable upset"
    );
}

#[test]
fn tcp_round_trip_is_byte_identical_to_direct_preprocessing() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    let addr = handle.tcp_addr().expect("bound tcp address");

    let mut client = ClientBuilder::new().tcp(addr).connect().expect("connect");
    assert_eq!(client.ping(0xC0FFEE).expect("ping"), 0xC0FFEE);
    for seed in [0xA5A5_0001u64, 0xA5A5_0002, 0xA5A5_0003] {
        assert_served_matches_direct(&mut client, seed);
    }
    drop(client);

    let summary = handle.drain();
    assert_eq!(summary.completed, 3);
    assert_eq!(handle.in_flight(), 0);
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip_is_byte_identical_and_drains_cleanly() {
    let sock = std::env::temp_dir().join(format!("preflightd-e2e-{}.sock", std::process::id()));
    let handle = ServerBuilder::from(ServerConfig {
        unix: Some(sock.clone()),
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");

    let mut client = ClientBuilder::new().unix(&sock).connect().expect("connect");
    assert_served_matches_direct(&mut client, 0xFEED_0001);

    // Wire-level drain from the client side: the ack must report the
    // completed request and the daemon must refuse work afterwards.
    let summary = client.drain().expect("drain ack");
    assert_eq!(summary.completed, 1);
    assert!(handle.drain_acked());

    let refused = client.submit(
        FramePayload::U16(noisy_stack(8, 8, 4, 1)),
        &SubmitOptions::default(),
    );
    assert!(refused.is_err(), "submits after drain must be refused");

    handle.drain();
    assert!(!sock.exists(), "drain must remove the socket file");
}

#[test]
fn u32_frames_survive_the_wire_and_get_repaired() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    let mut client = ClientBuilder::new()
        .tcp(handle.tcp_addr().unwrap())
        .connect()
        .expect("connect");

    let mut state = 0xB16B_00B5u64;
    let (width, height, frames) = (8, 8, 4);
    let data: Vec<u32> = (0..width * height * frames)
        .map(|_| 40_000 + (lcg(&mut state) % 65) as u32)
        .collect();
    let stack = ImageStack::from_vec(width, height, frames, data).unwrap();

    let algo = AlgoNgst::new(Upsilon::new(4).unwrap(), Sensitivity::new(80).unwrap());
    let mut direct = stack.clone();
    Preprocessor::new(&algo).threads(2).run(&mut direct);

    let response = client
        .submit(FramePayload::U32(stack), &SubmitOptions::default())
        .expect("u32 submit");
    let FramePayload::U32(served) = response.payload else {
        panic!("response changed pixel type");
    };
    assert_eq!(served.as_slice(), direct.as_slice());

    handle.drain();
}
