//! End-to-end OTIS chain: thermal scene → Planck radiance cube → bit-flips
//! in the input → (preprocessing) → temperature/emissivity retrieval →
//! ALFT logic grid. Asserts the paper's §7 narrative: input preprocessing
//! rescues exactly the case where ALFT fails catastrophically.

use preflight::core::{Cube, Image};
use preflight::prelude::*;
use preflight_datagen::planck::max_radiance;

const SIZE: usize = 32;

fn inputs(seed: u64) -> (Image<f32>, Cube<f32>) {
    let mut rng = seeded_rng(seed);
    let temp = temperature_scene(OtisScene::Blob, SIZE, SIZE, &mut rng);
    let emis = emissivity_scene(SIZE, SIZE, &mut rng);
    let cube = radiance_cube(&temp, &emis, &DEFAULT_BANDS);
    (temp, cube)
}

fn mean_temp_error(truth: &Image<f32>, got: &Image<f32>) -> f64 {
    truth
        .as_slice()
        .iter()
        .zip(got.as_slice())
        .map(|(a, b)| {
            if b.is_finite() {
                f64::from((a - b).abs()).min(200.0)
            } else {
                200.0
            }
        })
        .sum::<f64>()
        / truth.len() as f64
}

fn otis_algo() -> AlgoOtis {
    AlgoOtis::new(
        Sensitivity::new(80).unwrap(),
        PhysicalBounds::radiance(max_radiance(400.0, &DEFAULT_BANDS) * 1.2),
    )
}

#[test]
fn preprocessing_restores_retrieval_accuracy() {
    let (truth, cube) = inputs(11);
    let mut corrupted = cube.clone();
    Uncorrelated::new(0.01)
        .unwrap()
        .inject_cube(&mut corrupted, &mut seeded_rng(12));

    let retrieval = Retrieval::default();
    let clean_err = mean_temp_error(&truth, &retrieval.run(&cube, &DEFAULT_BANDS).temperature);
    let bad_err = mean_temp_error(
        &truth,
        &retrieval.run(&corrupted, &DEFAULT_BANDS).temperature,
    );

    let mut repaired = corrupted.clone();
    let fixed = otis_algo().preprocess_cube(&mut repaired);
    assert!(fixed > 0, "preprocessing must act on corrupted input");
    let repaired_err = mean_temp_error(
        &truth,
        &retrieval.run(&repaired, &DEFAULT_BANDS).temperature,
    );

    assert!(clean_err < 0.5, "clean retrieval baseline {clean_err} K");
    assert!(
        bad_err > 5.0 * clean_err.max(0.05),
        "corruption must visibly hurt ({bad_err} K)"
    );
    assert!(
        repaired_err < bad_err / 3.0,
        "preprocessing must recover most accuracy ({repaired_err} vs {bad_err} K)"
    );
}

#[test]
fn alft_alone_fails_on_corrupted_input_but_preprocessing_saves_it() {
    let (_, cube) = inputs(21);
    let mut corrupted = cube.clone();
    Uncorrelated::new(0.01)
        .unwrap()
        .inject_cube(&mut corrupted, &mut seeded_rng(22));

    let harness = AlftHarness::default();
    // ALFT by itself: both primary and secondary read the same corrupted
    // cube — the catastrophic case.
    let (_, outcome) = harness
        .execute(
            &corrupted,
            &DEFAULT_BANDS,
            ProcessFault::None,
            &mut seeded_rng(23),
        )
        .expect("alft executes");
    assert_eq!(
        outcome,
        AlftOutcome::BothFailed,
        "corrupted input must defeat plain ALFT"
    );

    // With input preprocessing in front, the same harness succeeds.
    let mut repaired = corrupted.clone();
    otis_algo().preprocess_cube(&mut repaired);
    let (product, outcome) = harness
        .execute(
            &repaired,
            &DEFAULT_BANDS,
            ProcessFault::None,
            &mut seeded_rng(24),
        )
        .expect("alft executes");
    assert_eq!(
        outcome,
        AlftOutcome::UsedPrimary,
        "preprocessed input must pass the filter"
    );
    assert!(product.is_some());
}

#[test]
fn alft_still_handles_its_own_fault_classes() {
    let (_, cube) = inputs(31);
    let harness = AlftHarness::default();
    let (p, o) = harness
        .execute(
            &cube,
            &DEFAULT_BANDS,
            ProcessFault::Crash,
            &mut seeded_rng(32),
        )
        .expect("alft executes");
    assert_eq!(o, AlftOutcome::UsedSecondary);
    assert!(p.is_some());

    let (_, o) = harness
        .execute(
            &cube,
            &DEFAULT_BANDS,
            ProcessFault::SilentCorruption(0.05),
            &mut seeded_rng(33),
        )
        .expect("alft executes");
    assert_eq!(o, AlftOutcome::UsedSecondary);
}

#[test]
fn natural_hot_spot_survives_preprocessing_but_point_fault_does_not() {
    // The §7.2 guarantee at system level: a genuine thermal anomaly (a
    // multi-pixel geyser) must survive preprocessing while an isolated
    // fault of similar magnitude is removed.
    let mut rng = seeded_rng(41);
    let mut temp = temperature_scene(OtisScene::Blob, SIZE, SIZE, &mut rng);
    for y in 10..13 {
        for x in 10..13 {
            temp.set(x, y, 330.0); // geyser
        }
    }
    let emis = emissivity_scene(SIZE, SIZE, &mut rng);
    let mut cube = radiance_cube(&temp, &emis, &DEFAULT_BANDS);
    // A point fault elsewhere of comparable magnitude:
    let fake = cube.get(24, 24, 2) * 2.5;
    cube.set(24, 24, 2, fake);

    let before_geyser = cube.get(11, 11, 2);
    otis_algo().preprocess_cube(&mut cube);
    assert_eq!(
        cube.get(11, 11, 2),
        before_geyser,
        "geyser center must be retained"
    );
    assert!(
        (cube.get(24, 24, 2) - fake).abs() > f32::EPSILON,
        "the isolated fault must be repaired"
    );
}
