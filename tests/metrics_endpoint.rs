//! Integration test for the observability surface of `preflightd`: the
//! Prometheus `/metrics` scrape listener and the `Stats` wire message
//! must expose the same registry, counters must be monotone across
//! scrapes, and every histogram's `+Inf` bucket must equal its count.

use preflight_core::ImageStack;
use preflight_obs::Obs;
use preflight_serve::server::ServerConfig;
use preflight_serve::wire::FramePayload;
use preflight_serve::ServerBuilder;
use preflight_serve::{ClientBuilder, SubmitOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn noisy_stack(width: usize, height: usize, frames: usize, seed: u64) -> ImageStack<u16> {
    let mut state = seed;
    let data: Vec<u16> = (0..width * height * frames)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let base = 2000 + ((i % (width * height)) as u16 % 700);
            if state.is_multiple_of(97) {
                base | (1 << (8 + (state % 7) as u16))
            } else {
                base + (state % 9) as u16
            }
        })
        .collect();
    ImageStack::from_vec(width, height, frames, data).expect("stack dims")
}

/// One blocking HTTP/1.0-style scrape of `path`; returns (status line, body).
fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect metrics listener");
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// Parses `preflight_<family>{labels} <value>` sample lines.
fn sample_value(body: &str, series: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (name, value) = l.rsplit_once(' ')?;
        (name == series).then(|| value.parse().expect("numeric sample"))
    })
}

#[test]
fn metrics_endpoint_serves_the_serve_pipeline_registry() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        obs: Obs::new(),
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    let addr = handle.tcp_addr().expect("bound tcp address");
    let metrics = handle.metrics_addr().expect("bound metrics address");

    let mut client = ClientBuilder::new().tcp(addr).connect().expect("connect");
    let mut submit = |seed: u64| {
        client
            .submit(
                FramePayload::U16(noisy_stack(16, 12, 8, seed)),
                &SubmitOptions::default(),
            )
            .expect("submit round trip")
    };
    submit(0xBEEF_0001);

    let (status, first) = scrape(metrics, "/metrics");
    assert!(status.contains("200"), "scrape status: {status}");

    // Every acceptance-mandated family is present.
    for family in [
        "preflight_serve_requests_admitted_total",
        "preflight_serve_requests_completed_total",
        "preflight_serve_requests_rejected_busy_total",
        "preflight_serve_samples_repaired_total",
        "preflight_serve_bits_repaired_total",
        "preflight_serve_retries_total",
        "preflight_serve_batches_total",
        "preflight_serve_pool_hits_total",
        "preflight_serve_pool_misses_total",
        "preflight_serve_shard_accepts_total",
        "preflight_serve_shard_wakeups_total",
    ] {
        assert!(
            first.contains(&format!("# TYPE {family} counter")),
            "missing family {family} in:\n{first}"
        );
    }
    // Every serve stage reports a latency histogram.
    for stage in ["admission", "queue", "batch", "engine", "write"] {
        assert!(
            first.contains(&format!(
                "preflight_stage_seconds_count{{stage=\"{stage}\"}}"
            )),
            "missing stage histogram {stage} in:\n{first}"
        );
    }
    // The preprocessing engine's own counters flow through the shared
    // registry too (the daemon attaches its Obs to the Preprocessor).
    assert!(
        sample_value(&first, "preflight_preprocess_runs_total").unwrap_or(0.0) >= 1.0,
        "engine runs must be counted:\n{first}"
    );

    // The data plane's shard and pool counters are live: the accepted
    // connection landed on *some* shard (summed across the shard label),
    // every shard woke at least once, and the first request's buffers
    // came from the allocator (pool misses).
    let label_sum = |body: &str, family: &str| -> f64 {
        body.lines()
            .filter(|l| l.starts_with(&format!("{family}{{")))
            .filter_map(|l| l.rsplit_once(' ')?.1.parse::<f64>().ok())
            .sum()
    };
    assert!(
        label_sum(&first, "preflight_serve_shard_accepts_total") >= 1.0,
        "the client connection must be counted against a shard:\n{first}"
    );
    assert!(
        label_sum(&first, "preflight_serve_shard_wakeups_total") >= 1.0,
        "shard poll loops must count wakeups:\n{first}"
    );
    assert!(
        sample_value(&first, "preflight_serve_pool_misses_total").unwrap_or(0.0) >= 1.0,
        "a cold pool must record misses:\n{first}"
    );

    // Histogram invariant: the +Inf bucket is cumulative, so it equals
    // the series count for every stage.
    for stage in ["admission", "queue", "batch", "engine", "write"] {
        let count = sample_value(
            &first,
            &format!("preflight_stage_seconds_count{{stage=\"{stage}\"}}"),
        )
        .expect("stage count sample");
        let inf = sample_value(
            &first,
            &format!("preflight_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}}"),
        )
        .expect("stage +Inf bucket");
        assert_eq!(count, inf, "+Inf bucket must equal count for {stage}");
        assert!(count >= 1.0, "stage {stage} must have been exercised");
    }

    // Counters are monotone: another request strictly increases the
    // completed counter and never decreases anything else we track.
    submit(0xBEEF_0002);
    let (_, second) = scrape(metrics, "/metrics");
    let completed = |body: &str| {
        sample_value(body, "preflight_serve_requests_completed_total").expect("completed counter")
    };
    assert!(
        completed(&second) > completed(&first),
        "completed counter must be monotone: {} !> {}",
        completed(&second),
        completed(&first)
    );
    let admitted = |body: &str| {
        sample_value(body, "preflight_serve_requests_admitted_total").expect("admitted counter")
    };
    assert!(admitted(&second) >= admitted(&first) + 1.0);
    // The second same-geometry request rides recycled buffers.
    assert!(
        sample_value(&second, "preflight_serve_pool_hits_total").unwrap_or(0.0) >= 1.0,
        "a warm pool must record hits:\n{second}"
    );

    // The Stats wire message returns the same registry: spot-check that
    // the snapshot counters match what the scrape rendered.
    let snap = client.stats().expect("stats round trip");
    assert_eq!(
        snap.counter("serve_requests_completed_total", None)
            .expect("snapshot has completed counter") as f64,
        completed(&second)
    );
    let engine = snap
        .histogram("stage_seconds", Some(("stage", "engine")))
        .expect("snapshot has the engine stage histogram");
    assert!(engine.count >= 1);

    // Unknown paths 404; non-GET 405. Neither kills the listener.
    let (status, _) = scrape(metrics, "/not-metrics");
    assert!(status.contains("404"), "status: {status}");
    let (status, _) = scrape(metrics, "/metrics");
    assert!(status.contains("200"), "listener must survive a 404");

    handle.drain();
}

#[test]
fn metrics_listener_is_absent_unless_configured() {
    let handle = ServerBuilder::from(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    })
    .serve()
    .expect("server start");
    assert!(
        handle.metrics_addr().is_none(),
        "no --metrics-addr, no listener"
    );
    handle.drain();
}
