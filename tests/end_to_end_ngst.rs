//! End-to-end NGST chain: sky scene → up-the-ramp detector → cosmic rays →
//! FITS downlink format → bit-flips in transit → header sanity analysis →
//! input preprocessing → distributed CR-rejection pipeline → science
//! product. Asserts the paper's central claim at system level: the
//! preprocessed run lands measurably closer to the fault-free product.

use preflight::prelude::*;

const W: usize = 32;
const H: usize = 32;
const FRAMES: usize = 32;

fn scene_stack(seed: u64) -> ImageStack<u16> {
    let mut rng = seeded_rng(seed);
    let flux = sky_image(W, H, 1_500, 4, &mut rng).map(|v| v as f32 / 50.0);
    let det = UpTheRamp::new(DetectorConfig {
        width: W,
        height: H,
        frames: FRAMES,
        read_noise: 8.0,
        ..DetectorConfig::default()
    });
    det.clean_stack(&flux, &mut rng)
}

fn pipeline(cfg: PipelineConfig) -> NgstPipeline {
    NgstPipeline::new(cfg).expect("valid pipeline config")
}

fn rate_error(a: &preflight::core::Image<f32>, b: &preflight::core::Image<f32>) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| f64::from((x - y).abs()))
        .sum::<f64>()
        / a.len() as f64
}

#[test]
fn preprocessing_improves_the_science_product() {
    // Note the division of labor this test pins down: the CR-rejection
    // stage is itself robust to *isolated* spikes, so at very low Γ₀ the
    // preprocessing gain on the final rate image is modest; as fault
    // pressure rises the rejector's own redundancy saturates and the
    // input-preprocessing layer carries the recovery (the paper's argument
    // that preprocessing complements, not replaces, downstream tolerance).
    let stack = scene_stack(1);
    let base = PipelineConfig {
        workers: 4,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.02)),
        seed: 99,
        ..PipelineConfig::default()
    };
    let clean_ref = pipeline(PipelineConfig {
        transit_fault: None,
        ..base
    })
    .run(&stack)
    .expect("pipeline run");
    let unprotected = pipeline(base).run(&stack).expect("pipeline run");
    let protected = pipeline(PipelineConfig {
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        ..base
    })
    .run(&stack)
    .expect("pipeline run");

    assert!(
        unprotected.bits_flipped_in_transit > 0,
        "faults must have been injected"
    );
    assert!(
        protected.corrected_samples > 0,
        "preprocessing must have acted"
    );

    let e_unprotected = rate_error(&unprotected.rate, &clean_ref.rate);
    let e_protected = rate_error(&protected.rate, &clean_ref.rate);
    assert!(
        e_protected < e_unprotected / 1.5,
        "preprocessing must substantially reduce the rate error \
         (unprotected {e_unprotected}, protected {e_protected})"
    );
}

#[test]
fn cosmic_rays_and_bitflips_are_both_survived() {
    let mut stack = scene_stack(2);
    let mut rng = seeded_rng(3);
    let hits = CosmicRayModel::default().strike(&mut stack, &mut rng);
    assert!(!hits.is_empty());
    let clean_ref = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 16,
        ..PipelineConfig::default()
    })
    .run(&stack)
    .expect("pipeline run");

    let protected = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.002)),
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        seed: 4,
        ..PipelineConfig::default()
    })
    .run(&stack)
    .expect("pipeline run");

    // Even with CR hits *and* transit flips, the protected product must
    // stay close to the CR-only reference.
    let err = rate_error(&protected.rate, &clean_ref.rate);
    assert!(err < 0.6, "mean rate error {err} counts/s too large");
}

#[test]
fn fits_downlink_with_corrupted_header_is_recovered() {
    let stack = scene_stack(5);
    let mut bytes = write_stack(&stack);

    // A burst of single-bit hits across the header region.
    let mut rng = seeded_rng(6);
    Uncorrelated::new(0.0004)
        .unwrap()
        .inject_bytes(&mut bytes[..240], &mut rng);

    let report = analyze(&bytes);
    assert!(
        report.header_ok,
        "sanity analysis failed to recover: {:?}",
        report.findings
    );
    let recovered = read_stack(&report.repaired).expect("repaired file parses");
    assert_eq!(
        recovered, stack,
        "data unit must be untouched by header repair"
    );
}

#[test]
fn compression_ratio_reported_by_pipeline_degrades_under_faults() {
    let stack = scene_stack(7);
    let base = PipelineConfig {
        workers: 2,
        tile_size: 16,
        seed: 8,
        ..PipelineConfig::default()
    };
    let clean = pipeline(base).run(&stack).expect("pipeline run");
    let faulty = pipeline(PipelineConfig {
        transit_fault: Some(TransitFault::Uncorrelated(0.02)),
        ..base
    })
    .run(&stack)
    .expect("pipeline run");
    assert!(clean.compression_ratio > 1.0);
    assert!(
        faulty.compression_ratio < clean.compression_ratio,
        "faults must cost compression ({} !< {})",
        faulty.compression_ratio,
        clean.compression_ratio
    );
}
