//! The acceptance chaos scenario for the supervised runtime (run with
//! `cargo test -p preflight-system-tests --features chaos`):
//!
//! a worker crash, a stalled worker, and a twice-corrupted result message
//! strike the distributed NGST pipeline on top of Γ₀ = 1 % bit-flips in
//! transit. Under supervision the run must complete end to end, exercise
//! at least one retry and one degradation, log the exact scripted recovery
//! events, and land within Ψ tolerance of the fault-free product. The same
//! scenario without supervision must fail.

use preflight_core::{AlgoNgst, Image, ImageStack, Sensitivity, Upsilon};
use preflight_faults::{ChaosOutcome, ChaosPlan};
use preflight_metrics::psi;
use preflight_ngst::{
    DetectorConfig, NgstPipeline, PipelineConfig, PipelineError, TransitFault, UpTheRamp,
};
use preflight_supervisor::{FtLevel, RetryPolicy, Supervision};
use std::time::Duration;

/// 48×32 detector → six 16×16 tiles (units 0..=5) on three workers.
fn stack() -> ImageStack<u16> {
    let det = UpTheRamp::new(DetectorConfig {
        width: 48,
        height: 32,
        frames: 24,
        read_noise: 5.0,
        ..DetectorConfig::default()
    });
    det.clean_stack(
        &Image::filled(48, 32, 30.0f32),
        &mut preflight_faults::seeded_rng(99),
    )
}

fn pipeline() -> NgstPipeline {
    NgstPipeline::new(PipelineConfig {
        workers: 3,
        tile_size: 16,
        preprocess: Some(AlgoNgst::new(
            Upsilon::FOUR,
            Sensitivity::new(80).expect("valid Λ"),
        )),
        transit_fault: Some(TransitFault::Uncorrelated(0.01)),
        seed: 7,
        ..PipelineConfig::default()
    })
    .expect("valid pipeline config")
}

/// The scripted fault scenario: every event below is deterministic in
/// (unit, attempt), so the recovery log is a golden value, not a sample.
fn scenario() -> ChaosPlan {
    ChaosPlan::new()
        .with(1, 0, ChaosOutcome::Crash)
        .with(2, 0, ChaosOutcome::Stall(Duration::from_millis(800)))
        .with(3, 0, ChaosOutcome::CorruptMessage { gamma: 0.5 })
        .with(3, 1, ChaosOutcome::CorruptMessage { gamma: 0.5 })
}

fn supervision() -> Supervision {
    Supervision {
        policy: RetryPolicy {
            max_retries: 2,
            stage_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(1),
            backoff_factor: 2.0,
            backoff_cap: Duration::from_millis(5),
            jitter: 0.0,
            seed: 0,
        },
        degrade: true,
        quarantine_after: 2,
    }
}

#[test]
fn supervised_chaos_scenario_recovers_end_to_end() {
    let stack = stack();
    let p = pipeline();
    let plan = scenario();
    let sup = supervision();

    let out = p
        .run_with(&stack, Some(&sup), Some(&plan))
        .expect("the supervised run must complete despite the scenario");

    // Golden recovery log: the crash and the stall each cost one retry;
    // the twice-corrupted tile burns its Algo_NGST budget, is quarantined,
    // degrades one rung and recovers there.
    let log = &out.outcome.recovery;
    assert_eq!(log.crashes(), 1, "{}", log.summary());
    assert_eq!(log.timeouts(), 1, "{}", log.summary());
    assert_eq!(log.corruptions(), 2, "{}", log.summary());
    assert_eq!(log.retries(), 4, "{}", log.summary());
    assert_eq!(log.quarantines(), 1, "{}", log.summary());
    assert_eq!(log.degradations(), 1, "{}", log.summary());
    assert_eq!(log.recoveries(), 3, "{}", log.summary());
    assert_eq!(log.abandonments(), 0, "{}", log.summary());
    assert_eq!(log.len(), 13, "{}", log.summary());
    assert!(log.retries() >= 1 && log.degradations() >= 1);

    // The degraded tile settles one rung down; everything else holds the
    // full-fidelity level, so the run's overall level is BitVoter.
    assert_eq!(out.outcome.achieved, FtLevel::BitVoter);
    assert_eq!(out.outcome.abandoned_tiles, 0);
    assert_eq!(out.outcome.tile_levels[3].level, FtLevel::BitVoter);
    for (unit, t) in out.outcome.tile_levels.iter().enumerate() {
        if unit != 3 {
            assert_eq!(t.level, FtLevel::AlgoNgst, "unit {unit}");
        }
    }

    // Ψ against the fault-free golden run: retried tiles re-draw their
    // transit bit-flips and the degraded tile repairs with the voter
    // instead of Algo_NGST, so the products differ — but only within the
    // preprocessing noise floor.
    let golden = p.run(&stack).expect("golden run");
    let err = psi(golden.rate.as_slice(), out.report.rate.as_slice());
    assert!(
        err < 0.1,
        "recovered product drifted from the golden run: Ψ = {err}"
    );
}

#[test]
fn supervised_chaos_scenario_is_deterministic() {
    let stack = stack();
    let p = pipeline();
    let plan = scenario();
    let sup = supervision();
    let a = p.run_with(&stack, Some(&sup), Some(&plan)).expect("run A");
    let b = p.run_with(&stack, Some(&sup), Some(&plan)).expect("run B");
    assert_eq!(a.report.rate, b.report.rate);
    assert_eq!(a.outcome.achieved, b.outcome.achieved);
    assert_eq!(a.outcome.recovery.summary(), b.outcome.recovery.summary());
}

#[test]
fn unsupervised_chaos_scenario_fails() {
    let stack = stack();
    let p = pipeline();
    let err = p
        .run_with(&stack, None, Some(&scenario()))
        .expect_err("an unsupervised crash must abort the run");
    assert_eq!(err, PipelineError::WorkerLost { unit: 1 });
}
