//! Property-based invariants over the whole fault-injection → preprocessing
//! → scoring chain.

use preflight::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reverting every flip the injector recorded restores the data exactly
    /// — for any probability and seed (uncorrelated model).
    #[test]
    fn uncorrelated_fault_map_is_exact(
        gamma in 0.0f64..=0.2,
        seed in any::<u64>(),
        level in 0u16..=u16::MAX,
    ) {
        let clean = vec![level; 256];
        let mut data = clean.clone();
        let map = Uncorrelated::new(gamma).unwrap()
            .inject_words(&mut data, &mut seeded_rng(seed));
        for f in map.iter() {
            data[f.word] ^= 1 << f.bit;
        }
        prop_assert_eq!(data, clean);
    }

    /// Same exactness for the correlated model on arbitrary grid widths.
    #[test]
    fn correlated_fault_map_is_exact(
        gamma in 0.0f64..=0.4,
        seed in any::<u64>(),
        width in 1usize..=64,
    ) {
        let clean = vec![0x6978u16; 256];
        let mut data = clean.clone();
        let map = Correlated::new(gamma).unwrap()
            .inject_grid(&mut data, width, &mut seeded_rng(seed));
        for f in map.iter() {
            data[f.word] ^= 1 << f.bit;
        }
        prop_assert_eq!(data, clean);
    }

    /// Γ = 0 injectors are exact identities.
    #[test]
    fn zero_probability_is_identity(seed in any::<u64>(), len in 1usize..512) {
        let clean: Vec<u16> = (0..len as u16).collect();
        let mut a = clean.clone();
        Uncorrelated::new(0.0).unwrap().inject_words(&mut a, &mut seeded_rng(seed));
        prop_assert_eq!(&a, &clean);
        Correlated::new(0.0).unwrap().inject_grid(&mut a, 16, &mut seeded_rng(seed));
        prop_assert_eq!(&a, &clean);
    }

    /// The Rice codec roundtrips arbitrary sample vectors.
    #[test]
    fn rice_roundtrip(samples in proptest::collection::vec(any::<u16>(), 0..2000)) {
        let codec = RiceCodec::new();
        let encoded = codec.encode(&samples);
        prop_assert_eq!(codec.decode(&encoded).unwrap(), samples);
    }

    /// The interleaver is a bijection for every divisor pair, and
    /// deinterleave ∘ interleave = id.
    #[test]
    fn interleaver_bijective(cols in 1usize..=32, rows in 1usize..=32) {
        let len = cols * rows;
        let il = Interleaver::new(len, cols).unwrap();
        let data: Vec<u32> = (0..len as u32).collect();
        let phys = il.interleave(&data);
        let mut seen = vec![false; len];
        for &v in &phys {
            prop_assert!(!seen[v as usize], "duplicate after interleave");
            seen[v as usize] = true;
        }
        prop_assert_eq!(il.deinterleave(&phys), data);
    }

    /// Algo_NGST never touches bits inside its own window C, for arbitrary
    /// series and sensitivities.
    #[test]
    fn algo_ngst_window_c_immunity(
        seed in any::<u64>(),
        lambda in 1u32..=100,
        sigma in 0.0f64..2000.0,
        gamma in 0.0f64..=0.05,
    ) {
        let model = NgstModel::new(32, 27_000, sigma);
        let mut rng = seeded_rng(seed);
        let mut series = model.series(&mut rng);
        Uncorrelated::new(gamma).unwrap().inject_words(&mut series, &mut rng);
        let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(lambda).unwrap());
        let windows = algo.windows_for(&series).unwrap();
        let c_mask = windows.window_c();
        let before = series.clone();
        algo.preprocess(&mut series);
        for (b, a) in before.iter().zip(&series) {
            prop_assert_eq!(b & c_mask, a & c_mask, "window C bit modified");
        }
    }

    /// Algo_NGST at Λ = 0 is an exact no-op on pixels.
    #[test]
    fn algo_ngst_lambda_zero_noop(seed in any::<u64>()) {
        let model = NgstModel::default();
        let mut series = model.series(&mut seeded_rng(seed));
        let before = series.clone();
        let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::OFF);
        prop_assert_eq!(algo.preprocess(&mut series), 0);
        prop_assert_eq!(series, before);
    }

    /// Median smoothing only ever emits values present in its input
    /// neighborhood (value-provenance property of a true median).
    #[test]
    fn median_values_come_from_input(
        series in proptest::collection::vec(any::<u16>(), 3..128),
    ) {
        let orig = series.clone();
        let mut smoothed = series;
        SeriesPreprocessor::<u16>::preprocess(&MedianSmoother::buffered(), &mut smoothed);
        for v in smoothed {
            prop_assert!(orig.contains(&v));
        }
    }

    /// Bitwise majority voting never touches a constant series (every bit
    /// is already unanimous), for arbitrary constants and lengths.
    #[test]
    fn bitvote_constant_fixed_point(value in any::<u16>(), len in 4usize..64) {
        let mut series = vec![value; len];
        let changed = SeriesPreprocessor::<u16>::preprocess(&BitVoter::new(), &mut series);
        prop_assert_eq!(changed, 0);
        prop_assert!(series.iter().all(|&v| v == value));
    }

    /// Any *single* flipped sample in a constant run is fully reverted by
    /// bitwise majority voting, wherever it sits and whatever bits flipped.
    #[test]
    fn bitvote_reverts_any_single_sample_corruption(
        value in any::<u16>(),
        damage in 1u16..=u16::MAX,
        idx in 0usize..16,
        len in 16usize..48,
    ) {
        let mut series = vec![value; len];
        series[idx] ^= damage;
        SeriesPreprocessor::<u16>::preprocess(&BitVoter::new(), &mut series);
        prop_assert!(series.iter().all(|&v| v == value));
    }

    /// Ψ is non-negative, zero on identity, and symmetric in corruption
    /// severity: adding error never reduces Ψ against the same ideal.
    #[test]
    fn psi_basic_properties(
        ideal in proptest::collection::vec(1u16..=u16::MAX, 1..256),
        seed in any::<u64>(),
    ) {
        use preflight::metrics::psi;
        prop_assert_eq!(psi(&ideal, &ideal), 0.0);
        let mut light = ideal.clone();
        let map = Uncorrelated::new(0.005).unwrap()
            .inject_words(&mut light, &mut seeded_rng(seed));
        let p = psi(&ideal, &light);
        prop_assert!(p >= 0.0);
        if !map.is_empty() {
            prop_assert!(p > 0.0);
        }
    }

    /// BitConfusion counts are internally consistent:
    /// true + misses = total flipped.
    #[test]
    fn confusion_counts_consistent(
        seed in any::<u64>(),
        gamma in 0.0f64..=0.1,
    ) {
        let clean = vec![27_000u16; 128];
        let mut corrupted = clean.clone();
        Uncorrelated::new(gamma).unwrap().inject_words(&mut corrupted, &mut seeded_rng(seed));
        let mut repaired = corrupted.clone();
        AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap()).preprocess(&mut repaired);
        let c = BitConfusion::score(&clean, &corrupted, &repaired);
        prop_assert_eq!(c.true_corrections + c.misses, c.total_flipped);
        prop_assert!(c.total_bits >= c.total_flipped);
    }

    /// FITS stack roundtrip for arbitrary contents and shapes.
    #[test]
    fn fits_stack_roundtrip(
        w in 1usize..=16,
        h in 1usize..=16,
        n in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded_rng(seed);
        let mut stack: ImageStack<u16> = ImageStack::new(w, h, n);
        Uncorrelated::new(0.5).unwrap().inject_stack(&mut stack, &mut rng);
        let bytes = write_stack(&stack);
        prop_assert_eq!(read_stack(&bytes).unwrap(), stack);
    }
}
