//! Public-API snapshot for the `preflight` facade prelude.
//!
//! Two layers of enforcement:
//!
//! 1. **Compile-time**: every name the prelude promises is imported and
//!    exercised below, so a rename or removal breaks this test at build
//!    time.
//! 2. **Source snapshot**: the prelude block of the facade is checked
//!    against the curated name list, so an *addition* (or a deprecated
//!    name sneaking back in) fails loudly and forces a deliberate update
//!    here.

use preflight::prelude::{
    available_threads, psi, seeded_rng, AlgoNgst, AlgoOtis, BitConfusion, BitVoter, ClientBuilder,
    Correlated, Cube, FtLevel, Image, ImageStack, Kernel, MeanSmoother, MedianSmoother, NgstModel,
    Obs, PhysicalBounds, PlanePreprocessor, Preprocessor, PsiReport, Sensitivity,
    SeriesPreprocessor, ServerBuilder, Snapshot, Span, TimelineRecorder, Uncorrelated, Upsilon,
};

/// Names the prelude must export (the execution API) and names it must
/// never export again (the PR 2 free-function drivers, now deprecated
/// shims reachable only through `preflight::core`).
const REQUIRED: &[&str] = &[
    "Preprocessor",
    "available_threads",
    "Kernel",
    "Obs",
    "Snapshot",
    "Span",
    "TimelineRecorder",
    "ServerBuilder",
    "ClientBuilder",
];
const BANNED: &[&str] = &[
    "preprocess_stack",
    "preprocess_stack_tiled",
    "preprocess_stack_parallel",
    "preprocess_cube_parallel",
    // PR 9 deprecated the positional serving entry points; the prelude
    // carries only the builders.
    "connect_tcp",
    "connect_unix",
    "server::start",
];

#[test]
fn prelude_drives_the_unified_execution_api() {
    let obs = Obs::new();
    let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap());
    let mut stack: ImageStack<u16> = ImageStack::new(8, 8, 4);
    let changed = Preprocessor::new(&algo)
        .threads(available_threads().min(2))
        .tile(4)
        .kernel(Kernel::Sweep)
        .observer(&obs)
        .run(&mut stack);
    assert_eq!(changed, 0, "an all-zero stack has nothing to repair");
    assert_eq!("scalar".parse::<Kernel>(), Ok(Kernel::Scalar));

    // Observability types are first-class prelude citizens.
    let recorder = TimelineRecorder::new();
    obs.set_subscriber(Some(recorder.clone()));
    {
        let _span: Span = obs.span("snapshot-test");
    }
    let snap: Snapshot = obs.snapshot();
    assert_eq!(snap.counter("preprocess_runs_total", None), Some(1));
    assert_eq!(recorder.records().len(), 1);

    // The rest of the generate → corrupt → preprocess → score loop still
    // resolves through the prelude alone.
    let mut rng = seeded_rng(7);
    let clean = NgstModel::default().series(&mut rng);
    let mut observed = clean.clone();
    Uncorrelated::new(0.01)
        .unwrap()
        .inject_words(&mut observed, &mut rng);
    let corrupted = observed.clone();
    let _ = Correlated::new(0.01).unwrap();
    let report = PsiReport::measure(&clean, &corrupted, &observed);
    assert!(report.no_preprocessing >= 0.0);
    let _ = psi(&clean, &observed);
    let _ = BitConfusion::score(&clean, &corrupted, &observed);
    let _ = (MedianSmoother::new(), MeanSmoother::new(), BitVoter::new());
    let _ = FtLevel::AlgoNgst;
    let _: Option<AlgoOtis> = None;
    let _: Option<PhysicalBounds> = None;
    let _: Option<(Image<u16>, Cube<f32>)> = None;
    fn _series_api<T, P: SeriesPreprocessor<T>>() {}
    fn _plane_api<T: Copy, P: PlanePreprocessor<T>>() {}

    // The serving entry points are prelude citizens too: builders
    // accumulate without touching the network until serve()/connect().
    let server_config = ServerBuilder::new()
        .bind("127.0.0.1:0")
        .queue_depth(8)
        .max_conns(1024)
        .auto_tune(false)
        .into_config();
    assert_eq!(server_config.capacity, 8);
    let _client = ClientBuilder::new()
        .tcp("127.0.0.1:1")
        .io_timeout(std::time::Duration::from_secs(1));
}

#[test]
fn prelude_source_matches_the_curated_snapshot() {
    let facade = include_str!("../crates/preflight/src/lib.rs");
    let prelude = facade
        .split_once("pub mod prelude {")
        .expect("facade declares the prelude module")
        .1;

    for name in REQUIRED {
        assert!(
            prelude.contains(name),
            "prelude must keep exporting `{name}`"
        );
    }
    for name in BANNED {
        assert!(
            !prelude.contains(name),
            "deprecated driver `{name}` must stay out of the prelude \
             (use `Preprocessor` or reach it via `preflight::core`)"
        );
    }
}
