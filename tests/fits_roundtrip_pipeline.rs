//! FITS battery: systematic single-bit corruption of every header byte of a
//! real downlink file, verifying the Λ = 0 sanity analysis repairs (or at
//! minimum flags) the damage, and that repairs never touch the data unit.

use preflight::fits::{analyze, read_stack, write_stack, Finding};
use preflight::prelude::*;

fn sample() -> (ImageStack<u16>, Vec<u8>) {
    let mut rng = seeded_rng(77);
    let model = NgstModel {
        frames: 32,
        ..NgstModel::default()
    };
    let stack = model.stack(24, 16, &mut rng);
    let bytes = write_stack(&stack);
    (stack, bytes)
}

#[test]
fn every_single_bit_flip_in_critical_cards_is_recovered() {
    let (stack, bytes) = sample();
    // The critical region: SIMPLE, BITPIX, NAXIS, NAXIS1..3 cards
    // (bytes 0..480). Flip each bit of each byte, one at a time.
    let mut unrecovered = Vec::new();
    for byte in 0..480 {
        for bit in 0..8 {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1 << bit;
            if damaged == bytes {
                continue;
            }
            let report = analyze(&damaged);
            let ok = report.header_ok
                && read_stack(&report.repaired)
                    .map(|s| s == stack)
                    .unwrap_or(false);
            if !ok {
                unrecovered.push((byte, bit));
            }
        }
    }
    // A handful of flips are genuinely ambiguous (e.g. a digit of NAXIS2
    // flipped to another *valid* digit cannot be caught without stronger
    // redundancy); everything else must be recovered.
    let total = 480 * 8;
    assert!(
        unrecovered.len() * 50 < total,
        "more than 2% of single-bit header flips unrecovered: {} of {} — first: {:?}",
        unrecovered.len(),
        total,
        &unrecovered[..unrecovered.len().min(10)]
    );
}

#[test]
fn value_digit_flips_that_change_geometry_are_repaired_from_data_size() {
    // Frames are 48·32·2 = 3072 bytes each — wider than the 2880-byte block
    // slack — so the frame count is uniquely determined by the file size
    // and a plausible-but-wrong digit must be caught and repaired.
    let mut rng = seeded_rng(78);
    let model = NgstModel {
        frames: 6,
        ..NgstModel::default()
    };
    let stack = model.stack(48, 32, &mut rng);
    let bytes = write_stack(&stack);
    // NAXIS3 card is card 5 (byte 400); value field bytes 410..430 hold "6".
    let mut damaged = bytes.clone();
    let pos = (410..430)
        .find(|&i| bytes[i] == b'6')
        .expect("digit present");
    damaged[pos] = b'4'; // one flip, still a valid digit
    let report = analyze(&damaged);
    assert!(report.header_ok, "findings: {:?}", report.findings);
    let recovered = read_stack(&report.repaired).expect("repaired file parses");
    assert_eq!(
        recovered.frames(),
        6,
        "axis lie must be repaired from the data size"
    );
    assert_eq!(recovered, stack);
}

#[test]
fn multi_bit_header_damage_repaired_when_budget_allows() {
    let (stack, bytes) = sample();
    // Three separate keywords each take one flip.
    let mut damaged = bytes.clone();
    damaged[0] ^= 0x02; // SIMPLE
    damaged[80] ^= 0x01; // BITPIX
    damaged[160 + 3] ^= 0x04; // NAXIS
    let report = analyze(&damaged);
    assert!(report.header_ok, "findings: {:?}", report.findings);
    assert_eq!(read_stack(&report.repaired).unwrap(), stack);
    assert!(report.made_repairs());
}

#[test]
fn data_unit_corruption_is_not_the_sanity_analyzers_job() {
    let (stack, bytes) = sample();
    let header_len = 2880;
    let mut damaged = bytes.clone();
    damaged[header_len + 100] ^= 0x80;
    let report = analyze(&damaged);
    assert!(report.header_ok);
    assert!(
        !report.made_repairs(),
        "data damage is left to the pixel preprocessors"
    );
    let read = read_stack(&report.repaired).unwrap();
    assert_ne!(
        read, stack,
        "the data fault passes through to the pixel stage"
    );
}

#[test]
fn truncated_file_reports_missing_end() {
    let (_, bytes) = sample();
    let report = analyze(&bytes[..160]);
    assert_eq!(report.findings, vec![Finding::MissingEnd]);
    assert!(!report.header_ok);
}

#[test]
fn fits_roundtrip_feeds_the_preprocessing_pipeline() {
    // write → corrupt header + data → sanity-repair header → read → pixel
    // preprocessing → the full input path of Fig. 1.
    let (clean, bytes) = sample();
    let mut damaged = bytes.clone();
    let mut rng = seeded_rng(88);
    // light header damage
    damaged[82] ^= 0x01;
    // data damage
    Uncorrelated::new(0.0005)
        .unwrap()
        .inject_bytes(&mut damaged[2880..], &mut rng);

    let report = analyze(&damaged);
    assert!(report.header_ok, "{:?}", report.findings);
    let mut stack = read_stack(&report.repaired).expect("repaired header parses");
    let algo = AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap());
    Preprocessor::new(&algo).run(&mut stack);

    let psi_before = {
        let read = read_stack(&analyze(&damaged).repaired).unwrap();
        preflight::metrics::psi(clean.as_slice(), read.as_slice())
    };
    let psi_after = preflight::metrics::psi(clean.as_slice(), stack.as_slice());
    assert!(
        psi_after < psi_before,
        "pixel preprocessing must reduce Ψ ({psi_after} !< {psi_before})"
    );
}
