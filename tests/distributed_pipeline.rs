//! Distributed master/slave pipeline semantics: tiling transparency, work
//! distribution, determinism and fault accounting across worker counts.

use preflight::prelude::*;

fn stack(seed: u64, w: usize, h: usize, frames: usize) -> ImageStack<u16> {
    let det = UpTheRamp::new(DetectorConfig {
        width: w,
        height: h,
        frames,
        read_noise: 6.0,
        ..DetectorConfig::default()
    });
    let mut rng = seeded_rng(seed);
    let flux = sky_image(w, h, 1_000, 3, &mut rng).map(|v| v as f32 / 80.0);
    det.clean_stack(&flux, &mut rng)
}

fn pipeline(cfg: PipelineConfig) -> NgstPipeline {
    NgstPipeline::new(cfg).expect("valid pipeline config")
}

#[test]
fn result_is_invariant_to_worker_count_and_tile_size() {
    let st = stack(1, 48, 32, 12);
    let reference = pipeline(PipelineConfig {
        workers: 1,
        tile_size: 48,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    for (workers, tile) in [(2usize, 16usize), (4, 8), (7, 13), (16, 48)] {
        let rep = pipeline(PipelineConfig {
            workers,
            tile_size: tile,
            ..PipelineConfig::default()
        })
        .run(&st)
        .expect("pipeline run");
        assert_eq!(
            rep.rate, reference.rate,
            "workers={workers} tile={tile} changed the science product"
        );
        assert_eq!(rep.integrated, reference.integrated);
    }
}

#[test]
fn work_is_distributed_across_workers() {
    let st = stack(2, 64, 64, 16);
    let rep = pipeline(PipelineConfig {
        workers: 4,
        tile_size: 8,
        // Preprocessing makes each tile heavy enough that the queue cannot
        // be drained by a single worker before the others start.
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert_eq!(rep.tiles, 64);
    assert_eq!(rep.worker_tile_counts.len(), 4);
    assert_eq!(rep.worker_tile_counts.iter().sum::<usize>(), 64);
    let active = rep.worker_tile_counts.iter().filter(|&&c| c > 0).count();
    assert!(
        active >= 2,
        "work stealing must engage multiple workers: {:?}",
        rep.worker_tile_counts
    );
}

#[test]
fn transit_fault_accounting_is_exact() {
    let st = stack(3, 32, 32, 8);
    let cfg = PipelineConfig {
        workers: 3,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.001)),
        seed: 5,
        ..PipelineConfig::default()
    };
    let a = pipeline(cfg).run(&st).expect("pipeline run");
    let b = pipeline(cfg).run(&st).expect("pipeline run");
    assert_eq!(
        a.bits_flipped_in_transit, b.bits_flipped_in_transit,
        "seeded determinism"
    );
    assert!(a.bits_flipped_in_transit > 0);
    let expected = (st.len() * 16) as f64 * 0.001;
    let got = a.bits_flipped_in_transit as f64;
    assert!(
        (got - expected).abs() < expected * 0.5,
        "flip count {got} far from expectation {expected}"
    );
}

#[test]
fn correlated_transit_faults_are_supported() {
    let st = stack(4, 32, 16, 8);
    let rep = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 16,
        transit_fault: Some(TransitFault::Correlated(0.1)),
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        seed: 6,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert!(rep.bits_flipped_in_transit > 0);
    assert!(rep.corrected_samples > 0);
}

#[test]
fn elapsed_and_compression_fields_are_populated() {
    let st = stack(5, 32, 32, 8);
    let rep = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 32,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert!(rep.elapsed.as_nanos() > 0);
    assert!(rep.compressed_bytes > 0);
    assert!(rep.compression_ratio > 0.5);
    assert_eq!(rep.integrated.width(), 32);
}

#[test]
fn single_pixel_tiles_are_legal() {
    let st = stack(6, 4, 4, 8);
    let rep = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 1,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert_eq!(rep.tiles, 16);
}

/// Flight-like geometry (quarter-scale detector, half readouts): run with
/// `cargo test -p preflight-system-tests -- --ignored` when you have a few
/// minutes and ~200 MB of RAM to spare.
#[test]
#[ignore = "flight-scale run; invoke explicitly with --ignored"]
fn flight_scale_baseline_processes_end_to_end() {
    let st = stack(99, 512, 512, 32);
    let rep = pipeline(PipelineConfig {
        workers: 16,
        tile_size: 128,
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        transit_fault: Some(TransitFault::Uncorrelated(0.001)),
        seed: 99,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert_eq!(rep.tiles, 16);
    assert!(rep.corrected_samples > 0);
    assert!(rep.compression_ratio > 1.0);
    // The real-time argument at scale: well under the 1000 s baseline.
    assert!(rep.elapsed.as_secs_f64() < 1_000.0);
}

#[test]
fn repair_map_localizes_the_damage() {
    // Corrupt a specific tile heavily (via a seeded transit fault) and
    // check the provenance layer: repaired coordinates concentrate where
    // flips landed, and the map sums to the reported total.
    let st = stack(7, 32, 32, 32);
    let rep = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.004)),
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        seed: 77,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    let map_total: usize = rep
        .repair_map
        .as_slice()
        .iter()
        .map(|&v| usize::from(v))
        .sum();
    assert_eq!(
        map_total, rep.corrected_samples,
        "map must sum to the report"
    );
    assert!(map_total > 0);

    // Without preprocessing the map is all zeros.
    let plain = pipeline(PipelineConfig {
        workers: 2,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.004)),
        seed: 77,
        ..PipelineConfig::default()
    })
    .run(&st)
    .expect("pipeline run");
    assert!(plain.repair_map.as_slice().iter().all(|&v| v == 0));
}

#[test]
fn repair_map_identical_between_integrated_and_separate() {
    let st = stack(8, 32, 16, 16);
    let base = PipelineConfig {
        workers: 2,
        tile_size: 16,
        transit_fault: Some(TransitFault::Uncorrelated(0.01)),
        preprocess: Some(AlgoNgst::new(Upsilon::FOUR, Sensitivity::new(80).unwrap())),
        seed: 5,
        ..PipelineConfig::default()
    };
    let sep = pipeline(base).run(&st).expect("pipeline run");
    let int = pipeline(PipelineConfig {
        integrated: true,
        ..base
    })
    .run(&st)
    .expect("pipeline run");
    assert_eq!(sep.repair_map, int.repair_map);
}
